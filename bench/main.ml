(* Benchmark harness.

   Part 1 (Bechamel): one Test.make per paper table/figure, each timing
   the computational kernel that experiment leans on (a scaled-down run of
   the same code path), plus the hot primitives of the simulator.

   Part 2: regenerate every table/figure row at quick scale, so
   `dune exec bench/main.exe` reproduces the paper end to end. Use
   bin/experiments_cli at `-s default` (or `full`) for the
   publication-shaped numbers. *)

open Bechamel
open Toolkit

module D = Experiments.Dumbbell
module S = Experiments.Schemes

(* --- kernels -------------------------------------------------------------- *)

let tiny_dumbbell scheme =
  D.run
    (D.uniform_flows
       { D.default with D.scheme; bandwidth = 5e6; duration = 4.0;
         warmup = 2.0; start_window = (0.0, 0.2) }
       ~n:2)

let kernel_fig2_4 =
  (* Section 2 analysis path: predictor + transition machine on a synthetic
     10k-sample trace. *)
  let rtts =
    Array.init 10_000 (fun i -> 0.05 +. (0.02 *. sin (float_of_int i /. 50.0)))
  in
  let times = Array.init 10_000 (fun i -> 0.001 *. float_of_int i) in
  let trace =
    Predictors.Trace.make ~times ~rtts ~flow_losses:[||]
      ~queue_losses:[| 1.0; 3.0; 7.0 |] ()
  in
  let predictor = Predictors.Predictor.ewma ~alpha:0.99 () in
  fun () ->
    let states = predictor.Predictors.Predictor.predict trace in
    Predictors.Transitions.count ~times ~states ~losses:[| 1.0; 3.0; 7.0 |] ()

let kernel_fig5 =
  let curve = Pert_core.Response_curve.default in
  fun () ->
    let acc = ref 0.0 in
    for i = 0 to 999 do
      acc :=
        !acc
        +. Units.Prob.to_float
             (Pert_core.Response_curve.probability curve
                (Units.Time.s (float_of_int i *. 3e-5)))
    done;
    !acc

let kernel_fig13a () =
  let out = ref 0.0 in
  for n = 1 to 50 do
    out :=
      !out
      +. Fluid.Stability.delta_min ~alpha:0.99 ~l_pert:2.0 ~c:1000.0
           ~n_min:(float_of_int n) ~r_plus:0.2
  done;
  !out

let kernel_fig13 () =
  let p = Fluid.Pert_fluid.paper_params ~r:0.1 () in
  Fluid.Pert_fluid.run p ~horizon:5.0 ~dt:0.001 ~record_every:100 ()

let kernel_dynamic () =
  Experiments.Dynamic.run
    {
      (Experiments.Dynamic.default Experiments.Scale.Quick S.Pert) with
      Experiments.Dynamic.epoch = 2.0;
      bin = 1.0;
      cohort_size = 2;
      bandwidth = 5e6;
    }

let kernel_multibneck () =
  Experiments.Multibneck.run
    {
      (Experiments.Multibneck.default Experiments.Scale.Quick S.Pert) with
      Experiments.Multibneck.duration = 4.0;
      warmup = 2.0;
      cloud_size = 2;
      link_bandwidth = 5e6;
    }

let kernel_web () =
  D.run
    (D.uniform_flows
       {
         D.default with
         D.scheme = S.Pert;
         bandwidth = 5e6;
         web_sessions = 20;
         duration = 4.0;
         warmup = 2.0;
         start_window = (0.0, 0.2);
       }
       ~n:2)

let kernel_table1 () =
  D.run
    {
      D.default with
      D.scheme = S.Pert;
      bandwidth = 5e6;
      flow_rtts = List.init 5 (fun i -> 0.02 *. float_of_int (i + 1));
      duration = 4.0;
      warmup = 2.0;
      start_window = (0.0, 0.2);
    }

let kernel_fig14 () =
  tiny_dumbbell (S.Pert_pi { target_delay = Units.Time.s 0.003 })

let kernel_other_aqm () = tiny_dumbbell S.Pert_rem

let kernel_stability () =
  let kp = Fluid.Stability.pert_k ~alpha:0.99 ~c:1000.0 ~n:10.0 in
  Fluid.Stability.boundary_r
    ~holds:(fun r ->
      Fluid.Stability.theorem1_holds ~l_pert:2.0 ~c:1000.0 ~n_min:10.0
        ~r_plus:r ~k:kp)
    ()

let kernel_reverse () =
  D.run
    (D.uniform_flows
       { D.default with D.scheme = S.Pert; bandwidth = 5e6;
         reverse_flows = 2; duration = 4.0; warmup = 2.0;
         start_window = (0.0, 0.2) }
       ~n:2)

(* primitives *)

let kernel_heap () =
  let h = Sim_engine.Heap.create () in
  for i = 0 to 999 do
    Sim_engine.Heap.add h ~time:(float_of_int ((i * 7919) mod 1000)) ~seq:i ()
  done;
  let rec drain () =
    match Sim_engine.Heap.pop h with Some _ -> drain () | None -> ()
  in
  drain ()

let kernel_pert_ack =
  let engine = Pert_core.Pert_red.create () in
  let i = ref 0 in
  fun () ->
    incr i;
    Pert_core.Pert_red.on_ack engine
      ~now:(0.001 *. float_of_int !i)
      ~rtt:(Units.Time.s (0.05 +. (0.01 *. sin (float_of_int !i))))
      ~u:0.999

let kernel_red_enqueue =
  let rng = Sim_engine.Rng.create 3 in
  let params = Netsim.Red.auto_params ~capacity_pps:1000.0 ~limit_pkts:100 () in
  let q = Netsim.Red.create ~rng ~params ~capacity_pps:1000.0 ~limit_pkts:100 in
  let f = Netsim.Packet.factory () in
  let i = ref 0 in
  fun () ->
    incr i;
    let pkt =
      Netsim.Packet.data f ~flow:0 ~src:0 ~dst:1 ~seq:!i ~ecn:true
        ~now:(0.001 *. float_of_int !i) ()
    in
    match q.Netsim.Queue_disc.enqueue ~now:(0.001 *. float_of_int !i) pkt with
    | Netsim.Queue_disc.Accept | Netsim.Queue_disc.Accept_marked ->
        ignore (q.Netsim.Queue_disc.dequeue ~now:(0.001 *. float_of_int !i))
    | Netsim.Queue_disc.Reject -> ()

let staged name f = Test.make ~name (Staged.stage f)

let tests =
  Test.make_grouped ~name:"pert" ~fmt:"%s/%s"
    [
      (* one kernel per paper artefact *)
      staged "fig2-4:predictor-analysis" (fun () -> ignore (kernel_fig2_4 ()));
      staged "fig5:response-curve" (fun () -> ignore (kernel_fig5 ()));
      staged "fig6:dumbbell-pert" (fun () -> ignore (tiny_dumbbell S.Pert));
      staged "fig6:dumbbell-droptail" (fun () ->
          ignore (tiny_dumbbell S.Sack_droptail));
      staged "fig7:dumbbell-red-ecn" (fun () ->
          ignore (tiny_dumbbell S.Sack_red_ecn));
      staged "fig8:dumbbell-vegas" (fun () -> ignore (tiny_dumbbell S.Vegas));
      staged "fig9:web-workload" (fun () -> ignore (kernel_web ()));
      staged "table1:hetero-rtt" (fun () -> ignore (kernel_table1 ()));
      staged "fig11:multibottleneck" (fun () -> ignore (kernel_multibneck ()));
      staged "fig12:dynamic-cohorts" (fun () -> ignore (kernel_dynamic ()));
      staged "fig13a:stability-sweep" (fun () -> ignore (kernel_fig13a ()));
      staged "fig13:fluid-dde" (fun () -> ignore (kernel_fig13 ()));
      staged "fig14:dumbbell-pert-pi" (fun () -> ignore (kernel_fig14 ()));
      staged "other-aqm:dumbbell-pert-rem" (fun () -> ignore (kernel_other_aqm ()));
      staged "stability:boundary-bisection" (fun () -> ignore (kernel_stability ()));
      staged "reverse:dumbbell-rev-flows" (fun () -> ignore (kernel_reverse ()));
      (* hot primitives *)
      staged "prim:heap-1k" kernel_heap;
      staged "prim:pert-on-ack" (fun () -> ignore (kernel_pert_ack ()));
      staged "prim:red-enqueue" kernel_red_enqueue;
    ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true
      ~compaction:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.merge ols instances
      (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) clock [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-38s %16s\n" "benchmark" "time/run";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%8.3f  s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%8.3f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%8.3f us" (est /. 1e3)
            else Printf.sprintf "%8.1f ns" est
          in
          Printf.printf "%-38s %16s\n" name pretty
      | Some _ | None -> Printf.printf "%-38s %16s\n" name "n/a")
    rows;
  print_newline ()

let regenerate_tables () =
  print_endline "=== paper tables/figures (quick scale) ===";
  print_endline
    "(use `dune exec bin/experiments_cli.exe -- all -s default` for the \
     publication-shaped runs)\n";
  let fmt = Format.std_formatter in
  List.iter
    (fun e ->
      Format.fprintf fmt "# %s (%s)@." e.Experiments.Registry.id
        e.Experiments.Registry.paper_ref;
      Experiments.Output.print_all fmt
        (e.Experiments.Registry.run Experiments.Scale.Quick))
    Experiments.Registry.all

let () =
  run_benchmarks ();
  regenerate_tables ()
