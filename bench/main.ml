(* Benchmark harness.

   Part 1 (Bechamel): one Test.make per paper table/figure, each timing
   the computational kernel that experiment leans on (a scaled-down run of
   the same code path), plus the hot primitives of the simulator.

   Part 2: regenerate every table/figure row at quick scale, so
   `dune exec bench/main.exe` reproduces the paper end to end. Use
   bin/experiments_cli at `-s default` (or `full`) for the
   publication-shaped numbers.

   Flags:
     --json FILE   also write machine-readable results (per-kernel ns/run,
                   wall-clock of the table regeneration at -j1 and -jN,
                   and whether the two outputs were byte-identical)
     --quota SEC   bechamel time quota per kernel (default 0.5)
     --jobs N      domains for the table regeneration (0 = auto)
     --scale S     regeneration scale: smoke|quick|default|full *)

open Bechamel
open Toolkit

module D = Experiments.Dumbbell
module S = Experiments.Schemes

(* --- kernels -------------------------------------------------------------- *)

let tiny_dumbbell scheme =
  D.run
    (D.uniform_flows
       { D.default with D.scheme; bandwidth = 5e6; duration = 4.0;
         warmup = 2.0; start_window = (0.0, 0.2) }
       ~n:2)

let kernel_fig2_4 =
  (* Section 2 analysis path: predictor + transition machine on a synthetic
     10k-sample trace. *)
  let rtts =
    Array.init 10_000 (fun i -> 0.05 +. (0.02 *. sin (float_of_int i /. 50.0)))
  in
  let times = Array.init 10_000 (fun i -> 0.001 *. float_of_int i) in
  let trace =
    Predictors.Trace.make ~times ~rtts ~flow_losses:[||]
      ~queue_losses:[| 1.0; 3.0; 7.0 |] ()
  in
  let predictor = Predictors.Predictor.ewma ~alpha:0.99 () in
  fun () ->
    let states = predictor.Predictors.Predictor.predict trace in
    Predictors.Transitions.count ~times ~states ~losses:[| 1.0; 3.0; 7.0 |] ()

let kernel_fig5 =
  let curve = Pert_core.Response_curve.default in
  fun () ->
    let acc = ref 0.0 in
    for i = 0 to 999 do
      acc :=
        !acc
        +. Units.Prob.to_float
             (Pert_core.Response_curve.probability curve
                (Units.Time.s (float_of_int i *. 3e-5)))
    done;
    !acc

let kernel_fig13a () =
  let out = ref 0.0 in
  for n = 1 to 50 do
    out :=
      !out
      +. Fluid.Stability.delta_min ~alpha:0.99 ~l_pert:2.0 ~c:1000.0
           ~n_min:(float_of_int n) ~r_plus:0.2
  done;
  !out

let kernel_fig13 () =
  let p = Fluid.Pert_fluid.paper_params ~r:0.1 () in
  Fluid.Pert_fluid.run p ~horizon:5.0 ~dt:0.001 ~record_every:100 ()

let kernel_dynamic () =
  Experiments.Dynamic.run
    {
      (Experiments.Dynamic.default Experiments.Scale.Quick S.Pert) with
      Experiments.Dynamic.epoch = 2.0;
      bin = 1.0;
      cohort_size = 2;
      bandwidth = 5e6;
    }

let kernel_multibneck () =
  Experiments.Multibneck.run
    {
      (Experiments.Multibneck.default Experiments.Scale.Quick S.Pert) with
      Experiments.Multibneck.duration = 4.0;
      warmup = 2.0;
      cloud_size = 2;
      link_bandwidth = 5e6;
    }

let kernel_web () =
  D.run
    (D.uniform_flows
       {
         D.default with
         D.scheme = S.Pert;
         bandwidth = 5e6;
         web_sessions = 20;
         duration = 4.0;
         warmup = 2.0;
         start_window = (0.0, 0.2);
       }
       ~n:2)

let kernel_table1 () =
  D.run
    {
      D.default with
      D.scheme = S.Pert;
      bandwidth = 5e6;
      flow_rtts = List.init 5 (fun i -> 0.02 *. float_of_int (i + 1));
      duration = 4.0;
      warmup = 2.0;
      start_window = (0.0, 0.2);
    }

let kernel_fig14 () =
  tiny_dumbbell (S.Pert_pi { target_delay = Units.Time.s 0.003 })

let kernel_other_aqm () = tiny_dumbbell S.Pert_rem

let kernel_stability () =
  let kp = Fluid.Stability.pert_k ~alpha:0.99 ~c:1000.0 ~n:10.0 in
  Fluid.Stability.boundary_r
    ~holds:(fun r ->
      Fluid.Stability.theorem1_holds ~l_pert:2.0 ~c:1000.0 ~n_min:10.0
        ~r_plus:r ~k:kp)
    ()

let kernel_reverse () =
  D.run
    (D.uniform_flows
       { D.default with D.scheme = S.Pert; bandwidth = 5e6;
         reverse_flows = 2; duration = 4.0; warmup = 2.0;
         start_window = (0.0, 0.2) }
       ~n:2)

(* primitives *)

let kernel_heap () =
  let h = Sim_engine.Heap.create () in
  for i = 0 to 999 do
    Sim_engine.Heap.add h ~time:(float_of_int ((i * 7919) mod 1000)) ~seq:i ()
  done;
  let rec drain () =
    match Sim_engine.Heap.pop h with Some _ -> drain () | None -> ()
  in
  drain ()

(* Same add/drain shape, but with the payload shape the simulator actually
   stores: one closure per event, invoked on pop. The closures keep the
   element boxes live, so this kernel also sees the cost of the popped-slot
   retention fix. *)
let kernel_heap_closure () =
  let h = Sim_engine.Heap.create () in
  let sink = ref 0 in
  for i = 0 to 999 do
    Sim_engine.Heap.add h
      ~time:(float_of_int ((i * 7919) mod 1000))
      ~seq:i
      (fun () -> sink := !sink + i)
  done;
  let rec drain () =
    match Sim_engine.Heap.pop h with
    | Some (_, _, f) ->
        f ();
        drain ()
    | None -> ()
  in
  drain ();
  !sink

(* Two orders of magnitude more elements: sift depth ~17 instead of ~10,
   and the working set falls out of L1. *)
let kernel_heap_100k () =
  let h = Sim_engine.Heap.create () in
  for i = 0 to 99_999 do
    Sim_engine.Heap.add h
      ~time:(float_of_int ((i * 7919) mod 100_000))
      ~seq:i ()
  done;
  let rec drain () =
    match Sim_engine.Heap.pop h with Some _ -> drain () | None -> ()
  in
  drain ()

(* The fused min_time/pop_min event loop in Sim.run, isolated: 10k trivial
   timers through the full scheduler path. *)
let kernel_sim_events () =
  let sim = Sim_engine.Sim.create ~seed:1 () in
  let count = ref 0 in
  for i = 0 to 9_999 do
    Sim_engine.Sim.at sim
      (Units.Time.s (1e-4 *. float_of_int i))
      (fun () -> incr count)
  done;
  Sim_engine.Sim.run ~until:(Units.Time.s 2.0) sim;
  !count

let kernel_pert_ack =
  let engine = Pert_core.Pert_red.create () in
  let i = ref 0 in
  fun () ->
    incr i;
    Pert_core.Pert_red.on_ack engine
      ~now:(0.001 *. float_of_int !i)
      ~rtt:(Units.Time.s (0.05 +. (0.01 *. sin (float_of_int !i))))
      ~u:0.999

let kernel_red_enqueue =
  let rng = Sim_engine.Rng.create 3 in
  let params = Netsim.Red.auto_params ~capacity_pps:1000.0 ~limit_pkts:100 () in
  let q = Netsim.Red.create ~rng ~params ~capacity_pps:1000.0 ~limit_pkts:100 in
  let f = Netsim.Packet.factory () in
  let i = ref 0 in
  fun () ->
    incr i;
    let pkt =
      Netsim.Packet.data f ~flow:0 ~src:0 ~dst:1 ~seq:!i ~ecn:true
        ~now:(0.001 *. float_of_int !i) ()
    in
    match q.Netsim.Queue_disc.enqueue ~now:(0.001 *. float_of_int !i) pkt with
    | Netsim.Queue_disc.Accept | Netsim.Queue_disc.Accept_marked ->
        ignore (q.Netsim.Queue_disc.dequeue ~now:(0.001 *. float_of_int !i))
    | Netsim.Queue_disc.Reject -> ()

let staged name f = Test.make ~name (Staged.stage f)

let tests =
  Test.make_grouped ~name:"pert" ~fmt:"%s/%s"
    [
      (* one kernel per paper artefact *)
      staged "fig2-4:predictor-analysis" (fun () -> ignore (kernel_fig2_4 ()));
      staged "fig5:response-curve" (fun () -> ignore (kernel_fig5 ()));
      staged "fig6:dumbbell-pert" (fun () -> ignore (tiny_dumbbell S.Pert));
      staged "fig6:dumbbell-droptail" (fun () ->
          ignore (tiny_dumbbell S.Sack_droptail));
      staged "fig7:dumbbell-red-ecn" (fun () ->
          ignore (tiny_dumbbell S.Sack_red_ecn));
      staged "fig8:dumbbell-vegas" (fun () -> ignore (tiny_dumbbell S.Vegas));
      staged "fig9:web-workload" (fun () -> ignore (kernel_web ()));
      staged "table1:hetero-rtt" (fun () -> ignore (kernel_table1 ()));
      staged "fig11:multibottleneck" (fun () -> ignore (kernel_multibneck ()));
      staged "fig12:dynamic-cohorts" (fun () -> ignore (kernel_dynamic ()));
      staged "fig13a:stability-sweep" (fun () -> ignore (kernel_fig13a ()));
      staged "fig13:fluid-dde" (fun () -> ignore (kernel_fig13 ()));
      staged "fig14:dumbbell-pert-pi" (fun () -> ignore (kernel_fig14 ()));
      staged "other-aqm:dumbbell-pert-rem" (fun () -> ignore (kernel_other_aqm ()));
      staged "stability:boundary-bisection" (fun () -> ignore (kernel_stability ()));
      staged "reverse:dumbbell-rev-flows" (fun () -> ignore (kernel_reverse ()));
      (* hot primitives *)
      staged "prim:heap-1k" kernel_heap;
      staged "prim:heap-1k-closure" (fun () -> ignore (kernel_heap_closure ()));
      staged "prim:heap-100k" kernel_heap_100k;
      staged "prim:sim-10k-events" (fun () -> ignore (kernel_sim_events ()));
      staged "prim:pert-on-ack" (fun () -> ignore (kernel_pert_ack ()));
      staged "prim:red-enqueue" kernel_red_enqueue;
    ]

(* --- measurement ----------------------------------------------------------- *)

let measure_kernels ~quota () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true
      ~compaction:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.merge ols instances
      (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) clock [] in
  let rows =
    List.map
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> (name, Some est)
        | Some _ | None -> (name, None))
      rows
  in
  List.sort (fun (a, _) (b, _) -> compare (a : string) b) rows

let print_kernels rows =
  Printf.printf "%-38s %16s\n" "benchmark" "time/run";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%8.3f  s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%8.3f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%8.3f us" (est /. 1e3)
            else Printf.sprintf "%8.1f ns" est
          in
          Printf.printf "%-38s %16s\n" name pretty
      | None -> Printf.printf "%-38s %16s\n" name "n/a")
    rows;
  print_newline ()

(* Render every registry table at [scale] with a [jobs]-wide pool; returns
   (wall_seconds, rendered_output). Rendering into a string lets the JSON
   mode check -j1 and -jN for byte identity instead of trusting it. *)
let regenerate_tables ~jobs ~scale () =
  let buf = Buffer.create (1 lsl 16) in
  let fmt = Format.formatter_of_buffer buf in
  let t0 = Unix.gettimeofday () in
  let results =
    Experiments.Registry.run_many
      ~ctx:(Experiments.Runner.ctx ~jobs ())
      scale Experiments.Registry.all
  in
  List.iter
    (fun (e, tables) ->
      Format.fprintf fmt "# %s (%s)@." e.Experiments.Registry.id
        e.Experiments.Registry.paper_ref;
      Experiments.Output.print_all fmt tables)
    results;
  Format.pp_print_flush fmt ();
  (Unix.gettimeofday () -. t0, Buffer.contents buf)

(* --- machine-readable trajectory ------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ~path ~quota ~scale ~kernels ~jobs1_wall ~jobsn ~jobsn_wall
    ~identical =
  let buf = Buffer.create (1 lsl 12) in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"pert-bench/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"cores\": %d,\n" (Parallel.default_jobs ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"scale\": \"%s\",\n"
       (json_escape (Experiments.Scale.to_string scale)));
  Buffer.add_string buf (Printf.sprintf "  \"quota_s\": %g,\n" quota);
  Buffer.add_string buf "  \"kernels\": [\n";
  let n = List.length kernels in
  List.iteri
    (fun i (name, est) ->
      Buffer.add_string buf
        (match est with
        | Some est ->
            Printf.sprintf "    { \"name\": \"%s\", \"ns_per_run\": %.2f }"
              (json_escape name) est
        | None ->
            Printf.sprintf "    { \"name\": \"%s\", \"ns_per_run\": null }"
              (json_escape name));
      Buffer.add_string buf (if i = n - 1 then "\n" else ",\n"))
    kernels;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"tables\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"jobs1_wall_s\": %.3f,\n" jobs1_wall);
  Buffer.add_string buf (Printf.sprintf "    \"jobsn\": %d,\n" jobsn);
  Buffer.add_string buf
    (Printf.sprintf "    \"jobsn_wall_s\": %.3f,\n" jobsn_wall);
  Buffer.add_string buf
    (Printf.sprintf "    \"identical\": %b\n" identical);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  Experiments.Store.write_atomic ~path (Buffer.contents buf)

(* --- driver ---------------------------------------------------------------- *)

let () =
  let opt_json = ref None in
  let opt_quota = ref 0.5 in
  let opt_jobs = ref 1 in
  let opt_scale = ref Experiments.Scale.Quick in
  let set_scale s =
    match Experiments.Scale.of_string s with
    | Ok v -> opt_scale := v
    | Error e -> raise (Arg.Bad e)
  in
  let specs =
    [
      ( "--json",
        Arg.String (fun s -> opt_json := Some s),
        "FILE  also write machine-readable results to FILE" );
      ( "--quota",
        Arg.Set_float opt_quota,
        "SEC  bechamel time quota per kernel (default 0.5)" );
      ( "--jobs",
        Arg.Set_int opt_jobs,
        "N  domains for table regeneration (0 = one per recommended core)" );
      ( "--scale",
        Arg.String set_scale,
        "SCALE  regeneration scale: smoke|quick|default|full (default quick)"
      );
    ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "bench/main.exe [--json FILE] [--quota SEC] [--jobs N] [--scale SCALE]";
  let jobs =
    if !opt_jobs = 0 then Parallel.default_jobs () else max 1 !opt_jobs
  in
  let scale = !opt_scale in
  let kernels = measure_kernels ~quota:!opt_quota () in
  print_kernels kernels;
  Printf.printf "=== paper tables/figures (%s scale) ===\n"
    (Experiments.Scale.to_string scale);
  print_endline
    "(use `dune exec bin/experiments_cli.exe -- all -s default` for the \
     publication-shaped runs)\n";
  match !opt_json with
  | None ->
      let wall, rendered = regenerate_tables ~jobs ~scale () in
      print_string rendered;
      Printf.printf "\n[tables regenerated in %.3f s at -j%d]\n" wall jobs
  | Some path ->
      (* The trajectory file records the sequential baseline and the -jN
         run side by side, plus whether their bytes matched. *)
      let wall1, out1 = regenerate_tables ~jobs:1 ~scale () in
      let walln, outn = regenerate_tables ~jobs ~scale () in
      print_string outn;
      let identical = String.equal out1 outn in
      write_json ~path ~quota:!opt_quota ~scale ~kernels ~jobs1_wall:wall1
        ~jobsn:jobs ~jobsn_wall:walln ~identical;
      Printf.printf
        "\n[tables: %.3f s at -j1, %.3f s at -j%d, identical=%b; wrote %s]\n"
        wall1 walln jobs identical path;
      if not identical then exit 1
