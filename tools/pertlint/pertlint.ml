(* pertlint — typedtree-based determinism & numerical-safety linter.

   Walks the .cmt files dune produces under _build and enforces the repo
   invariants that PERT's bit-identical-replay guarantee rests on:

     D1  no [Random.*] outside lib/engine/rng.ml (all randomness must flow
         through the splittable [Rng]); also flags [module R = Random].
     D2  no wall-clock or environment reads ([Unix.gettimeofday], [Sys.time],
         [Sys.getenv], ...) inside lib/.
     D3  no module-toplevel mutable state ([ref], mutable records, arrays,
         [Hashtbl.create], ...) inside lib/ — shared state that survives
         across runs breaks replay.  State created under a [fun] (i.e. per
         call, inside an explicit constructor) is fine.
     N1  no polymorphic/structural comparison on float operands ([=], [<>],
         [compare], [min], [max]) — NaN-oblivious; use [Float.equal],
         [Float.compare], [Float.min]/[Float.max] or a tolerance.
     N2  no [Obj.magic].
     H1  no catch-all [try ... with _ ->] swallowing exceptions.
     M1  every lib/ module ships an .mli (checked as: the .cmt has a
         sibling .cmti).
     U1  no float-typed binding or record label with a unit-suffixed name
         ([_s], [_ms], [_us], [_bps], [_mbps], [_bytes], [_pkts], [_prob],
         [_p]) inside lib/ — a value that names its unit must carry it in
         the type ([Units.Time.t], [Units.Rate.t], ...), not in a comment.
     U2  no inline probability decision: comparing a raw [Rng.float] draw
         against a bare float re-implements Bernoulli sampling without the
         [Units.Prob] clamping/NaN guarantees; use [Rng.bernoulli].
     U3  no bare truncation ([int_of_float], [truncate], [Float.to_int])
         of a unit-suffixed value, anywhere — rounding a quantity that
         carries a unit is a semantic decision; spell it with
         [Units.Round.trunc]/[floor]/[ceil]/[nearest].
     N3  no [int_of_float]/[truncate]/[Float.to_int] inside lib/ at all,
         outside lib/units/units.ml where [Units.Round] wraps them.
     P1  no concurrency primitives ([Domain.*], [Mutex.*], [Condition.*],
         [Atomic.*]) inside lib/ outside lib/parallel — every simulation
         stays a single-domain island; cross-domain coordination lives in
         the one audited pool.  Also flags [module D = Domain] aliasing.
     R1  no blocking or process-control calls ([Unix.sleep], [Unix.sleepf],
         [Unix.select], [Sys.command], [Unix.system], [exit]) inside lib/ —
         deadlines, retry and backoff must go through the supervised-task
         API ([Parallel.submit_supervised], [Sim.set_budget]), never an
         ad-hoc sleep or a library-initiated process exit.
     W1  no raw-int window binding inside lib/tcp outside tcp_window.ml:
         a binding or record label named like a TCP window ([wnd],
         [window], [rwnd], [awnd] or the [_wnd]/[_window]/[_rwnd]/[_awnd]
         suffixes) whose type is bare [int] re-opens the byte-vs-field
         confusion window scaling exists to close; window arithmetic must
         go through [Tcp_window] ([Units.Size]-typed, scale-aware).

   Suppression: attach [@lint.allow "D3"] to an expression or
   [let[@lint.allow "D3"] x = ...] to a binding; a floating
   [@@@lint.allow "M1"] disables a rule for the whole file.  The payload
   may list several rules separated by spaces or commas.

   Checks are intentionally structural (no Env reconstruction), so type
   abbreviations of [float] are not expanded — direct float operands only.

   The rule implementations, suppression machinery and output formats are
   shared with pertscan (the whole-program analyzer) via Lint_core; this
   file is only the file-at-a-time driver. *)

let () =
  Lint_core.prog := "pertlint";
  Lint_core.enabled_rules :=
    List.map (fun r -> r.Lint_core.id) Lint_core.lint_rules;
  let roots = ref [] in
  let spec = Lint_core.common_spec ~known:Lint_core.lint_rules in
  let usage = "pertlint [options] [dir-or-cmt ...]  (default: scan .)" in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  let roots = if !roots = [] then [ "." ] else List.rev !roots in
  let cmts =
    Lint_core.collect_under ~suffix:".cmt" roots
    |> Lint_core.require_nonempty ~what:".cmt files" roots
  in
  List.iter
    (fun path ->
      match Lint_core.load_cmt path with
      | None -> ()
      | Some l -> Lint_core.check_file l)
    cmts;
  (* Even a non-empty .cmt set can scan zero implementations (e.g. a
     directory holding only interface or generated artifacts); CI must
     treat that as a configuration error, not a clean pass. *)
  if !Lint_core.files_scanned = 0 then begin
    Printf.eprintf
      "pertlint: %d .cmt file(s) under %s but none was a scannable \
       implementation — wrong scope?\n"
      (List.length cmts)
      (String.concat " " roots);
    exit 2
  end;
  Lint_core.finish ()
