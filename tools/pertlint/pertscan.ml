(* pertscan — whole-program domain-safety & determinism analyzer.

   Where pertlint walks one .cmt at a time and checks single expressions,
   pertscan loads every .cmt (and .cmti) in scope at once, builds a
   cross-module mention/call graph plus two value-flow pools (record
   fields holding functions, and function arguments forwarded into the
   Parallel pool), and runs four whole-program analyses:

     S1  shared-mutable-escape race detector — a ref / array / Hashtbl /
         Buffer / Queue / Bytes / mutable-record value that is reachable
         from a closure handed to [Parallel.submit]/[map]/
         [submit_supervised] (directly, through a record field such as
         [Registry.experiment.run], or through a function argument
         forwarded by a submitter like [Runner.map]) while also being
         reachable from the submitting context, with no
         [Mutex.protect]/[Parallel.Guard.with_] on the accesses inside
         the task.  The diagnostic carries the whole chain: allocation
         site -> capture/access site -> submission site.
     S2  determinism taint — sources are Hashtbl iteration order
         ([iter]/[fold]/[to_seq*]), physical equality on boxed values,
         shortest-round-trip float formatting ([string_of_float]/
         [Float.to_string], which emit non-finite tokens), and draws from
         an Rng minted at module toplevel (not derived from a per-sim
         seed); sinks are the result store ([Store.put]/[write_atomic]),
         the table renderers ([Output.*] and [Output.table] literals) and
         the trace emitters ([Tracer.to_string]/[save]).  Taint flows
         through lets, calls and data constructors; sorting
         ([List.sort*]/[Array.sort*]) sanitizes.
     S3  unused exports — a [val] in an .mli never referenced outside its
         own module anywhere in the program (bins, tests, examples and
         benches count as references).
     S4  stale suppressions — a [@lint.allow] attribute that suppressed
         no diagnostic of any rule (pertlint's expression-local rules are
         re-run in tracking mode so their hits count).

   Suppression: the same [@lint.allow "S1"] syntax pertlint uses.  S1 is
   judged at the submission site, S2 at the sink, S3 at the [val] in the
   .mli ([val f : t [@@lint.allow "S3"]] with a comment saying why the
   export is kept), S4 is not suppressible (delete the attribute).

   Soundness caveats (see DESIGN.md "Whole-program analysis"): the
   analysis is name-based across modules (no Env reconstruction), does
   not see through first-class modules or functors, treats every function
   stored in a same-named record field alike, models [Mutex] guarding
   only in its scoped forms ([Mutex.protect], [Parallel.Guard.with_]) and
   trusts lib/parallel (the audited pool, pertlint P1) wholesale. *)

open Lint_core

(* ---------- name normalisation ---------- *)

(* "Experiments__Output" (a dune-wrapped compilation unit) and "Output"
   (the same module through its library alias) must compare equal. *)
let norm_mod m =
  let n = String.length m in
  let rec last_sep i best =
    if i >= n - 1 then best
    else if m.[i] = '_' && m.[i + 1] = '_' then last_sep (i + 2) (Some (i + 2))
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | Some i when i < n -> String.sub m i (n - i)
  | _ -> m

(* A global reference: (normalised defining-module basename, value name). *)
type gref = string * string

let gref_str (m, v) = m ^ "." ^ v

(* ---------- per-unit extraction ---------- *)

type mention = {
  m_ref : gref;
  m_loc : Location.t;
  m_guarded : bool;  (** inside Mutex.protect / Parallel.Guard.with_ *)
}

type capture = {
  c_id : Ident.t;
  c_name : string;
  c_loc : Location.t;  (** a use inside the closure *)
  c_ty : Types.type_expr;
  c_guarded : bool;  (** every use inside the closure is guarded *)
}

(* What a closure (or a function body) can reach, as far as pertscan can
   see: global values it mentions, record fields of function type it
   calls through, and the enclosing-scope variables it captures. *)
type closure_info = {
  cl_loc : Location.t;
  cl_mentions : mention list;
  cl_fields : string list;
  cl_captures : capture list;
}

type task =
  | T_closure of closure_info
  | T_global of gref * Location.t
  | T_param of Ident.t * Location.t  (** a function-typed local escapes *)

type submission = {
  s_owner : gref option;  (** enclosing toplevel value *)
  s_callee : gref;  (** Parallel.submit / map / submit_supervised *)
  s_loc : Location.t;
  s_scope : allow_entry list;
  s_tasks : task list;
}

type callsite = {
  cs_owner : gref option;
  cs_callee : gref;
  cs_loc : Location.t;
  cs_scope : allow_entry list;
  cs_tasks : task list;  (** function-valued arguments *)
}

type mutable_def = {
  md_ref : gref;
  md_loc : Location.t;
  md_kind : string;  (** "Hashtbl.t", "ref", ... *)
}

type value_info = {
  vi_ref : gref;
  vi_loc : Location.t;
  vi_mentions : mention list;
  vi_fields : string list;  (** function-typed record fields called *)
  vi_body : Typedtree.expression option;  (** for the taint pass *)
  vi_attrs : Typedtree.attributes;
}

type unit_info = {
  ui_mod : string;  (** normalised unit module name *)
  ui_source : string;
  ui_in_parallel : bool;
  ui_str : Typedtree.structure;
  mutable ui_values : value_info list;
  mutable ui_mutables : mutable_def list;
  mutable ui_rogue_rngs : gref list;  (** toplevel Rng.create/split *)
  mutable ui_submissions : submission list;
  mutable ui_callsites : callsite list;
  mutable ui_local_lambdas : (Ident.t * closure_info) list;
  mutable ui_def_locs : (Ident.t * Location.t) list;
}

type export = {
  e_unit : string;  (** normalised unit of the .mli *)
  e_qual : string;  (** module basename uses are qualified with *)
  e_name : string;
  e_loc : Location.t;
  e_scope : allow_entry list;
}

(* ---------- global state ---------- *)

let units : unit_info list ref = ref []
let exports : export list ref = ref []

(* (qualifier, name) -> set of using units (normalised). *)
let uses : (gref, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 512

(* record label -> function values stored into a same-named field. *)
let field_pools : (string, (gref, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64

(* project-wide registry of nominal record types with mutable fields,
   keyed (normalised module, type name). *)
let mutable_records : (gref, unit) Hashtbl.t = Hashtbl.create 64

let add_use ~from r =
  let tbl =
    match Hashtbl.find_opt uses r with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.replace uses r t;
        t
  in
  Hashtbl.replace tbl from ()

let add_field_store label r =
  let tbl =
    match Hashtbl.find_opt field_pools label with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.replace field_pools label t;
        t
  in
  Hashtbl.replace tbl r ()

(* ---------- type predicates ---------- *)

let rec is_arrow_ty ty =
  match Types.get_desc ty with
  | Tarrow _ -> true
  | Tlink t | Tsubst (t, _) -> is_arrow_ty t
  | Tpoly (t, _) -> is_arrow_ty t
  | _ -> false

let mutable_builtin_tys =
  [
    ("Stdlib.ref", "ref");
    ("ref", "ref");
    ("Stdlib.Hashtbl.t", "Hashtbl.t");
    ("Hashtbl.t", "Hashtbl.t");
    ("Stdlib.Buffer.t", "Buffer.t");
    ("Buffer.t", "Buffer.t");
    ("Stdlib.Queue.t", "Queue.t");
    ("Queue.t", "Queue.t");
    ("Stdlib.Stack.t", "Stack.t");
    ("Stack.t", "Stack.t");
  ]

(* The kind of shared-mutable a type is, or None.  Nominal records are
   looked up in [mutable_records] (filled by a prepass over every unit's
   type declarations), so cross-module mutable records are seen without
   Env reconstruction. *)
let mutable_ty_kind ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> (
      if Path.same p Predef.path_array then Some "array"
      else if Path.same p Predef.path_bytes then Some "bytes"
      else
        let name = Path.name p in
        match List.assoc_opt name mutable_builtin_tys with
        | Some k -> Some k
        | None -> (
            let comps = String.split_on_char '.' name in
            match List.rev comps with
            | v :: m :: _ when Hashtbl.mem mutable_records (norm_mod m, v) ->
                Some "mutable record"
            | [ v ] when Hashtbl.mem mutable_records (norm_mod "", v) ->
                Some "mutable record"
            | _ -> None))
  | _ -> None

(* ---------- path classification ---------- *)

(* Per-unit alias map: [module T = Netsim.Topology] makes "T" mean
   "Topology" for use-resolution. *)
type unit_ctx = {
  x_mod : string;
  x_aliases : (string, string) Hashtbl.t;
  x_toplevel : (Ident.t, string) Hashtbl.t;
      (** toplevel value idents of this unit -> qualified-as module *)
}

let resolve_alias ctx m =
  let rec go m seen =
    if List.mem m seen then m
    else
      match Hashtbl.find_opt ctx.x_aliases m with
      | Some t -> go t (m :: seen)
      | None -> m
  in
  go (norm_mod m) []

(* Classify an identifier path: a global (qualifier, name) or a local.
   Matching on Path constructors (not on [Path.name] strings) keeps
   operator names like [+.] intact. *)
type idkind = G of gref | Local of Ident.t | Opaque

let path_last_mod (p : Path.t) =
  match p with
  | Path.Pident id -> Ident.name id
  | Path.Pdot (_, s) -> s
  | _ -> "?"

let classify_path ctx (p : Path.t) : idkind =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt ctx.x_toplevel id with
      | Some qual -> G (qual, Ident.name id)
      | None -> Local id)
  | Path.Pdot (pre, v) -> G (resolve_alias ctx (path_last_mod pre), v)
  | _ -> Opaque

(* ---------- interesting names ---------- *)

let parallel_entry (q, v) =
  q = "Parallel" && List.mem v [ "submit"; "map"; "submit_supervised" ]

let guard_combinator (q, v) =
  (q = "Guard" && v = "with_") || (q = "Mutex" && v = "protect")

let hashtbl_order_source (q, v) =
  q = "Hashtbl"
  && List.mem v [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let float_repr_source (q, v) =
  (q = "Stdlib" && v = "string_of_float") || (q = "Float" && v = "to_string")

let physical_eq (q, v) = q = "Stdlib" && (v = "==" || v = "!=")

let sort_sanitizer (q, v) =
  (q = "List" && List.mem v [ "sort"; "stable_sort"; "fast_sort"; "sort_uniq" ])
  || (q = "Array" && List.mem v [ "sort"; "stable_sort" ])

let sink_fn (q, v) =
  (q = "Output"
  && List.mem v
       [ "print"; "print_all"; "to_csv"; "to_gnuplot"; "cell_f"; "cell_e"; "cell_i" ])
  || (q = "Store" && List.mem v [ "put"; "write_atomic" ])
  || (q = "Tracer" && List.mem v [ "to_string"; "save" ])

let rng_mod q = q = "Rng"

(* An immediate type can never differ physically between equal values. *)
let is_immediate_ty ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) ->
      Path.same p Predef.path_int
      || Path.same p Predef.path_bool
      || Path.same p Predef.path_char
      || Path.same p Predef.path_unit
  | Tvariant _ -> false
  | _ -> false

(* ---------- generic expression walker ----------

   One Tast_iterator drives every structural pass; hooks receive each
   identifier use (with the ambient guard depth), each application and
   each record construction.  Guard combinators recurse into their
   function argument with the guard depth raised. *)

type walk_hooks = {
  on_ident : idkind -> Types.type_expr -> Location.t -> guarded:bool -> unit;
  on_apply :
    idkind option ->
    Typedtree.expression ->
    (Asttypes.arg_label * Typedtree.expression option) list ->
    guarded:bool ->
    unit;
  on_field_use : string -> Types.type_expr -> unit;
  on_record : (Types.label_description * Typedtree.record_label_definition) array -> unit;
}

let null_hooks =
  {
    on_ident = (fun _ _ _ ~guarded:_ -> ());
    on_apply = (fun _ _ _ ~guarded:_ -> ());
    on_field_use = (fun _ _ -> ());
    on_record = (fun _ -> ());
  }

let walk_expr ctx hooks (e0 : Typedtree.expression) =
  let guard_depth = ref 0 in
  let iter = ref Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    with_allows e.exp_attributes (fun () ->
        match e.exp_desc with
        | Texp_ident (p, _, _) ->
            hooks.on_ident (classify_path ctx p) e.exp_type e.exp_loc
              ~guarded:(!guard_depth > 0)
        | Texp_apply (head, args) ->
            let head_kind =
              match head.exp_desc with
              | Texp_ident (p, _, _) -> Some (classify_path ctx p)
              | _ -> None
            in
            hooks.on_apply head_kind head args ~guarded:(!guard_depth > 0);
            let is_guard =
              match head_kind with
              | Some (G r) -> guard_combinator r
              | _ -> false
            in
            sub.Tast_iterator.expr sub head;
            List.iter
              (fun (_, a) ->
                match a with
                | None -> ()
                | Some a ->
                    if is_guard then begin
                      incr guard_depth;
                      Fun.protect
                        ~finally:(fun () -> decr guard_depth)
                        (fun () -> sub.Tast_iterator.expr sub a)
                    end
                    else sub.Tast_iterator.expr sub a)
              args
        | Texp_field (_, _, lbl) ->
            hooks.on_field_use lbl.lbl_name lbl.lbl_arg;
            Tast_iterator.(default_iterator.expr) sub e
        | Texp_record { fields; _ } ->
            hooks.on_record fields;
            Tast_iterator.(default_iterator.expr) sub e
        | _ -> Tast_iterator.(default_iterator.expr) sub e)
  in
  iter := { Tast_iterator.default_iterator with expr };
  (!iter).expr !iter e0

(* All idents bound by patterns inside [e] (including function params). *)
let bound_idents (e : Typedtree.expression) =
  let acc = ref [] in
  let pat : type k. Tast_iterator.iterator -> k Typedtree.general_pattern -> unit
      =
   fun sub p ->
    (match p.pat_desc with
    | Typedtree.Tpat_var (id, _) -> acc := id :: !acc
    | Typedtree.Tpat_alias (_, id, _) -> acc := id :: !acc
    | _ -> ());
    Tast_iterator.(default_iterator.pat) sub p
  in
  let iter = { Tast_iterator.default_iterator with pat } in
  iter.expr iter e;
  !acc

let mem_ident id ids = List.exists (fun b -> Ident.same b id) ids

(* The variable a simple binding introduces.  A type-constrained binding
   ([let cache : t = ...]) reaches the typedtree as [Tpat_alias] over
   [Tpat_any], not [Tpat_var]. *)
let binding_var (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (id, name) -> Some (id, name)
  | Typedtree.Tpat_alias (_, id, name) -> Some (id, name)
  | _ -> None

(* Analyse a closure: captures (free local idents), global mentions and
   function-typed field calls, with per-use guard tracking. *)
let closure_info ctx (lam : Typedtree.expression) =
  let bound = bound_idents lam in
  let mentions = ref [] in
  let fields = ref [] in
  let caps : (Ident.t, capture) Hashtbl.t = Hashtbl.create 8 in
  let hooks =
    {
      null_hooks with
      on_ident =
        (fun kind ty loc ~guarded ->
          match kind with
          | G r -> mentions := { m_ref = r; m_loc = loc; m_guarded = guarded } :: !mentions
          | Opaque -> ()
          | Local id ->
              if not (mem_ident id bound) then begin
                match Hashtbl.find_opt caps id with
                | Some c ->
                    Hashtbl.replace caps id
                      { c with c_guarded = c.c_guarded && guarded }
                | None ->
                    Hashtbl.replace caps id
                      {
                        c_id = id;
                        c_name = Ident.name id;
                        c_loc = loc;
                        c_ty = ty;
                        c_guarded = guarded;
                      }
              end);
      on_field_use =
        (fun lbl ty -> if is_arrow_ty ty then fields := lbl :: !fields);
    }
  in
  walk_expr ctx hooks lam;
  {
    cl_loc = lam.Typedtree.exp_loc;
    cl_mentions = !mentions;
    cl_fields = List.sort_uniq compare !fields;
    cl_captures = Hashtbl.fold (fun _ c acc -> c :: acc) caps [];
  }

(* The function-valued arguments of an application, as tasks. *)
let rec task_of_arg ctx (a : Typedtree.expression) =
  match a.exp_desc with
  | Texp_function _ -> Some (T_closure (closure_info ctx a))
  | Texp_construct (_, cd, [ inner ]) when cd.cstr_name = "Some" ->
      task_of_arg ctx inner
  | Texp_ident (p, _, _) when is_arrow_ty a.exp_type -> (
      match classify_path ctx p with
      | G r -> Some (T_global (r, a.exp_loc))
      | Local id -> Some (T_param (id, a.exp_loc))
      | Opaque -> None)
  | _ -> None

let tasks_of_args ctx args =
  List.filter_map
    (function _, Some a -> task_of_arg ctx a | _, None -> None)
    args

(* ---------- unit extraction ---------- *)

(* Mentions stored into a record field expression feed the field pool:
   a call through [r.field] anywhere may land in any of them. *)
let record_field_stores ctx fields =
  Array.iter
    (fun ((lbl : Types.label_description), def) ->
      match def with
      | Typedtree.Overridden (_, e) when is_arrow_ty lbl.lbl_arg ->
          let hooks =
            {
              null_hooks with
              on_ident =
                (fun kind ty _ ~guarded:_ ->
                  match kind with
                  | G r when is_arrow_ty ty -> add_field_store lbl.lbl_name r
                  | _ -> ());
            }
          in
          walk_expr ctx hooks e
      | _ -> ())
    fields

let extract_unit (l : loaded) =
  let ctx =
    {
      x_mod = norm_mod l.l_modname;
      x_aliases = Hashtbl.create 8;
      x_toplevel = Hashtbl.create 32;
    }
  in
  let ui =
    {
      ui_mod = ctx.x_mod;
      ui_source = l.l_source;
      ui_in_parallel = string_contains ~sub:"lib/parallel/" l.l_source;
      ui_str = l.l_str;
      ui_values = [];
      ui_mutables = [];
      ui_rogue_rngs = [];
      ui_submissions = [];
      ui_callsites = [];
      ui_local_lambdas = [];
      ui_def_locs = [];
    }
  in
  (* Prepass 1: toplevel value idents, module aliases, mutable-record
     type declarations (also harvested for nested modules, qualified by
     the submodule basename as uses will be). *)
  let rec pre qual (items : Typedtree.structure_item list) =
    List.iter
      (fun (it : Typedtree.structure_item) ->
        match it.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match binding_var vb.vb_pat with
                | Some (id, _) -> Hashtbl.replace ctx.x_toplevel id qual
                | None -> ())
              vbs
        | Tstr_module mb -> (
            let name =
              match mb.mb_id with Some id -> Ident.name id | None -> "_"
            in
            match mb.mb_expr.mod_desc with
            | Tmod_ident (p, _) | Tmod_constraint ({ mod_desc = Tmod_ident (p, _); _ }, _, _, _)
              -> (
                match List.rev (String.split_on_char '.' (Path.name p)) with
                | target :: _ ->
                    Hashtbl.replace ctx.x_aliases name (norm_mod target)
                | [] -> ())
            | Tmod_structure s | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _)
              ->
                pre name s.str_items
            | _ -> ())
        | Tstr_type (_, tds) ->
            List.iter
              (fun (td : Typedtree.type_declaration) ->
                match td.typ_kind with
                | Ttype_record lds
                  when List.exists
                         (fun (ld : Typedtree.label_declaration) ->
                           ld.ld_mutable = Asttypes.Mutable)
                         lds ->
                    Hashtbl.replace mutable_records (qual, td.typ_name.txt) ()
                | _ -> ())
              tds
        | _ -> ())
      items
  in
  pre ctx.x_mod l.l_str.str_items;
  (ui, ctx)

(* Main extraction over one unit's structure: per-value mentions,
   submissions, callsites, field stores, local lambdas, def locs. *)
let extract_body (ui : unit_info) ctx =
  let cur_value : gref option ref = ref None in
  let cur_mentions = ref [] in
  let cur_fields = ref [] in
  let hooks =
    {
      on_ident =
        (fun kind _ty loc ~guarded ->
          match kind with
          | G r ->
              add_use ~from:ui.ui_mod r;
              cur_mentions :=
                {
                  m_ref = r;
                  m_loc = loc;
                  m_guarded = guarded || ui.ui_in_parallel;
                }
                :: !cur_mentions
          | Local _ | Opaque -> ());
      on_apply =
        (fun head_kind head args ~guarded:_ ->
          match head_kind with
          | Some (G r) ->
              let tasks = tasks_of_args ctx args in
              if parallel_entry r then
                ui.ui_submissions <-
                  {
                    s_owner = !cur_value;
                    s_callee = r;
                    s_loc = head.Typedtree.exp_loc;
                    s_scope = current_allow_scope ();
                    s_tasks = tasks;
                  }
                  :: ui.ui_submissions
              else if tasks <> [] then
                ui.ui_callsites <-
                  {
                    cs_owner = !cur_value;
                    cs_callee = r;
                    cs_loc = head.Typedtree.exp_loc;
                    cs_scope = current_allow_scope ();
                    cs_tasks = tasks;
                  }
                  :: ui.ui_callsites
          | _ -> ());
      on_field_use =
        (fun lbl ty -> if is_arrow_ty ty then cur_fields := lbl :: !cur_fields);
      on_record = (fun fields -> record_field_stores ctx fields);
    }
  in
  (* fix the submission loc: prefer the application's own location *)
  let walk_value qual (vb : Typedtree.value_binding) =
    match binding_var vb.vb_pat with
    | Some (id, name) ->
        let r = (qual, Ident.name id) in
        cur_value := Some r;
        cur_mentions := [];
        cur_fields := [];
        ui.ui_def_locs <- (id, name.loc) :: ui.ui_def_locs;
        (match mutable_ty_kind vb.vb_pat.pat_type with
        | Some kind ->
            ui.ui_mutables <-
              { md_ref = r; md_loc = vb.vb_pat.pat_loc; md_kind = kind }
              :: ui.ui_mutables
        | None -> ());
        (* rogue Rng: a generator minted at module toplevel *)
        (match vb.vb_expr.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
            match classify_path ctx p with
            | G (q, v) when rng_mod q && (v = "create" || v = "split") ->
                ui.ui_rogue_rngs <- r :: ui.ui_rogue_rngs
            | _ -> ())
        | _ -> ());
        (match vb.vb_expr.exp_desc with
        | Texp_function _ ->
            ui.ui_local_lambdas <-
              (id, closure_info ctx vb.vb_expr) :: ui.ui_local_lambdas
        | _ -> ());
        with_allows vb.vb_attributes (fun () ->
            walk_expr ctx hooks vb.vb_expr);
        ui.ui_values <-
          {
            vi_ref = r;
            vi_loc = vb.vb_pat.pat_loc;
            vi_mentions = !cur_mentions;
            vi_fields = List.sort_uniq compare !cur_fields;
            vi_body = Some vb.vb_expr;
            vi_attrs = vb.vb_attributes;
          }
          :: ui.ui_values;
        cur_value := None
    | _ ->
        (* destructuring toplevel binding: record mentions anonymously *)
        cur_value := None;
        cur_mentions := [];
        with_allows vb.vb_attributes (fun () ->
            walk_expr ctx hooks vb.vb_expr)
  in
  let rec items qual (its : Typedtree.structure_item list) =
    List.iter
      (fun (it : Typedtree.structure_item) ->
        match it.str_desc with
        | Tstr_value (_, vbs) -> List.iter (walk_value qual) vbs
        | Tstr_module mb -> (
            let name =
              match mb.mb_id with Some id -> Ident.name id | None -> "_"
            in
            match mb.mb_expr.mod_desc with
            | Tmod_structure s
            | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) ->
                items name s.str_items
            | _ -> ())
        | Tstr_eval (e, _) ->
            cur_value := None;
            cur_mentions := [];
            walk_expr ctx hooks e
        | _ -> ())
      its
  in
  items ui.ui_mod ui.ui_str.str_items

(* Collect toplevel lambdas bound to local idents inside function bodies
   too: [let work () = ... in Parallel.map ~jobs work xs].  A single
   extra sweep over every value body. *)
let collect_local_lambdas (ui : unit_info) ctx =
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_let (_, vbs, _) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match (binding_var vb.vb_pat, vb.vb_expr.exp_desc) with
            | Some (id, name), Texp_function _ ->
                ui.ui_def_locs <- (id, name.loc) :: ui.ui_def_locs;
                ui.ui_local_lambdas <-
                  (id, closure_info ctx vb.vb_expr) :: ui.ui_local_lambdas
            | Some (id, name), _ ->
                ui.ui_def_locs <- (id, name.loc) :: ui.ui_def_locs
            | None, _ -> ())
          vbs
    | _ -> ());
    Tast_iterator.(default_iterator.expr) sub e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  iter.structure iter ui.ui_str

(* ---------- global tables ---------- *)

let pairs : (unit_info * unit_ctx) list ref = ref []

(* multi-binding: two libraries may normalise to the same module name *)
let values_tbl : (gref, value_info) Hashtbl.t = Hashtbl.create 512
let mutables_tbl : (gref, mutable_def) Hashtbl.t = Hashtbl.create 32
let rogue_rngs : (gref, unit) Hashtbl.t = Hashtbl.create 8

let loc_str (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.loc_start.pos_fname loc.loc_start.pos_lnum

let take n xs = List.filteri (fun i _ -> i < n) xs

let arm_file (ui : unit_info) =
  cur_source := ui.ui_source;
  cur_in_lib := string_prefix ~prefix:"lib/" ui.ui_source;
  file_allows := file_level_allows ui.ui_str;
  allow_stack := []

let build_tables () =
  List.iter
    (fun ui ->
      List.iter (fun vi -> Hashtbl.add values_tbl vi.vi_ref vi) (List.rev ui.ui_values);
      List.iter (fun md -> Hashtbl.replace mutables_tbl md.md_ref md) ui.ui_mutables;
      List.iter (fun r -> Hashtbl.replace rogue_rngs r ()) ui.ui_rogue_rngs)
    !units

(* ---------- S1: shared-mutable escape ---------- *)

(* What a task can effectively reach once let-bound local lambdas it
   captures are inlined.  A function-typed capture we cannot resolve means
   the enclosing function forwards *its caller's* closures into the pool —
   it becomes a submitter, and its own call sites are analysed instead. *)
type eff = {
  ef_mentions : mention list;
  ef_fields : string list;
  ef_caps : capture list;  (** non-function captures *)
  ef_escapes_params : bool;
}

let empty_eff =
  { ef_mentions = []; ef_fields = []; ef_caps = []; ef_escapes_params = false }

let find_local_lambda ui id =
  List.find_opt (fun (i, _) -> Ident.same i id) ui.ui_local_lambdas
  |> Option.map snd

let rec expand_closure ui visited (cl : closure_info) : eff =
  List.fold_left
    (fun eff (c : capture) ->
      if is_arrow_ty c.c_ty then
        if List.exists (fun v -> Ident.same v c.c_id) !visited then eff
        else begin
          visited := c.c_id :: !visited;
          match find_local_lambda ui c.c_id with
          | Some inner ->
              let e2 = expand_closure ui visited inner in
              {
                ef_mentions = e2.ef_mentions @ eff.ef_mentions;
                ef_fields = e2.ef_fields @ eff.ef_fields;
                ef_caps = e2.ef_caps @ eff.ef_caps;
                ef_escapes_params =
                  eff.ef_escapes_params || e2.ef_escapes_params;
              }
          | None -> { eff with ef_escapes_params = true }
        end
      else { eff with ef_caps = c :: eff.ef_caps })
    {
      ef_mentions = cl.cl_mentions;
      ef_fields = cl.cl_fields;
      ef_caps = [];
      ef_escapes_params = false;
    }
    cl.cl_captures

let eff_of_task ui = function
  | T_closure cl -> expand_closure ui (ref []) cl
  | T_global (r, loc) ->
      { empty_eff with ef_mentions = [ { m_ref = r; m_loc = loc; m_guarded = false } ] }
  | T_param _ -> { empty_eff with ef_escapes_params = true }

(* Functions that forward a caller-supplied closure into the Parallel
   pool (e.g. [Runner.map]); calls passing them a closure are submission
   sites too.  Fixpoint over call sites. *)
let submitters : (gref, unit) Hashtbl.t = Hashtbl.create 16

let compute_submitters () =
  let changed = ref true in
  let note = function
    | Some r when not (Hashtbl.mem submitters r) ->
        Hashtbl.replace submitters r ();
        changed := true
    | _ -> ()
  in
  List.iter
    (fun ui ->
      List.iter
        (fun s ->
          if
            List.exists
              (fun t -> (eff_of_task ui t).ef_escapes_params)
              s.s_tasks
          then note s.s_owner)
        ui.ui_submissions)
    !units;
  while !changed do
    changed := false;
    List.iter
      (fun ui ->
        List.iter
          (fun cs ->
            if
              Hashtbl.mem submitters cs.cs_callee
              && List.exists
                   (fun t -> (eff_of_task ui t).ef_escapes_params)
                   cs.cs_tasks
            then note cs.cs_owner)
          ui.ui_callsites)
      !units
  done

let s1_seen : (string, unit) Hashtbl.t = Hashtbl.create 16

let s1_once key f =
  if not (Hashtbl.mem s1_seen key) then begin
    Hashtbl.replace s1_seen key ();
    f ()
  end

let def_loc_of ui id =
  List.find_opt (fun (i, _) -> Ident.same i id) ui.ui_def_locs |> Option.map snd

let analyze_escape ui ~site_loc ~scope ~callee eff =
  (* captured locals of mutable type, unguarded inside the task *)
  if not ui.ui_in_parallel then
    List.iter
      (fun (c : capture) ->
        match mutable_ty_kind c.c_ty with
        | Some kind when not c.c_guarded ->
            let def =
              match def_loc_of ui c.c_id with
              | Some l -> Printf.sprintf "allocated at %s" (loc_str l)
              | None -> "allocation site not in this unit"
            in
            s1_once
              (Printf.sprintf "cap:%s:%s" c.c_name (loc_str site_loc))
              (fun () ->
                report_in_scope scope "S1" site_loc
                  (Printf.sprintf
                     "mutable '%s' (%s, %s) is captured (at %s) by a task \
                      handed to %s with no Mutex.protect/Parallel.Guard.with_ \
                      around its uses — a cross-domain data race"
                     c.c_name kind def (loc_str c.c_loc) callee))
        | _ -> ())
      eff.ef_caps;
  (* module-level mutables reachable from the task body *)
  let visited : (gref, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let check_mentions via ms =
    List.iter
      (fun m ->
        if (not m.m_guarded) && Hashtbl.mem mutables_tbl m.m_ref then
          let md = Hashtbl.find mutables_tbl m.m_ref in
          let chain =
            match via with
            | [] -> "directly"
            | path ->
                "via " ^ String.concat " -> " (take 3 (List.rev_map gref_str path))
          in
          s1_once
            (Printf.sprintf "glob:%s:%s" (gref_str m.m_ref) (loc_str site_loc))
            (fun () ->
              report_in_scope scope "S1" site_loc
                (Printf.sprintf
                   "module-level mutable '%s' (%s, defined at %s) is accessed \
                    unguarded at %s, reachable %s from a task handed to %s — \
                    wrap the accesses in Parallel.Guard.with_ (or Mutex.protect)"
                   (gref_str md.md_ref) md.md_kind (loc_str md.md_loc)
                   (loc_str m.m_loc) chain callee)))
      ms
  in
  let push via r = Queue.add (r, via) queue in
  let push_fields via fields =
    List.iter
      (fun lbl ->
        match Hashtbl.find_opt field_pools lbl with
        | Some pool -> Hashtbl.iter (fun r () -> push via r) pool
        | None -> ())
      fields
  in
  check_mentions [] eff.ef_mentions;
  List.iter (fun m -> push [] m.m_ref) eff.ef_mentions;
  push_fields [] eff.ef_fields;
  while not (Queue.is_empty queue) do
    let r, via = Queue.take queue in
    if not (Hashtbl.mem visited r) then begin
      Hashtbl.replace visited r ();
      List.iter
        (fun vi ->
          let via' = r :: via in
          check_mentions via' vi.vi_mentions;
          List.iter (fun m -> push via' m.m_ref) vi.vi_mentions;
          push_fields via' vi.vi_fields)
        (Hashtbl.find_all values_tbl r)
    end
  done

let run_s1 () =
  List.iter
    (fun ui ->
      List.iter
        (fun s ->
          List.iter
            (fun t ->
              analyze_escape ui ~site_loc:s.s_loc ~scope:s.s_scope
                ~callee:(gref_str s.s_callee) (eff_of_task ui t))
            s.s_tasks)
        (List.rev ui.ui_submissions);
      List.iter
        (fun cs ->
          if Hashtbl.mem submitters cs.cs_callee then
            List.iter
              (fun t ->
                analyze_escape ui ~site_loc:cs.cs_loc ~scope:cs.cs_scope
                  ~callee:
                    (Printf.sprintf "%s (which forwards it into the Parallel pool)"
                       (gref_str cs.cs_callee))
                  (eff_of_task ui t))
              cs.cs_tasks)
        (List.rev ui.ui_callsites))
    !units

(* ---------- S2: determinism taint ---------- *)

type taint = { t_kind : string; t_loc : Location.t }

(* gref -> taint its result may carry; grown monotonically to fixpoint. *)
let summaries : (gref, taint) Hashtbl.t = Hashtbl.create 64
let s2_seen : (string, unit) Hashtbl.t = Hashtbl.create 16
let s2_changed = ref false
let s2_record = ref false

let union2 a b = match a with Some _ -> a | None -> b
let unions ts = List.fold_left union2 None ts

let pat_idents : type k. k Typedtree.general_pattern -> Ident.t list =
 fun p ->
  let acc = ref [] in
  let pat : type k2. Tast_iterator.iterator -> k2 Typedtree.general_pattern -> unit
      =
   fun sub q ->
    (match q.pat_desc with
    | Typedtree.Tpat_var (id, _) -> acc := id :: !acc
    | Typedtree.Tpat_alias (_, id, _) -> acc := id :: !acc
    | _ -> ());
    Tast_iterator.(default_iterator.pat) sub q
  in
  let iter = { Tast_iterator.default_iterator with pat } in
  iter.pat iter p;
  !acc

(* Enclosing-scope locals a lambda reads: what a [Hashtbl.iter] body can
   mutate in nondeterministic order. *)
let free_locals ctx (lam : Typedtree.expression) =
  let bound = bound_idents lam in
  let acc = ref [] in
  let hooks =
    {
      null_hooks with
      on_ident =
        (fun kind _ _ ~guarded:_ ->
          match kind with
          | Local id when not (mem_ident id bound) -> acc := id :: !acc
          | _ -> ());
    }
  in
  walk_expr ctx hooks lam;
  !acc

let table_type ty =
  match Types.get_desc ty with
  | Tconstr (Path.Pdot (pre, "table"), _, _) ->
      norm_mod (path_last_mod pre) = "Output"
  | _ -> false

let sink_hit sink (t : taint) (loc : Location.t) =
  if !s2_record then
    let key = Printf.sprintf "%s:%s" (loc_str t.t_loc) (loc_str loc) in
    if not (Hashtbl.mem s2_seen key) then begin
      Hashtbl.replace s2_seen key ();
      report "S2" loc
        (Printf.sprintf
           "%s (introduced at %s) reaches '%s' — run-to-run nondeterminism in \
            observable output; sort/derive deterministically before emitting"
           t.t_kind (loc_str t.t_loc) sink)
    end

let rogue_arg ctx (a : Typedtree.expression) =
  match a.exp_desc with
  | Texp_ident (p, _, _) -> (
      match classify_path ctx p with
      | G r -> Hashtbl.mem rogue_rngs r
      | _ -> false)
  | _ -> false

let rec ev ctx env (e : Typedtree.expression) : taint option =
  with_allows e.exp_attributes (fun () ->
      match e.exp_desc with
      | Texp_ident (p, _, _) -> (
          match classify_path ctx p with
          | Local id -> Hashtbl.find_opt env id
          | G r -> Hashtbl.find_opt summaries r
          | Opaque -> None)
      | Texp_constant _ -> None
      | Texp_let (_, vbs, body) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match ev ctx env vb.vb_expr with
              | Some t ->
                  List.iter
                    (fun id -> Hashtbl.replace env id t)
                    (pat_idents vb.vb_pat)
              | None -> ())
            vbs;
          ev ctx env body
      | Texp_function _ -> None
      | Texp_apply (head, args) -> ev_apply ctx env e head args
      | Texp_match (scrut, cases, _) ->
          let st = ev ctx env scrut in
          let ts =
            List.map
              (fun (c : Typedtree.computation Typedtree.case) ->
                (match st with
                | Some t ->
                    List.iter
                      (fun id -> Hashtbl.replace env id t)
                      (pat_idents c.c_lhs)
                | None -> ());
                ev ctx env c.c_rhs)
              cases
          in
          unions (st :: ts)
      | Texp_try (b, cases) ->
          unions
            (ev ctx env b
            :: List.map
                 (fun (c : Typedtree.value Typedtree.case) -> ev ctx env c.c_rhs)
                 cases)
      | Texp_tuple es | Texp_construct (_, _, es) | Texp_array es ->
          unions (List.map (ev ctx env) es)
      | Texp_variant (_, eo) -> Option.bind eo (ev ctx env)
      | Texp_record { fields; extended_expression; _ } ->
          let ts =
            Array.to_list fields
            |> List.map (function
                 | _, Typedtree.Overridden (_, x) -> ev ctx env x
                 | _, Typedtree.Kept _ -> None)
          in
          let base = Option.bind extended_expression (ev ctx env) in
          let t = unions (base :: ts) in
          (match t with
          | Some taint when table_type e.exp_type ->
              sink_hit "Output.table literal" taint e.exp_loc
          | _ -> ());
          t
      | Texp_field (b, _, _) -> ev ctx env b
      | Texp_setfield (b, _, _, v) ->
          (match (ev ctx env v, b.exp_desc) with
          | Some taint, Texp_ident (p, _, _) -> (
              match classify_path ctx p with
              | Local id -> Hashtbl.replace env id taint
              | _ -> ())
          | _ -> ());
          ignore (ev ctx env b);
          None
      | Texp_ifthenelse (c, t, f) ->
          unions [ ev ctx env c; ev ctx env t; Option.bind f (ev ctx env) ]
      | Texp_sequence (a, b) ->
          ignore (ev ctx env a);
          ev ctx env b
      | Texp_while (c, b) ->
          ignore (ev ctx env c);
          ignore (ev ctx env b);
          None
      | Texp_for (_, _, lo, hi, _, b) ->
          ignore (ev ctx env lo);
          ignore (ev ctx env hi);
          ignore (ev ctx env b);
          None
      | Texp_open (_, b) | Texp_lazy b -> ev ctx env b
      | Texp_letmodule (_, _, _, _, b) -> ev ctx env b
      | Texp_assert _ -> None
      | _ -> None)

and ev_apply ctx env e head args =
  let some_args =
    List.filter_map (function _, Some a -> Some a | _ -> None) args
  in
  let at = unions (List.map (ev ctx env) some_args) in
  match head.Typedtree.exp_desc with
  | Texp_ident (p, _, _) -> (
      match classify_path ctx p with
      | G r ->
          if sort_sanitizer r then None
          else if hashtbl_order_source r then begin
            let t =
              { t_kind = "Hashtbl iteration order"; t_loc = e.Typedtree.exp_loc }
            in
            (* iter/fold run the closure in nondeterministic key order:
               whatever it accumulates into is order-tainted too *)
            List.iter
              (fun (a : Typedtree.expression) ->
                match a.exp_desc with
                | Texp_function _ ->
                    List.iter
                      (fun id -> Hashtbl.replace env id t)
                      (free_locals ctx a)
                | _ -> ())
              some_args;
            Some t
          end
          else if physical_eq r then
            if
              List.exists
                (fun (a : Typedtree.expression) ->
                  not (is_immediate_ty a.exp_type))
                some_args
            then
              Some
                {
                  t_kind = "physical equality on boxed values";
                  t_loc = e.Typedtree.exp_loc;
                }
            else None
          else if float_repr_source r then
            union2
              (Some
                 {
                   t_kind = "string_of_float formatting (emits nan/inf unguarded)";
                   t_loc = e.Typedtree.exp_loc;
                 })
              at
          else if
            rng_mod (fst r)
            && (not (List.mem (snd r) [ "create"; "split" ]))
            && List.exists (rogue_arg ctx) some_args
          then
            Some
              {
                t_kind = "draw from a module-toplevel Rng (not derived from the per-sim seed)";
                t_loc = e.Typedtree.exp_loc;
              }
          else if sink_fn r then begin
            (match at with
            | Some t -> sink_hit (gref_str r) t e.Typedtree.exp_loc
            | None -> ());
            None
          end
          else union2 (Hashtbl.find_opt summaries r) at
      | Local id -> union2 (Hashtbl.find_opt env id) at
      | Opaque -> at)
  | _ -> union2 (ev ctx env head) at

(* Return-taint of a function value: descend to the body under the
   parameters, evaluate with an empty (untainted) environment. *)
let rec fun_body_taint ctx env (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      unions
        (List.map
           (fun (c : Typedtree.value Typedtree.case) ->
             fun_body_taint ctx env c.c_rhs)
           cases)
  | _ -> ev ctx env e

let taint_pass record =
  s2_record := record;
  List.iter
    (fun (ui, ctx) ->
      arm_file ui;
      List.iter
        (fun vi ->
          match vi.vi_body with
          | None -> ()
          | Some body ->
              let env = Hashtbl.create 16 in
              let t =
                with_allows vi.vi_attrs (fun () -> fun_body_taint ctx env body)
              in
              (match t with
              | Some t when not (Hashtbl.mem summaries vi.vi_ref) ->
                  Hashtbl.replace summaries vi.vi_ref t;
                  s2_changed := true
              | _ -> ()))
        (List.rev ui.ui_values))
    !pairs

let run_taint () =
  let rec loop n =
    s2_changed := false;
    taint_pass false;
    if !s2_changed && n < 8 then loop (n + 1)
  in
  loop 0;
  taint_pass true

(* ---------- S3: unused exports ---------- *)

let extract_intf (i : loaded_intf) =
  let file_scope =
    List.concat_map
      (fun (it : Typedtree.signature_item) ->
        match it.sig_desc with
        | Tsig_attribute a -> Option.to_list (allows_of_attribute a)
        | _ -> [])
      i.i_sig.sig_items
  in
  let rec walk qual (items : Typedtree.signature_item list) =
    List.iter
      (fun (it : Typedtree.signature_item) ->
        match it.sig_desc with
        | Tsig_value vd ->
            exports :=
              {
                e_unit = norm_mod i.i_modname;
                e_qual = qual;
                e_name = vd.val_name.txt;
                e_loc = vd.val_name.loc;
                e_scope = allows_of_attributes vd.val_attributes @ file_scope;
              }
              :: !exports
        | Tsig_module md -> (
            match md.md_type.mty_desc with
            | Tmty_signature sg ->
                let name =
                  match md.md_id with Some id -> Ident.name id | None -> "_"
                in
                walk name sg.sig_items
            | _ -> ())
        | _ -> ())
      items
  in
  walk (norm_mod i.i_modname) i.i_sig.sig_items

let report_unused_exports () =
  let used e =
    match Hashtbl.find_opt uses (e.e_qual, e.e_name) with
    | None -> false
    | Some tbl -> Hashtbl.fold (fun u () acc -> acc || u <> e.e_unit) tbl false
  in
  List.iter
    (fun e ->
      if not (used e) then
        report_in_scope e.e_scope "S3" e.e_loc
          (Printf.sprintf
             "'%s.%s' is exported by its .mli but never referenced outside %s; \
              delete the export, or keep it with [@@lint.allow \"S3\"] and a \
              comment saying why"
             e.e_qual e.e_name e.e_unit))
    (List.rev !exports)

(* ---------- S4: stale suppressions ---------- *)

(* Runs last: S1–S3 (and the tracking re-run of pertlint's rules) have
   already credited every attribute that earns its keep. *)
let report_stale_allows () =
  registered_allows ()
  |> List.filter (fun e -> !(e.a_hits) = 0)
  |> List.sort (fun a b ->
         compare
           ( a.a_loc.Location.loc_start.pos_fname,
             a.a_loc.Location.loc_start.pos_lnum )
           ( b.a_loc.Location.loc_start.pos_fname,
             b.a_loc.Location.loc_start.pos_lnum ))
  |> List.iter (fun e ->
         report_in_scope [] "S4" e.a_loc
           (Printf.sprintf
              "[@lint.allow \"%s\"] suppresses no diagnostic; delete the stale \
               attribute"
              (String.concat " " e.a_rules)))

(* ---------- driver ---------- *)

let () =
  prog := "pertscan";
  enabled_rules := List.map (fun r -> r.id) scan_rules;
  let roots = ref [] in
  let spec = common_spec ~known:all_rules in
  let usage = "pertscan [options] [dir-or-cmt ...]  (default: scan .)" in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  let roots = if !roots = [] then [ "." ] else List.rev !roots in
  let user_rules = !enabled_rules in
  let cmts =
    collect_under ~suffix:".cmt" roots
    |> require_nonempty ~what:".cmt files" roots
  in
  let impls = List.filter_map load_cmt cmts in
  if impls = [] then begin
    Printf.eprintf
      "pertscan: %d .cmt file(s) under %s but none was a scannable \
       implementation — wrong scope?\n"
      (List.length cmts)
      (String.concat " " roots);
    exit 2
  end;
  let intfs = List.filter_map load_cmti (collect_under ~suffix:".cmti" roots) in
  (* prepass over every unit first: the mutable-record registry and alias
     maps must be complete before any body is analysed *)
  let prepared = List.map (fun l -> (l, extract_unit l)) impls in
  (* re-run pertlint's expression-local rules in tracking mode so their
     [@lint.allow]s are credited before the stale-suppression pass *)
  report_enabled := false;
  enabled_rules := List.map (fun r -> r.id) all_rules;
  List.iter (fun (l, _) -> check_file l) prepared;
  report_enabled := true;
  enabled_rules := user_rules;
  (* extraction *)
  List.iter
    (fun (_, (ui, ctx)) ->
      arm_file ui;
      extract_body ui ctx;
      collect_local_lambdas ui ctx;
      units := ui :: !units;
      pairs := (ui, ctx) :: !pairs)
    prepared;
  units := List.rev !units;
  pairs := List.rev !pairs;
  List.iter extract_intf intfs;
  build_tables ();
  (* analyses; S4 must run last (see above) *)
  compute_submitters ();
  run_s1 ();
  run_taint ();
  report_unused_exports ();
  report_stale_allows ();
  finish ()
