(* lint_core — the shared engine behind pertlint and pertscan.

   pertlint (file-at-a-time, expression-local rules D1..W1) and pertscan
   (whole-program analyses S1..S4) share everything below: the rule
   registry, the [@lint.allow] suppression machinery (with per-attribute
   hit tracking, which is what lets pertscan report *stale* suppressions),
   diagnostic accounting, text/json emission and .cmt collection.

   The rules themselves are documented in pertlint.ml (expression-local)
   and pertscan.ml (whole-program); README "Static analysis" and
   "Whole-program analysis" carry the user-facing tables. *)

(* No current rule is warning-severity; the level exists so later rules can
   be introduced without immediately gating the build. *)
type severity = Err | Warn [@@warning "-37"]

type rule = { id : string; severity : severity; what : string }

(* pertlint's expression-local rules. *)
let lint_rules =
  [
    { id = "D1"; severity = Err; what = "Random.* outside lib/engine/rng.ml" };
    { id = "D2"; severity = Err; what = "wall-clock/environment read in lib/" };
    { id = "D3"; severity = Err; what = "module-toplevel mutable state in lib/" };
    { id = "N1"; severity = Err; what = "structural =/compare/min/max on float" };
    { id = "N2"; severity = Err; what = "Obj.magic" };
    { id = "H1"; severity = Err; what = "catch-all exception handler" };
    { id = "M1"; severity = Err; what = "lib/ module without an .mli" };
    { id = "U1"; severity = Err; what = "unit-suffixed name bound as raw float in lib/" };
    { id = "U2"; severity = Err; what = "inline probability comparison against an Rng draw" };
    { id = "U3"; severity = Err; what = "bare truncation of a unit-suffixed value" };
    { id = "N3"; severity = Err; what = "float->int truncation in lib/ outside Units.Round" };
    { id = "P1"; severity = Err; what = "concurrency primitive in lib/ outside lib/parallel" };
    { id = "R1"; severity = Err; what = "blocking/process-control call in lib/" };
    { id = "W1"; severity = Err; what = "raw int window binding in lib/tcp outside Tcp_window" };
  ]

(* pertscan's whole-program rules.  Registered here so [@lint.allow "S1"]
   parses uniformly and so the stale-suppression pass (S4) can tell a
   pertscan allow from a typo. *)
let scan_rules =
  [
    { id = "S1"; severity = Err;
      what = "mutable state escapes unsynchronized into a Parallel task" };
    { id = "S2"; severity = Err;
      what = "nondeterminism source flows to a result store/renderer/trace sink" };
    { id = "S3"; severity = Err;
      what = ".mli export never referenced outside its module" };
    { id = "S4"; severity = Err;
      what = "[@lint.allow] that suppresses no diagnostic" };
  ]

let all_rules = lint_rules @ scan_rules
let rule_by_id id = List.find_opt (fun r -> r.id = id) all_rules

(* ---------- configuration (set once from the CLI by the driver) ---------- *)

let prog = ref "pertlint"
let enabled_rules = ref (List.map (fun r -> r.id) lint_rules)
let assume_scope_lib = ref false
let assume_scope_tcp = ref false
let quiet = ref false
let stats = ref false
let format_json = ref false

(* When false, [report] only exercises the suppression machinery (so allow
   hits are still recorded) and emits/counts nothing.  pertscan runs the
   expression-local checks in this mode: it must learn which allows fire
   without re-reporting pertlint's diagnostics. *)
let report_enabled = ref true

(* ---------- per-run accounting ---------- *)

let counts : (string, int) Hashtbl.t = Hashtbl.create 8
let error_total = ref 0
let files_scanned = ref 0

type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_severity : string;
  f_rule : string;
  f_message : string;
}

(* Accumulated in reverse; only materialised for --format=json. *)
let findings : finding list ref = ref []

(* ---------- suppression ---------- *)

(* Every [@lint.allow] attribute instance seen during a run, keyed by its
   source location so the two walks that may visit the same attribute
   (the main iterator and pertlint's dedicated D3 walk) share one entry.
   [hits] counts the diagnostics the attribute actually suppressed; an
   entry still at 0 when the whole program has been analysed is a stale
   suppression (pertscan rule S4). *)
type allow_entry = {
  a_loc : Location.t;
  a_rules : string list;
  a_hits : int ref;
}

let allow_registry : (string * int * int, allow_entry) Hashtbl.t =
  Hashtbl.create 64

let registered_allows () =
  Hashtbl.fold (fun _ e acc -> e :: acc) allow_registry []

(* ---------- per-file state ---------- *)

let cur_source = ref ""
let cur_in_lib = ref false
let file_allows : allow_entry list ref = ref []
let allow_stack : allow_entry list ref = ref []

let string_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let string_suffix ~suffix s =
  let ls = String.length s and l = String.length suffix in
  ls >= l && String.sub s (ls - l) l = suffix

let string_contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let split_rule_list s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.filter_map (fun t ->
         let t = String.trim t in
         if t = "" then None else Some t)

let register_allow (loc : Location.t) rules =
  let p = loc.loc_start in
  let key = (p.pos_fname, p.pos_lnum, p.pos_cnum - p.pos_bol) in
  match Hashtbl.find_opt allow_registry key with
  | Some e -> e
  | None ->
      let e = { a_loc = loc; a_rules = rules; a_hits = ref 0 } in
      Hashtbl.replace allow_registry key e;
      e

let allows_of_attribute (attr : Parsetree.attribute) =
  if attr.attr_name.txt <> "lint.allow" then None
  else
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        Some (register_allow attr.attr_loc (split_rule_list s))
    | _ -> None

let allows_of_attributes attrs = List.filter_map allows_of_attribute attrs

let with_allows attrs f =
  match allows_of_attributes attrs with
  | [] -> f ()
  | allows ->
      allow_stack := allows @ !allow_stack;
      Fun.protect
        ~finally:(fun () ->
          allow_stack :=
            List.filteri (fun i _ -> i >= List.length allows) !allow_stack)
        f

(* The scope (file-level + enclosing attributes) in force right now, e.g.
   to snapshot at an extraction site for later whole-program reporting. *)
let current_allow_scope () = !file_allows @ !allow_stack

let scope_allows scope id =
  match List.find_opt (fun e -> List.mem id e.a_rules) scope with
  | Some e ->
      incr e.a_hits;
      true
  | None -> false

let allowed id = scope_allows (current_allow_scope ()) id

let emit_finding id (loc : Location.t) msg =
  let r = match rule_by_id id with Some r -> r | None -> assert false in
  let p = loc.loc_start in
  let sev = match r.severity with Err -> "error" | Warn -> "warning" in
  if r.severity = Err then incr error_total;
  Hashtbl.replace counts id
    (1 + Option.value ~default:0 (Hashtbl.find_opt counts id));
  findings :=
    {
      f_file = p.pos_fname;
      f_line = p.pos_lnum;
      f_col = p.pos_cnum - p.pos_bol;
      f_severity = sev;
      f_rule = id;
      f_message = msg;
    }
    :: !findings;
  if not (!quiet || !format_json) then
    Printf.printf "%s:%d:%d: %s [%s] %s\n" p.pos_fname p.pos_lnum
      (p.pos_cnum - p.pos_bol) sev id msg

(* Report against the ambient (traversal-time) suppression scope. *)
let report id (loc : Location.t) msg =
  if List.mem id !enabled_rules && not (allowed id) then
    if !report_enabled then emit_finding id loc msg

(* Report against a scope snapshotted earlier with
   [current_allow_scope] — pertscan's whole-program findings are emitted
   long after the traversal that discovered their sites. *)
let report_in_scope scope id (loc : Location.t) msg =
  if List.mem id !enabled_rules && not (scope_allows scope id) then
    emit_finding id loc msg

(* ---------- cmt loading ---------- *)

type loaded = {
  l_path : string;  (** the .cmt file *)
  l_source : string;  (** the .ml it was compiled from *)
  l_modname : string;  (** compilation unit name, e.g. "Experiments__Output" *)
  l_str : Typedtree.structure;
}

let load_cmt path =
  let info =
    (* Any read/unmarshal failure means an unusable .cmt, whatever the
       exception; fail the run with a pointer to the file. *)
    (try Cmt_format.read_cmt path
     with _ ->
       Printf.eprintf "%s: cannot read %s\n" !prog path;
       exit 2)
    [@lint.allow "H1"]
  in
  match info.cmt_sourcefile with
  | None -> None
  | Some src when string_suffix ~suffix:".ml-gen" src -> None
  | Some src -> (
      match info.cmt_annots with
      | Implementation str ->
          Some
            { l_path = path; l_source = src; l_modname = info.cmt_modname; l_str = str }
      | _ -> None)

type loaded_intf = {
  i_path : string;  (** the .cmti file *)
  i_source : string;  (** the .mli it was compiled from *)
  i_modname : string;
  i_sig : Typedtree.signature;
}

let load_cmti path =
  let info =
    (try Cmt_format.read_cmt path
     with _ ->
       Printf.eprintf "%s: cannot read %s\n" !prog path;
       exit 2)
    [@lint.allow "H1"]
  in
  match info.cmt_sourcefile with
  | None -> None
  | Some src -> (
      match info.cmt_annots with
      | Interface sg ->
          Some { i_path = path; i_source = src; i_modname = info.cmt_modname; i_sig = sg }
      | _ -> None)

let file_level_allows (s : Typedtree.structure) =
  List.concat_map
    (fun (it : Typedtree.structure_item) ->
      match it.str_desc with
      | Tstr_attribute a -> Option.to_list (allows_of_attribute a)
      | _ -> [])
    s.str_items

(* Arm the per-file state for [l]; every subsequent [report] attributes
   diagnostics to its source file. *)
let enter_file (l : loaded) =
  incr files_scanned;
  cur_source := l.l_source;
  cur_in_lib := !assume_scope_lib || string_prefix ~prefix:"lib/" l.l_source;
  file_allows := file_level_allows l.l_str;
  allow_stack := []

(* Collect build artifacts under the given roots, skipping the
   deliberately-bad lint/scan fixtures (linted only when a fixture .cmt is
   passed explicitly). *)
let rec collect ~suffix acc path =
  let base = Filename.basename path in
  if base = "lint_fixtures" || base = "scan_fixtures" || base = ".git" then acc
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> collect ~suffix acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path suffix then path :: acc
  else acc

let collect_under ~suffix roots =
  List.concat_map
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "%s: no such path %s\n" !prog r;
        exit 2
      end;
      List.sort compare (collect ~suffix [] r))
    roots

(* A scan that finds nothing is almost always a wrong root (e.g. the
   source tree instead of _build/default, or a pre-build invocation) and
   would otherwise report a misleading clean pass; CI must never
   green-light an empty run. *)
let require_nonempty ~what roots xs =
  if xs = [] then begin
    Printf.eprintf
      "%s: no %s under %s — build first, and point at the _build tree (e.g. \
       _build/default/lib)\n"
      !prog what
      (String.concat " " roots);
    exit 2
  end;
  xs

(* ---------- expression-local rule predicates (pertlint D1..W1) ---------- *)

let in_lib () = !cur_in_lib
let is_rng_ml () = string_suffix ~suffix:"lib/engine/rng.ml" !cur_source
let is_units_ml () = string_suffix ~suffix:"lib/units/units.ml" !cur_source
let in_parallel_lib () = string_contains ~sub:"lib/parallel/" !cur_source
let in_tcp_lib () = !assume_scope_tcp || string_contains ~sub:"lib/tcp/" !cur_source
let is_tcp_window_ml () = string_suffix ~suffix:"lib/tcp/tcp_window.ml" !cur_source

let d1_hit name =
  name = "Stdlib.Random" || string_prefix ~prefix:"Stdlib.Random." name

let d2_names =
  [
    "Stdlib.Sys.time";
    "Stdlib.Sys.getenv";
    "Stdlib.Sys.getenv_opt";
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.times";
    "Unix.clock";
    "Unix.localtime";
    "Unix.gmtime";
    "Unix.getenv";
    "Unix.environment";
  ]

let r1_names =
  [
    "Unix.sleep";
    "Unix.sleepf";
    "Unix.select";
    "Stdlib.Sys.command";
    "Unix.system";
    "Stdlib.exit";
  ]

let n1_fns =
  [
    "Stdlib.=";
    "Stdlib.<>";
    "Stdlib.==";
    "Stdlib.!=";
    "Stdlib.compare";
    "Stdlib.min";
    "Stdlib.max";
  ]

let d3_creators =
  [
    "Stdlib.ref";
    "Stdlib.Hashtbl.create";
    "Stdlib.Buffer.create";
    "Stdlib.Queue.create";
    "Stdlib.Stack.create";
    "Stdlib.Atomic.make";
    "Stdlib.Array.make";
    "Stdlib.Array.create_float";
    "Stdlib.Array.init";
    "Stdlib.Bytes.create";
    "Stdlib.Bytes.make";
    "Stdlib.Random.State.make";
    "Stdlib.Random.get_state";
  ]

let is_float_ty ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> Path.same p Predef.path_float
  | _ -> false

let is_int_ty ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> Path.same p Predef.path_int
  | _ -> false

(* Suffixes that claim a unit in a name.  [_p] is the conventional
   probability suffix (RED's max_p); a lone "p" does not match. *)
let unit_suffixes =
  [ "_s"; "_ms"; "_us"; "_bps"; "_mbps"; "_bytes"; "_pkts"; "_prob"; "_p" ]

let unit_suffixed name =
  List.exists (fun suffix -> string_suffix ~suffix name) unit_suffixes

(* Names that claim to be a TCP window (W1).  Composite names like
   [wnd_scale] or [window_allows_new] do not match: only a name that
   *is* a window, not one that merely mentions it. *)
let window_suffixes = [ "_wnd"; "_window"; "_rwnd"; "_awnd" ]
let window_exact = [ "wnd"; "window"; "rwnd"; "awnd" ]

let window_named name =
  List.mem name window_exact
  || List.exists (fun suffix -> string_suffix ~suffix name) window_suffixes

let u2_cmp_fns =
  [ "Stdlib.<"; "Stdlib.<="; "Stdlib.>"; "Stdlib.>="; "Stdlib.="; "Stdlib.<>" ]

let is_rng_draw (a : Typedtree.expression) =
  match a.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (path, _, _); _ }, _) ->
      string_suffix ~suffix:"Rng.float" (Path.name path)
  | _ -> false

let truncators = [ "Stdlib.int_of_float"; "Stdlib.truncate"; "Stdlib.Float.to_int" ]

let p1_roots =
  [ "Stdlib.Domain"; "Stdlib.Mutex"; "Stdlib.Condition"; "Stdlib.Atomic" ]

let p1_hit name =
  List.exists
    (fun root -> name = root || string_prefix ~prefix:(root ^ ".") name)
    p1_roots

(* The name a U3 diagnostic can attach to: a unit-suffixed identifier or
   record field being truncated. *)
let unit_named_operand (a : Typedtree.expression) =
  match a.exp_desc with
  | Texp_ident (path, _, _) when unit_suffixed (Path.last path) ->
      Some (Path.last path)
  | Texp_field (_, _, lbl) when unit_suffixed lbl.lbl_name -> Some lbl.lbl_name
  | _ -> None

let rec catch_all_pat (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_alias (p, _, _) -> catch_all_pat p
  | Tpat_or (a, b, _) -> catch_all_pat a || catch_all_pat b
  | _ -> false

(* ---------- main typedtree walk (D1, D2, N1, N2, H1, ...) ---------- *)

let check_ident (e : Typedtree.expression) path =
  let name = Path.name path in
  if d1_hit name && not (is_rng_ml ()) then
    report "D1" e.exp_loc
      (Printf.sprintf "'%s': randomness outside lib/engine/rng.ml; draw via a split Rng"
         name);
  if in_lib () && List.mem name d2_names then
    report "D2" e.exp_loc
      (Printf.sprintf "'%s': wall-clock/environment read breaks replay; thread the value in"
         name);
  if name = "Stdlib.Obj.magic" then
    report "N2" e.exp_loc "Obj.magic defeats the type system";
  if in_lib () && (not (in_parallel_lib ())) && p1_hit name then
    report "P1" e.exp_loc
      (Printf.sprintf
         "'%s': concurrency primitive outside lib/parallel; simulations must stay single-domain — go through the Parallel pool"
         name);
  if in_lib () && List.mem name r1_names then
    report "R1" e.exp_loc
      (Printf.sprintf
         "'%s': blocking/process-control call in lib/; deadlines, retry and backoff must go through the supervised-task API (Parallel.submit_supervised / Sim.set_budget)"
         name)

let check_expr (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) -> check_ident e path
  | Texp_apply ({ exp_desc = Texp_ident (path, _, _); exp_loc = floc; _ }, args)
    ->
      let name = Path.name path in
      let some_args =
        List.filter_map (function _, Some a -> Some a | _, None -> None) args
      in
      if
        List.mem name n1_fns
        && List.exists
             (fun (a : Typedtree.expression) -> is_float_ty a.exp_type)
             some_args
      then
        report "N1" floc
          (Printf.sprintf
             "structural '%s' on float operands is NaN-oblivious; use Float.equal/Float.compare/Float.min/Float.max or a tolerance"
             (Path.last path));
      if List.mem name u2_cmp_fns && List.exists is_rng_draw some_args then
        report "U2" floc
          (Printf.sprintf
             "'%s' against a raw Rng draw re-implements Bernoulli sampling; draw the decision with Rng.bernoulli on a Units.Prob.t"
             (Path.last path));
      if List.mem name truncators then begin
        if in_lib () && not (is_units_ml ()) then
          report "N3" floc
            (Printf.sprintf
               "'%s' in lib/ hides a rounding decision; use Units.Round.trunc/floor/ceil/nearest"
               (Path.last path));
        List.iter
          (fun a ->
            match unit_named_operand a with
            | Some operand ->
                report "U3" floc
                  (Printf.sprintf
                     "'%s' truncates unit-carrying '%s' without an explicit rounding mode; use Units.Round.trunc/floor/ceil/nearest"
                     (Path.last path) operand)
            | None -> ())
          some_args
      end
  | Texp_try (_, cases) ->
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          if c.c_guard = None && catch_all_pat c.c_lhs then
            report "H1" c.c_lhs.pat_loc
              "catch-all 'with _ ->' swallows every exception (incl. Out_of_memory, Stack_overflow); match specific exceptions")
        cases
  | _ -> ()

(* U1: a name that spells its unit but a type that has forgotten it. *)
let check_unit_name (loc : Location.t) name ty =
  if
    in_lib ()
    && (not (is_units_ml ()))
    && unit_suffixed name && is_float_ty ty
  then
    report "U1" loc
      (Printf.sprintf
         "'%s' names its unit but is a raw float; carry the unit in the type (Units.Time/Rate/Size/Pkts/Prob)"
         name)

(* W1: a raw-int window in lib/tcp.  Is this bytes or a wire field?
   Scaled or unscaled?  The name cannot say; the [Tcp_window] types can. *)
let check_window_name (loc : Location.t) name ty =
  if
    in_tcp_lib ()
    && (not (is_tcp_window_ml ()))
    && window_named name && is_int_ty ty
  then
    report "W1" loc
      (Printf.sprintf
         "'%s' is a raw int window in lib/tcp; window arithmetic must go through Tcp_window (Units.Size-typed, scale-aware)"
         name)

let check_binding_name loc name ty =
  check_unit_name loc name ty;
  check_window_name loc name ty

let check_type_decl (td : Typedtree.type_declaration) =
  match td.typ_kind with
  | Ttype_record lds ->
      List.iter
        (fun (ld : Typedtree.label_declaration) ->
          check_binding_name ld.ld_name.loc ld.ld_name.txt ld.ld_type.ctyp_type)
        lds
  | _ -> ()

let iterator =
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    with_allows e.exp_attributes (fun () ->
        check_expr e;
        default_iterator.expr sub e)
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    with_allows vb.vb_attributes (fun () ->
        default_iterator.value_binding sub vb)
  in
  let pat : type k. iterator -> k Typedtree.general_pattern -> unit =
   fun sub p ->
    (match p.pat_desc with
    | Typedtree.Tpat_var (_, name) ->
        check_binding_name name.loc name.txt p.pat_type
    | Typedtree.Tpat_alias (_, _, name) ->
        check_binding_name name.loc name.txt p.pat_type
    | _ -> ());
    default_iterator.pat sub p
  in
  let type_declaration sub (td : Typedtree.type_declaration) =
    check_type_decl td;
    default_iterator.type_declaration sub td
  in
  let module_expr sub (me : Typedtree.module_expr) =
    (match me.mod_desc with
    | Tmod_ident (path, _) when d1_hit (Path.name path) && not (is_rng_ml ()) ->
        report "D1" me.mod_loc
          (Printf.sprintf "aliasing '%s' re-exports ambient randomness" (Path.name path))
    | Tmod_ident (path, _)
      when in_lib ()
           && (not (in_parallel_lib ()))
           && p1_hit (Path.name path) ->
        report "P1" me.mod_loc
          (Printf.sprintf "aliasing '%s' smuggles a concurrency primitive past lib/parallel"
             (Path.name path))
    | _ -> ());
    default_iterator.module_expr sub me
  in
  { default_iterator with expr; value_binding; module_expr; pat; type_declaration }

(* ---------- D3: module-toplevel mutable state (lib/ only) ----------

   Walks structure items; inside a toplevel binding it recurses through the
   evaluated spine of the expression but never under [fun]/[lazy], so state
   minted per call inside an explicit constructor is not flagged. *)

let rec d3_structure (s : Typedtree.structure) =
  List.iter d3_item s.str_items

and d3_item (it : Typedtree.structure_item) =
  match it.str_desc with
  | Tstr_value (_, vbs) -> List.iter d3_binding vbs
  | Tstr_module mb -> d3_module_expr mb.mb_expr
  | Tstr_recmodule mbs ->
      List.iter (fun (mb : Typedtree.module_binding) -> d3_module_expr mb.mb_expr) mbs
  | Tstr_include incl -> d3_module_expr incl.incl_mod
  | _ -> ()

and d3_module_expr (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure s -> d3_structure s
  | Tmod_constraint (me, _, _, _) -> d3_module_expr me
  | _ -> ()

and d3_binding (vb : Typedtree.value_binding) =
  with_allows vb.vb_attributes (fun () -> d3_expr vb.vb_expr)

and d3_expr (e : Typedtree.expression) =
  with_allows e.exp_attributes (fun () ->
      match e.exp_desc with
      | Texp_function _ | Texp_lazy _ -> ()
      | Texp_apply ({ exp_desc = Texp_ident (path, _, _); _ }, args) ->
          let name = Path.name path in
          if List.mem name d3_creators then
            report "D3" e.exp_loc
              (Printf.sprintf
                 "'%s' at module toplevel is shared mutable state — a replay/determinism hazard; mint it inside a constructor"
                 name)
          else
            List.iter (function _, Some a -> d3_expr a | _, None -> ()) args
      | Texp_record { fields; _ } ->
          if
            Array.exists
              (fun ((ld : Types.label_description), _) ->
                ld.lbl_mut = Asttypes.Mutable)
              fields
          then
            report "D3" e.exp_loc
              "record with mutable fields at module toplevel — mint it inside a constructor"
          else
            Array.iter
              (function
                | _, Typedtree.Overridden (_, a) -> d3_expr a
                | _, Typedtree.Kept _ -> ())
              fields
      | Texp_array _ ->
          report "D3" e.exp_loc
            "array literal at module toplevel is shared mutable state"
      | Texp_let (_, vbs, body) ->
          List.iter d3_binding vbs;
          d3_expr body
      | Texp_sequence (a, b) ->
          d3_expr a;
          d3_expr b
      | Texp_ifthenelse (c, t, f) ->
          d3_expr c;
          d3_expr t;
          Option.iter d3_expr f
      | Texp_tuple es | Texp_construct (_, _, es) -> List.iter d3_expr es
      | Texp_match (scrut, cases, _) ->
          d3_expr scrut;
          List.iter
            (fun (c : Typedtree.computation Typedtree.case) -> d3_expr c.c_rhs)
            cases
      | Texp_open (_, body) -> d3_expr body
      | _ -> ())

(* Run every expression-local rule over one loaded implementation.
   Arms the per-file state as a side effect. *)
let check_file (l : loaded) =
  enter_file l;
  if in_lib () && not (Sys.file_exists (Filename.remove_extension l.l_path ^ ".cmti"))
  then begin
    let pos =
      { Lexing.pos_fname = l.l_source; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 }
    in
    report "M1"
      { Location.loc_start = pos; loc_end = pos; loc_ghost = false }
      "lib/ module has no .mli; write one to pin its public surface"
  end;
  if in_lib () then d3_structure l.l_str;
  iterator.structure iterator l.l_str

(* ---------- output ---------- *)

(* Stats go to stderr under --format=json so stdout stays a valid JSON
   document for tooling to parse. *)
let print_stats () =
  let oc = if !format_json then stderr else stdout in
  Printf.fprintf oc "\nrule  severity  count  description\n";
  Printf.fprintf oc "----  --------  -----  -----------\n";
  List.iter
    (fun r ->
      if List.mem r.id !enabled_rules then
        Printf.fprintf oc "%-4s  %-8s  %5d  %s\n" r.id
          (match r.severity with Err -> "error" | Warn -> "warning")
          (Option.value ~default:0 (Hashtbl.find_opt counts r.id))
          r.what)
    all_rules;
  Printf.fprintf oc "total: %d violation(s) across %d file(s)\n"
    (Hashtbl.fold (fun _ n acc -> n + acc) counts 0)
    !files_scanned

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_json () =
  let item f =
    Printf.sprintf
      "  {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"severity\": \"%s\", \
       \"rule\": \"%s\", \"message\": \"%s\"}"
      (json_escape f.f_file) f.f_line f.f_col f.f_severity f.f_rule
      (json_escape f.f_message)
  in
  print_string
    (match List.rev_map item !findings with
    | [] -> "[]\n"
    | items -> "[\n" ^ String.concat ",\n" items ^ "\n]\n")

(* ---------- shared CLI scaffolding ---------- *)

let set_rules ~known s =
  let ids =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  List.iter
    (fun id ->
      if not (List.exists (fun r -> r.id = id) known) then begin
        Printf.eprintf "%s: unknown rule %S\n" !prog id;
        exit 2
      end)
    ids;
  enabled_rules := ids

let common_spec ~known =
  [
    ( "--rules",
      Arg.String (set_rules ~known),
      "R1,R2 only check the listed rules" );
    ( "--assume-scope",
      Arg.String
        (fun s ->
          match s with
          | "lib" -> assume_scope_lib := true
          | "lib/tcp" ->
              (* lib/tcp is inside lib: the narrower assumption implies
                 the wider one. *)
              assume_scope_lib := true;
              assume_scope_tcp := true
          | _ ->
              Printf.eprintf
                "%s: --assume-scope takes 'lib' or 'lib/tcp'\n" !prog;
              exit 2),
      "SCOPE treat every file as if it lived under lib/ or lib/tcp/ (fixture testing)" );
    ("--stats", Arg.Set stats, " print a per-rule violation count table");
    ("--quiet", Arg.Set quiet, " suppress per-violation diagnostics");
    ( "--format",
      Arg.String
        (fun s ->
          match s with
          | "text" -> format_json := false
          | "json" -> format_json := true
          | _ ->
              Printf.eprintf "%s: --format takes 'text' or 'json'\n" !prog;
              exit 2),
      "FMT output format: text (default) or json (findings array on stdout)" );
  ]

let finish () =
  if !format_json then print_json ();
  if !stats then print_stats ();
  exit (if !error_total > 0 then 1 else 0)
