(* The control-theoretic side (paper Section 5): integrate the PERT fluid
   model across the Theorem 1 stability boundary and print trajectories
   plus the closed-form verdicts.

   Run with: dune exec examples/fluid_stability.exe *)

module PF = Fluid.Pert_fluid
module S = Fluid.Stability

let () =
  List.iter
    (fun r ->
      let p = PF.paper_params ~r () in
      let ok =
        S.theorem1_holds ~l_pert:p.PF.l_pert ~c:p.PF.c ~n_min:p.PF.n ~r_plus:r
          ~k:p.PF.k
      in
      let _times, series = PF.run p ~horizon:80.0 ~dt:0.001 ~record_every:500 () in
      let w = series.(0) in
      let w_star, tq_star, p_star = PF.equilibrium p in
      Printf.printf
        "R=%3.0f ms: theorem1=%-7s simulated=%-11s  (W*=%.2f Tq*=%.3f p*=%.3f)\n"
        (r *. 1000.0)
        (if ok then "stable" else "outside")
        (if PF.is_stable_trajectory w then "stable" else "oscillating")
        w_star tq_star p_star;
      (* small sparkline of the last quarter of the trajectory *)
      let n = Array.length w in
      let lo = Array.fold_left min infinity w
      and hi = Array.fold_left max neg_infinity w in
      let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
      print_string "  W(t) ";
      for i = 3 * n / 4 to n - 1 do
        let frac = if hi > lo then (w.(i) -. lo) /. (hi -. lo) else 0.0 in
        print_char glyphs.(min 7 (int_of_float (frac *. 8.0)))
      done;
      print_newline ())
    [ 0.100; 0.140; 0.160; 0.171; 0.180 ];
  print_endline
    "The oscillation onset between 160 and 171 ms matches the paper's \
     Fig. 13 stability boundary.";
  (* Fig 13a flavour: how the admissible sampling interval shrinks. *)
  print_endline "\nminimum stable sampling interval (C=1000 pkt/s, R+=200 ms):";
  List.iter
    (fun n_min ->
      let d = S.delta_min ~alpha:0.99 ~l_pert:2.0 ~c:1000.0 ~n_min ~r_plus:0.2 in
      Printf.printf "  N-=%2.0f  delta_min=%.3f s\n" n_min d)
    [ 1.0; 5.0; 10.0; 20.0; 40.0 ]
