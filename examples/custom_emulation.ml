(* The PERT core is simulator-agnostic: anything that can timestamp ACKs
   can emulate AQM. This example drives Pert_core directly with a
   synthetic RTT series (a queue ramp, then a drain) and shows when the
   engine asks for early responses — the integration surface a real TCP
   stack (or QUIC library) would use.

   Run with: dune exec examples/custom_emulation.exe *)

module R = Pert_core.Pert_red

let () =
  let engine = R.create () in
  let rng = Sim_engine.Rng.create 11 in
  let base = 0.050 in
  (* 4000 ACKs at ~2 ms spacing: queueing delay ramps 0 -> 25 ms over the
     first half, then drains back. *)
  let responses = ref [] in
  for i = 0 to 3999 do
    let t = 0.002 *. float_of_int i in
    let ramp =
      if i < 2000 then float_of_int i /. 2000.0
      else float_of_int (4000 - i) /. 2000.0
    in
    let rtt = base +. (0.025 *. ramp) in
    match
      R.on_ack engine ~now:t ~rtt:(Units.Time.s rtt)
        ~u:(Sim_engine.Rng.float rng 1.0)
    with
    | R.Hold -> ()
    | R.Early_response -> responses := (t, Units.Prob.to_float (R.probability engine)) :: !responses
  done;
  Printf.printf "early responses: %d (decrease factor %.2f each)\n"
    (R.early_responses engine) (R.decrease_factor engine);
  List.iter
    (fun (t, p) -> Printf.printf "  t=%5.2f s  p(srtt)=%.3f\n" t p)
    (List.rev !responses);
  print_endline
    "Responses cluster where the smoothed queueing delay sits in the \
     5-20 ms band, at most one per RTT — gentle-RED behaviour without \
     touching a router."
