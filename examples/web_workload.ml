(* A web-dominated workload (the scenario the paper's Section 4.4 uses to
   stress bursty traffic): a handful of long-lived PERT flows share the
   bottleneck with many short web transfers. Prints the metrics the paper
   reports plus web-object completion counts.

   Run with: dune exec examples/web_workload.exe *)

module D = Experiments.Dumbbell

let () =
  List.iter
    (fun web_sessions ->
      let config =
        D.uniform_flows
          {
            D.default with
            scheme = Experiments.Schemes.Pert;
            bandwidth = 20e6;
            web_sessions;
            duration = 60.0;
            warmup = 20.0;
          }
          ~n:8
      in
      let r = D.run config in
      Printf.printf
        "web=%4d  avg_queue=%5.1f pkts  drop_rate=%.2e  util=%.3f  jain=%.3f\n"
        web_sessions
        (Units.Pkts.to_float r.D.avg_queue_pkts)
        r.D.drop_rate r.D.utilization r.D.jain)
    [ 0; 25; 100; 250 ];
  print_endline
    "Queue stays small and drops stay (near) zero as the web load grows — \
     the PERT flows absorb the bursts by responding early."
