(* Transient behaviour (the paper's Fig. 12 scenario): cohorts of PERT
   flows join every 15 s, then leave in arrival order. Prints an ASCII
   timeline of each cohort's share of the bottleneck.

   Run with: dune exec examples/dynamic_flows.exe *)

let () =
  let config =
    {
      (Experiments.Dynamic.default Experiments.Scale.Quick
         Experiments.Schemes.Pert)
      with
      Experiments.Dynamic.epoch = 15.0;
      bin = 3.0;
    }
  in
  let times, series = Experiments.Dynamic.run config in
  let n_cohorts = Array.length series in
  Printf.printf "t(s)   ";
  for k = 1 to n_cohorts do
    Printf.printf "cohort%d " k
  done;
  print_newline ();
  Array.iteri
    (fun i t ->
      Printf.printf "%5.0f  " t;
      for k = 0 to n_cohorts - 1 do
        Printf.printf "%7.2f " (series.(k).(i) /. 1e6)
      done;
      (* crude bar of cohort 1's share *)
      let total = Array.fold_left (fun a s -> a +. s.(i)) 0.0 series in
      let share =
        if total <= 0.0 then 0 else int_of_float (20.0 *. series.(0).(i) /. total)
      in
      print_string ("  |" ^ String.make share '#');
      print_newline ())
    times;
  print_endline
    "Each arriving cohort converges to an equal share within a few \
     seconds; departures free bandwidth that survivors reclaim quickly."
