(* The whole AQM zoo on one scenario: every router-side scheme and every
   end-host emulation this repository implements, on an identical
   20 Mbps / 60 ms dumbbell with 8 flows. The end-host rows need no router
   support at all — that is the paper's point.

   Run with: dune exec examples/aqm_zoo.exe *)

module D = Experiments.Dumbbell
module S = Experiments.Schemes

let () =
  Printf.printf "%-14s %-9s %8s %10s %7s %7s %7s\n" "scheme" "control"
    "Q(pkts)" "droprate" "util" "jain" "early";
  List.iter
    (fun (scheme, where) ->
      let r =
        D.run
          (D.uniform_flows
             {
               D.default with
               D.scheme;
               bandwidth = 20e6;
               duration = 40.0;
               warmup = 15.0;
             }
             ~n:8)
      in
      Printf.printf "%-14s %-9s %8.1f %10.2e %7.3f %7.3f %7d\n"
        (S.name scheme) where
        (Units.Pkts.to_float r.D.avg_queue_pkts)
        r.D.drop_rate r.D.utilization
        r.D.jain r.D.early_responses)
    [
      (S.Sack_droptail, "none");
      (S.Sack_red_ecn, "router");
      (S.Sack_pi_ecn { target_delay = Units.Time.s 0.003 }, "router");
      (S.Sack_rem_ecn, "router");
      (S.Sack_avq_ecn, "router");
      (S.Vegas, "end-host");
      (S.Pert, "end-host");
      (S.Pert_pi { target_delay = Units.Time.s 0.003 }, "end-host");
      (S.Pert_rem, "end-host");
      (S.Pert_avq, "end-host");
    ];
  print_endline
    "\nEvery end-host row achieves router-AQM-like queues and losses over \
     plain DropTail routers."
