(* Quickstart: build a dumbbell by hand, run one PERT flow and one
   SACK/DropTail flow on identical networks, and compare what the paper
   cares about — queue build-up and drops — in ~40 lines of API.

   Run with: dune exec examples/quickstart.exe *)

module Sim = Sim_engine.Sim
module T = Netsim.Topology
module Link = Netsim.Link
module Flow = Tcpstack.Flow

let run_one name make_cc =
  let sim = Sim.create ~seed:7 () in
  let topo = T.create sim in
  (* source -- r1 ===bottleneck=== r2 -- sink *)
  let src = T.add_node topo
  and r1 = T.add_node topo
  and r2 = T.add_node topo
  and sink = T.add_node topo in
  let fast () = Netsim.Droptail.create ~limit_pkts:10_000 in
  let bottleneck_queue = Netsim.Droptail.create ~limit_pkts:60 in
  ignore
    (T.add_duplex topo ~a:src ~b:r1 ~bandwidth:(Units.Rate.bps 100e6)
       ~delay:(Units.Time.s 0.002) ~disc_ab:(fast ()) ~disc_ba:(fast ()));
  let bottleneck =
    T.add_link topo ~src:r1 ~dst:r2 ~bandwidth:(Units.Rate.bps 10e6)
      ~delay:(Units.Time.s 0.025)
      ~disc:bottleneck_queue
  in
  ignore
    (T.add_link topo ~src:r2 ~dst:r1 ~bandwidth:(Units.Rate.bps 10e6)
       ~delay:(Units.Time.s 0.025) ~disc:(fast ()));
  ignore
    (T.add_duplex topo ~a:r2 ~b:sink ~bandwidth:(Units.Rate.bps 100e6)
       ~delay:(Units.Time.s 0.002) ~disc_ab:(fast ()) ~disc_ba:(fast ()));
  T.compute_routes topo;
  let flow = Flow.create topo ~src ~dst:sink ~cc:(make_cc sim) () in
  Sim.run ~until:(Units.Time.s 30.0) sim;
  Printf.printf
    "%-16s goodput=%5.2f Mbps  avg_queue=%5.1f pkts  drops=%3d  \
     early_responses=%d\n"
    name
    (Units.Rate.to_mbps (Flow.goodput_bps flow ~now:(Sim.now sim)))
    (Units.Pkts.to_float (Link.avg_queue_pkts bottleneck))
    (Link.drops bottleneck) (Flow.early_responses flow)

let () =
  print_endline "PERT vs standard TCP on a 10 Mbps / 58 ms dumbbell:";
  run_one "sack/droptail" (fun _sim -> Tcpstack.Cc.newreno ());
  run_one "pert" (fun sim ->
      Tcpstack.Pert_cc.create ~rng:(Sim_engine.Rng.split (Sim.rng sim)) ());
  print_endline
    "PERT should show a much smaller standing queue and (near) zero drops \
     at similar goodput."
