(* Run a scenario file: `scenario_run path/to/file.scn`.
   See Scenario's interface (lib/scenario/scenario.mli) for the language. *)

let () =
  match Sys.argv with
  | [| _; path |] -> (
      let source = In_channel.with_open_text path In_channel.input_all in
      match Scenario.parse_and_run source with
      | Ok report -> Scenario.pp_report Format.std_formatter report
      | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 1)
  | _ ->
      Printf.eprintf "usage: %s SCENARIO_FILE\n" Sys.argv.(0);
      exit 2
