(* Command-line driver for the paper-reproduction experiments:
   `experiments_cli list`, `experiments_cli run fig6 table1 --scale quick`,
   `experiments_cli all --csv out/ --resume --deadline 300`. *)

open Cmdliner

let scale_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Experiments.Scale.of_string s) in
  Arg.conv (parse, fun fmt s -> Format.fprintf fmt "%s" (Experiments.Scale.to_string s))

let scale_arg =
  Arg.(
    value
    & opt scale_conv Experiments.Scale.Default
    & info [ "s"; "scale" ] ~docv:"SCALE"
        ~doc:
          "Experiment size: smoke (sub-second, CI), quick, default or full \
           (paper parameters).")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as CSV into $(docv).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run independent simulations on $(docv) domains (0 = one per \
           recommended core). Output is bit-identical for every $(docv).")

let resume_arg =
  Arg.(
    value
    & opt ~vopt:(Some ".pert-store") (some string) None
    & info [ "resume" ] ~docv:"DIR"
        ~doc:
          "Checkpoint completed simulation cells into $(docv) (default \
           $(b,.pert-store)) and skip cells already present — a rerun \
           after a crash or SIGKILL recomputes only what is missing. \
           Printed tables are byte-identical with or without the store.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SEC"
        ~doc:
          "Per-simulation wall-clock budget in seconds; a cell that \
           exceeds it renders as TIMEOUT instead of hanging the sweep.")

let max_events_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-events" ] ~docv:"N"
        ~doc:
          "Per-simulation event budget; a cell that exceeds it renders \
           as TIMEOUT instead of spinning forever.")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Re-run a crashed simulation cell up to $(docv) times \
           (deterministic seeded backoff) before rendering it FAILED.")

let seed_arg =
  Arg.(
    value & opt int 2007
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Base random seed for seed-parameterised experiment families \
           (e.g. the adversarial attack schedules) and retry backoff \
           jitter. Different seeds are different random universes; the \
           same seed replays bit-for-bit.")

let resolve_jobs = function
  | 0 -> Parallel.default_jobs ()
  | n when n < 0 -> 1
  | n -> n

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_csv dir id tables =
  mkdir_p dir;
  List.iteri
    (fun i table ->
      let path =
        Filename.concat dir
          (if i = 0 then id ^ ".csv" else Printf.sprintf "%s-%d.csv" id i)
      in
      Experiments.Store.write_atomic ~path (Experiments.Output.to_csv table))
    tables

let run_experiments ids scale csv jobs resume deadline max_events retries seed =
  let fmt = Format.std_formatter in
  let missing = List.filter (fun id -> Experiments.Registry.find id = None) ids in
  if missing <> [] then
    `Error (false, "unknown experiment(s): " ^ String.concat ", " missing)
  else begin
    let jobs = resolve_jobs jobs in
    let store = Option.map (fun dir -> Experiments.Store.open_ ~dir) resume in
    let ctx =
      Experiments.Runner.ctx ~jobs ?store ~retries
        ?deadline:(Option.map Units.Time.s deadline)
        ?max_events ~seed ()
    in
    let exps = List.filter_map Experiments.Registry.find ids in
    (* Registry-level fan-out: run everything first (in parallel when
       jobs > 1), then print in request order. *)
    let results = Experiments.Registry.run_many ~ctx scale exps in
    let failures = ref 0 in
    List.iter
      (fun (e, tables) ->
        Format.fprintf fmt "# %s (%s) at scale %s@." e.Experiments.Registry.id
          e.Experiments.Registry.paper_ref
          (Experiments.Scale.to_string scale);
        Experiments.Output.print_all fmt tables;
        List.iter
          (fun t -> failures := !failures + Experiments.Output.failure_count t)
          tables;
        Option.iter
          (fun dir -> write_csv dir e.Experiments.Registry.id tables)
          csv)
      results;
    if !failures > 0 then begin
      Printf.eprintf
        "pert-experiments: %d cell(s) FAILED or TIMEOUT — tables above are \
         partial\n"
        !failures;
      `Ok 3
    end
    else `Ok 0
  end

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-8s %-14s %s\n" e.Experiments.Registry.id
          e.Experiments.Registry.paper_ref e.Experiments.Registry.summary)
      Experiments.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List reproducible tables/figures.")
    Term.(const run $ const ())

let ids_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"ID" ~doc:"Experiment ids (see $(b,list)).")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run selected experiments and print their tables.")
    Term.(
      ret
        (const run_experiments $ ids_arg $ scale_arg $ csv_arg $ jobs_arg
       $ resume_arg $ deadline_arg $ max_events_arg $ retries_arg
       $ seed_arg))

let all_cmd =
  let run scale csv jobs resume deadline max_events retries seed =
    run_experiments
      (Experiments.Registry.ids ())
      scale csv jobs resume deadline max_events retries seed
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in paper order.")
    Term.(
      ret
        (const run $ scale_arg $ csv_arg $ jobs_arg $ resume_arg
       $ deadline_arg $ max_events_arg $ retries_arg $ seed_arg))

let main =
  let doc = "Reproduce the tables and figures of the PERT paper (SIGCOMM 2007)" in
  Cmd.group (Cmd.info "pert-experiments" ~doc) [ list_cmd; run_cmd; all_cmd ]

let () = exit (Cmd.eval' main)
