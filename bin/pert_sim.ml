(* Single-scenario simulator CLI: pick a scheme and a dumbbell
   configuration, get the paper's four metrics (and per-flow goodputs). *)

open Cmdliner

let scheme_conv =
  let parse = function
    | "pert" -> Ok Experiments.Schemes.Pert
    | "pert-ecn" -> Ok Experiments.Schemes.Pert_ecn
    | "sack-droptail" | "sack" -> Ok Experiments.Schemes.Sack_droptail
    | "sack-red-ecn" | "red" -> Ok Experiments.Schemes.Sack_red_ecn
    | "vegas" -> Ok Experiments.Schemes.Vegas
    | "pert-pi" ->
        Ok (Experiments.Schemes.Pert_pi { target_delay = Units.Time.s 0.003 })
    | "sack-pi-ecn" | "pi" ->
        Ok
          (Experiments.Schemes.Sack_pi_ecn
             { target_delay = Units.Time.s 0.003 })
    | "pert-rem" -> Ok Experiments.Schemes.Pert_rem
    | "pert-avq" -> Ok Experiments.Schemes.Pert_avq
    | "sack-rem-ecn" | "rem" -> Ok Experiments.Schemes.Sack_rem_ecn
    | "sack-avq-ecn" | "avq" -> Ok Experiments.Schemes.Sack_avq_ecn
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  Arg.conv
    (parse, fun fmt s -> Format.fprintf fmt "%s" (Experiments.Schemes.name s))

let scheme =
  Arg.(
    value
    & opt scheme_conv Experiments.Schemes.Pert
    & info [ "scheme" ]
        ~doc:
          "Congestion control / queue combination: pert, pert-ecn, \
           sack-droptail, sack-red-ecn, vegas, pert-pi, sack-pi-ecn, \
           pert-rem, sack-rem-ecn, sack-avq-ecn.")

let bandwidth =
  Arg.(
    value & opt float 50.0
    & info [ "bandwidth" ] ~docv:"MBPS" ~doc:"Bottleneck bandwidth in Mbit/s.")

let rtt =
  Arg.(
    value & opt float 60.0
    & info [ "rtt" ] ~docv:"MS" ~doc:"Two-way propagation delay in ms.")

let flows =
  Arg.(value & opt int 16 & info [ "flows" ] ~doc:"Forward long-lived flows.")

let reverse =
  Arg.(value & opt int 0 & info [ "reverse" ] ~doc:"Reverse long-lived flows.")

let web = Arg.(value & opt int 0 & info [ "web" ] ~doc:"Web sessions.")

let duration =
  Arg.(value & opt float 60.0 & info [ "duration" ] ~doc:"Simulated seconds.")

let warmup =
  Arg.(
    value & opt (some float) None
    & info [ "warmup" ] ~doc:"Measurement window start (default: duration/3).")

let buffer =
  Arg.(
    value & opt (some int) None
    & info [ "buffer" ] ~docv:"PKTS"
        ~doc:"Bottleneck buffer in packets (default: one BDP).")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let owd =
  Arg.(
    value & flag
    & info [ "owd" ]
        ~doc:"Drive PERT from forward one-way delays instead of RTTs.")

let trace_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write an ns-2-style packet trace of the bottleneck link (both \
           directions) to $(docv).")

let per_flow =
  Arg.(value & flag & info [ "per-flow" ] ~doc:"Also print per-flow goodputs.")

let run scheme bandwidth rtt flows reverse web duration warmup buffer seed owd
    trace_path per_flow =
  let rtt = rtt /. 1000.0 in
  let config =
    Experiments.Dumbbell.uniform_flows
      {
        Experiments.Dumbbell.default with
        scheme;
        bandwidth = bandwidth *. 1e6;
        rtt;
        reverse_flows = reverse;
        web_sessions = web;
        buffer_pkts = buffer;
        duration;
        warmup = (match warmup with Some w -> w | None -> duration /. 3.0);
        delay_signal = (if owd then `Owd else `Rtt);
        seed;
      }
      ~n:flows
  in
  let built = Experiments.Dumbbell.build config in
  let sim = Netsim.Topology.sim built.Experiments.Dumbbell.topo in
  let tracer =
    Option.map
      (fun _ ->
        Netsim.Tracer.create sim
          ~links:
            [
              built.Experiments.Dumbbell.bottleneck;
              built.Experiments.Dumbbell.reverse_bneck;
            ])
      trace_path
  in
  Sim_engine.Sim.run
    ~until:(Units.Time.s config.Experiments.Dumbbell.warmup)
    sim;
  Experiments.Dumbbell.reset built;
  Sim_engine.Sim.run
    ~until:(Units.Time.s config.Experiments.Dumbbell.duration)
    sim;
  let r = Experiments.Dumbbell.measure built in
  (match (tracer, trace_path) with
  | Some t, Some path ->
      Netsim.Tracer.save t ~path;
      Printf.printf "trace: %d events -> %s\n" (Netsim.Tracer.events t) path
  | _ -> ());
  Printf.printf
    "scheme=%s bandwidth=%gMbps rtt=%gms flows=%d web=%d buffer=%dpkts\n"
    (Experiments.Schemes.name scheme)
    bandwidth (rtt *. 1000.0) flows web r.Experiments.Dumbbell.buffer_pkts;
  Printf.printf
    "avg_queue=%.1f pkts (%.3f of buffer)\ndrop_rate=%.3e\nutilization=%.3f\n\
     jain_index=%.3f\nearly_responses=%d\nloss_events=%d\n"
    (Units.Pkts.to_float r.Experiments.Dumbbell.avg_queue_pkts)
    r.Experiments.Dumbbell.avg_queue_norm
    r.Experiments.Dumbbell.drop_rate r.Experiments.Dumbbell.utilization
    r.Experiments.Dumbbell.jain r.Experiments.Dumbbell.early_responses
    r.Experiments.Dumbbell.loss_events;
  if per_flow then
    Array.iteri
      (fun i g ->
        Printf.printf "flow%-3d %.3f Mbps\n" i (Units.Rate.to_mbps g))
      r.Experiments.Dumbbell.per_flow_goodput

let main =
  let doc = "Packet-level dumbbell simulation with PERT and baselines" in
  Cmd.v
    (Cmd.info "pert-sim" ~doc)
    Term.(
      const run $ scheme $ bandwidth $ rtt $ flows $ reverse $ web $ duration
      $ warmup $ buffer $ seed $ owd $ trace_path $ per_flow)

let () = exit (Cmd.eval main)
