(* End-to-end replay regression: running an experiment family twice with
   the same root seed must produce byte-identical result rows. This locks
   in the PR 1 fault-replay guarantee across the whole stack — seeded Rng
   splitting, per-simulation id allocation, and registry-free queue/cc
   introspection — not just per module. Before flow ids and discipline
   introspection became per-simulation, the second in-process run saw
   different process-global counters and could diverge. *)

open Experiments

let render tables =
  String.concat "\n" (List.map Output.to_csv tables)

let run_family id scale =
  match Registry.find id with
  | None -> Alcotest.fail ("unknown experiment family: " ^ id)
  | Some e -> render (e.Registry.run ~ctx:Runner.default scale)

let byte_identical id scale () =
  let first = run_family id scale in
  let second = run_family id scale in
  Alcotest.(check string) (id ^ " rows byte-identical across reruns") first
    second

let suite =
  [
    ( "faults family replays byte-identically",
      `Slow,
      byte_identical "faults" Scale.Smoke );
    ( "fig6 family replays byte-identically (smoke)",
      `Slow,
      byte_identical "fig6" Scale.Smoke );
  ]
