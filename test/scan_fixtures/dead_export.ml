let used x = x + 1
let unused x = x - 1
let kept x = x * 2
