(* S1 true positive: a module-level Hashtbl mutated directly inside a
   Parallel.map task — unguarded writes from worker domains. pertscan
   must report at the map call (line 9), naming the definition (line 6)
   and the unguarded access (line 11). *)

let table : (int, int) Hashtbl.t = Hashtbl.create 8

let run xs =
  Parallel.map ~jobs:4
    (fun x ->
      Hashtbl.replace table x (x * x);
      x)
    xs
