(* S1 true negative: a shared memo table behind Parallel.Guard — the
   sanctioned shape for cross-task state. pertscan must treat
   Guard.with_ accesses as synchronized and stay silent. *)

let cache : (int, int) Hashtbl.t Parallel.Guard.t =
  Parallel.Guard.create (Hashtbl.create 8)

let square x =
  match Parallel.Guard.with_ cache (fun tbl -> Hashtbl.find_opt tbl x) with
  | Some v -> v
  | None ->
      let v = x * x in
      Parallel.Guard.with_ cache (fun tbl -> Hashtbl.replace tbl x v);
      v

let run xs = Parallel.map ~jobs:2 square xs
