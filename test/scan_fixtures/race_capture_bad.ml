(* S1 true positive: a local ref captured, unguarded, by a task handed
   to Parallel.submit. pertscan must report at the submission site
   (line 7) and name the allocation (line 6) and capture sites. *)

let run pool =
  let hits = ref 0 in
  let fut = Parallel.submit pool (fun () -> incr hits) in
  ignore (Parallel.await fut);
  !hits
