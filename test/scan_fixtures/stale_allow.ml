(* S4 true positive: this allow names a rule (N2, the Obj.magic ban)
   that never fires on the binding it annotates, so no diagnostic is
   suppressed and pertscan must flag the attribute as stale (line 5). *)

let[@lint.allow "N2"] plain x = x + 1
