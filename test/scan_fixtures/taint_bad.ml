(* S2 true positive: a float accumulated in Hashtbl iteration order
   (float addition is not associative, so the sum is order-dependent)
   flows into a rendered table cell. pertscan must report at the
   cell_f call (line 8) and name the fold (line 7) as the source. *)

let total_cell (tbl : (string, float) Hashtbl.t) =
  let total = Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.0 in
  Experiments.Output.cell_f total
