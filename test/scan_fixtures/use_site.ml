(* The cross-module reference that keeps Dead_export.used alive for the
   S3 fixture test. *)

let y = Dead_export.used 3
