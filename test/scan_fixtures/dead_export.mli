(* S3 fixture interface: [used] is referenced by Use_site (true
   negative), [unused] is referenced by nobody (true positive, line 7),
   and [kept] carries a justified allow the S4 pass must credit as live,
   not stale (line 11). *)

val used : int -> int
val unused : int -> int

(* Deliberately uncalled: this allow is what the S4 live-allow test
   checks is credited (S3 fires here and is suppressed). *)
val kept : int -> int [@@lint.allow "S3"]
