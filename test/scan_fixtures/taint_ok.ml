(* S2 true negative: the same fold-then-render shape as Taint_bad, but
   the folded values are sorted before the sum — List.sort sanitizes the
   iteration-order taint, so pertscan must stay silent. *)

let total_cell (tbl : (string, float) Hashtbl.t) =
  let values = List.sort compare (Hashtbl.fold (fun _ v acc -> v :: acc) tbl []) in
  let total = List.fold_left ( +. ) 0.0 values in
  Experiments.Output.cell_f total
