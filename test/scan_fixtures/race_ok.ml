(* S1 true negative: the same shared-Hashtbl shape as Race_global_bad,
   but every access — inside the task and on the submitting side — runs
   under Mutex.protect. pertscan must stay silent. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

let run xs =
  let results =
    Parallel.map ~jobs:2
      (fun x ->
        Mutex.protect lock (fun () -> Hashtbl.replace table x (x * x));
        x)
      xs
  in
  (results, Mutex.protect lock (fun () -> Hashtbl.length table))
