(* Tests for the Section 2 machinery: traces, the A/B/C transition
   analysis, and the nine congestion predictors on synthetic signals. *)

open Predictors

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_trace ?cwnds ~rtts ?(dt = 0.01) ?(flow_losses = [||]) ?(queue_losses = [||]) () =
  let n = Array.length rtts in
  let times = Array.init n (fun i -> dt *. float_of_int i) in
  Trace.make ~times ~rtts ?cwnds ~flow_losses ~queue_losses ()

(* --- Trace ------------------------------------------------------------------ *)

let trace_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Trace.make: length mismatch") (fun () ->
      ignore
        (Trace.make ~times:[| 0.0 |] ~rtts:[| 0.1; 0.2 |] ~flow_losses:[||]
           ~queue_losses:[||] ()))

let trace_base_rtt () =
  let t = mk_trace ~rtts:[| 0.3; 0.1; 0.2 |] () in
  check_float "base is min" 0.1 t.Trace.base_rtt;
  check_int "length" 3 (Trace.length t)

let trace_per_rtt_spacing () =
  (* constant 50 ms RTT sampled every 10 ms: decision points ~5 samples apart *)
  let t = mk_trace ~rtts:(Array.make 100 0.05) () in
  let idx = Trace.per_rtt_indices t in
  check_bool "sparser than per-ack" true (Array.length idx <= 21);
  Array.iteri
    (fun k i ->
      if k > 0 then
        check_bool "gap >= one RTT" true
          (t.Trace.times.(i) -. t.Trace.times.(idx.(k - 1)) >= 0.05))
    idx

(* --- Transitions ----------------------------------------------------------------- *)

let transitions_textbook () =
  (* A(2) -> B(3) -> loss -> A... -> B -> back to A (false positive). *)
  let times = Array.init 10 (fun i -> float_of_int i) in
  let states = [| false; false; true; true; true; false; true; true; false; false |] in
  (* loss at t=4.5 while in B; the machine resets to A, so the sample at
     t=5 (false) does not count as a B->A exit *)
  let c = Transitions.count ~times ~states ~losses:[| 4.5 |] () in
  check_int "a_to_b" 2 c.Transitions.a_to_b;
  check_int "b_to_c" 1 c.Transitions.b_to_c;
  check_int "b_to_a (false positives)" 1 c.Transitions.b_to_a;
  check_int "a_to_c" 0 c.Transitions.a_to_c;
  check_float "efficiency" 0.5 (Transitions.efficiency c);
  check_float "false positive rate" 0.5 (Transitions.false_positive_rate c);
  check_float "false negative rate" 0.0 (Transitions.false_negative_rate c)

let transitions_false_negative () =
  let times = [| 0.0; 1.0; 2.0 |] in
  let states = [| false; false; false |] in
  let c = Transitions.count ~times ~states ~losses:[| 1.5 |] () in
  check_int "a_to_c" 1 c.Transitions.a_to_c;
  check_float "fn rate" 1.0 (Transitions.false_negative_rate c);
  check_float "efficiency degenerate" 0.0 (Transitions.efficiency c)

let transitions_loss_merge () =
  let times = [| 0.0; 1.0; 2.0; 3.0 |] in
  let states = [| true; true; true; true |] in
  (* Three drops within 100 ms are one buffer-overflow episode. *)
  let c =
    Transitions.count ~times ~states ~losses:[| 1.50; 1.55; 1.58; 2.9 |]
      ~loss_merge:0.2 ()
  in
  check_int "merged into two episodes" 2 c.Transitions.loss_episodes;
  (* first episode from B; machine resets to A, signal still high -> back
     to B before the second episode *)
  check_int "b_to_c twice" 2 c.Transitions.b_to_c

let transitions_losses_after_samples () =
  let times = [| 0.0; 1.0 |] in
  let states = [| false; true |] in
  let c = Transitions.count ~times ~states ~losses:[| 5.0 |] () in
  check_int "trailing loss counted from B" 1 c.Transitions.b_to_c

let transitions_fp_times () =
  let times = [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let states = [| false; true; false; true; false |] in
  let fp =
    Transitions.false_positive_times ~times ~states ~losses:[| 3.5 |] ()
  in
  (* B->A at t=2 is a false positive; the B at t=3 ends in the loss. *)
  Alcotest.(check (array (float 1e-9))) "fp times" [| 2.0 |] fp

let transitions_qcheck_rates =
  QCheck.Test.make ~name:"efficiency + false-positive rate = 1 when B exits exist"
    ~count:300
    QCheck.(pair (list_of_size (Gen.int_range 2 60) bool) (list (float_bound_exclusive 0.6)))
    (fun (states, losses) ->
      let states = Array.of_list states in
      let times = Array.init (Array.length states) (fun i -> 0.01 *. float_of_int i) in
      let losses = Array.of_list losses in
      let c = Transitions.count ~times ~states ~losses () in
      let exits = c.Transitions.b_to_c + c.Transitions.b_to_a in
      if exits = 0 then true
      else
        abs_float
          (Transitions.efficiency c +. Transitions.false_positive_rate c -. 1.0)
        < 1e-9)

(* --- Predictors ---------------------------------------------------------------------- *)

let inst_threshold_basic () =
  let t = mk_trace ~rtts:[| 0.05; 0.051; 0.058; 0.06; 0.052 |] () in
  let p = Predictor.inst_threshold ~offset:0.005 () in
  Alcotest.(check (array bool))
    "above base+5ms"
    [| false; false; true; true; false |]
    (p.Predictor.predict t)

let ewma_smooths_spikes () =
  (* One spiky sample must not flip the 0.99-weight signal. *)
  let rtts = Array.make 200 0.05 in
  rtts.(100) <- 0.2;
  let t = mk_trace ~rtts () in
  let p = Predictor.ewma ~alpha:0.99 ~offset:0.005 () in
  let states = p.Predictor.predict t in
  check_bool "spike filtered" false (Array.exists (fun b -> b) states)

let ewma_follows_sustained_shift () =
  let rtts = Array.append (Array.make 100 0.05) (Array.make 400 0.08) in
  let t = mk_trace ~rtts () in
  let p = Predictor.ewma ~alpha:0.99 ~offset:0.005 () in
  let states = p.Predictor.predict t in
  check_bool "eventually detects" true states.(499);
  check_bool "not before the shift" false states.(99)

let moving_average_window () =
  let rtts = Array.append (Array.make 50 0.05) (Array.make 50 0.1) in
  let t = mk_trace ~rtts () in
  let p = Predictor.moving_average ~window:10 ~offset:0.005 () in
  let states = p.Predictor.predict t in
  check_bool "before shift low" false states.(49);
  check_bool "after window fills" true states.(70)

let card_detects_gradient () =
  (* monotonically rising RTT -> positive normalised delay gradient *)
  let rtts = Array.init 300 (fun i -> 0.05 +. (0.0002 *. float_of_int i)) in
  let t = mk_trace ~rtts () in
  let p = Predictor.card () in
  let states = p.Predictor.predict t in
  check_bool "predicts during rise" true states.(250);
  (* falling RTT -> no congestion *)
  let rtts_down = Array.init 300 (fun i -> 0.11 -. (0.0002 *. float_of_int i)) in
  let t2 = mk_trace ~rtts:rtts_down () in
  let states2 = p.Predictor.predict t2 in
  check_bool "silent during fall" false states2.(250)

let dual_midpoint () =
  (* RTT oscillating between 0.05 and 0.15: DUAL flags samples above 0.10 *)
  let rtts = Array.init 400 (fun i -> if i mod 40 < 20 then 0.05 else 0.15) in
  let t = mk_trace ~rtts () in
  let p = Predictor.dual () in
  let states = p.Predictor.predict t in
  check_bool "some predictions" true (Array.exists (fun b -> b) states);
  (* its decisions align with the high phase at per-RTT points *)
  let idx = Trace.per_rtt_indices t in
  Array.iter
    (fun i ->
      if i > 100 && t.Trace.rtts.(i) < 0.08 then
        check_bool "low phase not flagged at decision points" false
          (t.Trace.rtts.(i) > 0.1))
    idx

let vegas_needs_cwnd () =
  let t = mk_trace ~rtts:(Array.make 50 0.05) () in
  let p = Predictor.vegas () in
  Alcotest.check_raises "missing cwnd"
    (Invalid_argument "Predictor.vegas: trace has no cwnd record") (fun () ->
      ignore (p.Predictor.predict t))

let vegas_backlog_rule () =
  (* cwnd 20, base 0.05; rtt 0.08 gives diff = 20*(1-0.05/0.08)=7.5 > 3 *)
  let n = 200 in
  let rtts = Array.init n (fun i -> if i < 100 then 0.05 else 0.08) in
  let cwnds = Array.make n 20.0 in
  let t = mk_trace ~rtts ~cwnds () in
  let p = Predictor.vegas () in
  let states = p.Predictor.predict t in
  check_bool "flags large backlog" true states.(n - 1);
  check_bool "quiet at base rtt" false states.(50)

let cim_short_vs_long () =
  let rtts = Array.append (Array.make 100 0.05) (Array.make 20 0.09) in
  let t = mk_trace ~rtts () in
  let p = Predictor.cim ~short:5 ~long:50 ~margin:0.05 () in
  let states = p.Predictor.predict t in
  check_bool "recent burst detected" true states.(115);
  check_bool "steady state quiet" false states.(99)

let tri_s_throughput_flatten () =
  (* Ack spacing doubles midway => per-epoch throughput halves => NTG < 0. *)
  let n = 300 in
  let times = Array.make n 0.0 in
  let t = ref 0.0 in
  for i = 0 to n - 1 do
    t := !t +. (if i < 150 then 0.005 else 0.01);
    times.(i) <- !t
  done;
  let rtts = Array.make n 0.05 in
  let trace = Trace.make ~times ~rtts ~flow_losses:[||] ~queue_losses:[||] () in
  let p = Predictor.tri_s () in
  let states = p.Predictor.predict trace in
  (* the negative-gradient epoch spans the rate change; afterwards the
     gradient is ~0 again, so look for any flagged sample in the second
     half rather than at the very end *)
  let flagged = ref false in
  for i = 150 to n - 1 do
    if states.(i) then flagged := true
  done;
  check_bool "flags around the slowdown" true !flagged;
  check_bool "quiet during the steady first phase" false states.(100)

let standard_set_composition () =
  let set = Predictor.standard_set ~buffer_pkts:750 in
  check_int "nine predictors" 9 (List.length set);
  Alcotest.(check (list string)) "paper order"
    [ "card"; "tri-s"; "dual"; "vegas"; "cim"; "inst-rtt"; "ma-750";
      "ewma-0.875"; "ewma-0.99" ]
    (List.map (fun p -> p.Predictor.name) set)

let predictor_outputs_full_length =
  QCheck.Test.make ~name:"every predictor returns one state per sample" ~count:50
    QCheck.(list_of_size (Gen.int_range 10 300) (float_range 0.02 0.3))
    (fun rtt_list ->
      let rtts = Array.of_list rtt_list in
      let cwnds = Array.make (Array.length rtts) 10.0 in
      let t = mk_trace ~rtts ~cwnds () in
      List.for_all
        (fun p -> Array.length (p.Predictor.predict t) = Array.length rtts)
        (Predictor.standard_set ~buffer_pkts:50))

let moving_average_short_trace () =
  (* window larger than the trace: falls back to the running mean *)
  let t = mk_trace ~rtts:[| 0.05; 0.07; 0.09 |] () in
  let p = Predictor.moving_average ~window:100 ~offset:0.005 () in
  let states = p.Predictor.predict t in
  check_int "full length" 3 (Array.length states);
  check_bool "running mean crosses threshold" true states.(2)

let transitions_empty_inputs () =
  let c = Transitions.count ~times:[||] ~states:[||] ~losses:[||] () in
  check_int "no transitions" 0
    (c.Transitions.a_to_b + c.Transitions.b_to_c + c.Transitions.a_to_c
   + c.Transitions.b_to_a);
  check_float "degenerate rates" 0.0 (Transitions.efficiency c);
  (* losses with no samples still count as episodes from state A *)
  let c2 = Transitions.count ~times:[||] ~states:[||] ~losses:[| 1.0; 5.0 |] () in
  check_int "episodes" 2 c2.Transitions.loss_episodes;
  check_int "all false negatives" 2 c2.Transitions.a_to_c

let predictor_validation () =
  Alcotest.check_raises "cim windows" (Invalid_argument "Predictor.cim")
    (fun () -> ignore (Predictor.cim ~short:10 ~long:5 ()));
  Alcotest.check_raises "ma window"
    (Invalid_argument "Predictor.moving_average") (fun () ->
      ignore (Predictor.moving_average ~window:0 ()));
  Alcotest.check_raises "ewma alpha" (Invalid_argument "Predictor.ewma")
    (fun () -> ignore (Predictor.ewma ~alpha:1.0 ()))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ transitions_qcheck_rates; predictor_outputs_full_length ]

let suite =
  [
    ("trace validation", `Quick, trace_validation);
    ("trace base rtt", `Quick, trace_base_rtt);
    ("trace per-rtt spacing", `Quick, trace_per_rtt_spacing);
    ("transitions textbook", `Quick, transitions_textbook);
    ("transitions false negative", `Quick, transitions_false_negative);
    ("transitions loss merge", `Quick, transitions_loss_merge);
    ("transitions trailing loss", `Quick, transitions_losses_after_samples);
    ("transitions fp times", `Quick, transitions_fp_times);
    ("inst threshold", `Quick, inst_threshold_basic);
    ("ewma smooths spikes", `Quick, ewma_smooths_spikes);
    ("ewma follows shift", `Quick, ewma_follows_sustained_shift);
    ("moving average window", `Quick, moving_average_window);
    ("card gradient", `Quick, card_detects_gradient);
    ("dual midpoint", `Quick, dual_midpoint);
    ("vegas needs cwnd", `Quick, vegas_needs_cwnd);
    ("vegas backlog rule", `Quick, vegas_backlog_rule);
    ("cim windows", `Quick, cim_short_vs_long);
    ("tri-s throughput", `Quick, tri_s_throughput_flatten);
    ("standard set", `Quick, standard_set_composition);
    ("moving average short trace", `Quick, moving_average_short_trace);
    ("transitions empty inputs", `Quick, transitions_empty_inputs);
    ("predictor validation", `Quick, predictor_validation);
  ]
  @ qsuite
