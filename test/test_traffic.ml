(* Tests for the workload generators: FTP, web sessions, CBR. *)

module Sim = Sim_engine.Sim
module T = Netsim.Topology
open Traffic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ts = Units.Time.s

let fixture ?(bandwidth = Units.Rate.bps 10e6) () =
  let sim = Sim.create ~seed:21 () in
  let topo = T.create sim in
  let a = T.add_node topo and b = T.add_node topo in
  let disc () = Netsim.Droptail.create ~limit_pkts:1000 in
  ignore
    (T.add_duplex topo ~a ~b ~bandwidth ~delay:(ts 0.005) ~disc_ab:(disc ())
       ~disc_ba:(disc ()));
  T.compute_routes topo;
  (sim, topo, a, b)

(* --- Ftp -------------------------------------------------------------------- *)

let ftp_spawns_unbounded_flows () =
  let sim, topo, a, b = fixture () in
  let flows =
    Ftp.spawn topo
      ~pairs:[ (a, b); (a, b); (a, b) ]
      ~cc_factory:Tcpstack.Cc.newreno ()
  in
  check_int "three flows" 3 (List.length flows);
  Sim.run ~until:(ts 5.0) sim;
  List.iter
    (fun f ->
      check_bool "made progress" true (Tcpstack.Flow.acked_pkts f > 0);
      check_bool "never completes" false (Tcpstack.Flow.completed f))
    flows

let ftp_staggered_starts () =
  let sim, topo, a, b = fixture () in
  let flows =
    Ftp.spawn topo
      ~pairs:(List.init 10 (fun _ -> (a, b)))
      ~cc_factory:Tcpstack.Cc.newreno ~start_window:(1.0, 3.0) ()
  in
  (* Before t=1 nothing may be sent; after t=3 everything must run. *)
  Sim.run ~until:(ts 0.9) sim;
  List.iter
    (fun f -> check_int "quiet before window" 0 (Tcpstack.Flow.snd_next f))
    flows;
  Sim.run ~until:(ts 6.0) sim;
  List.iter
    (fun f -> check_bool "started within window" true (Tcpstack.Flow.acked_pkts f > 0))
    flows

(* --- Web --------------------------------------------------------------------- *)

let web_completes_objects () =
  let sim, topo, a, b = fixture () in
  let stats =
    Web.start_sessions topo ~n:20 ~src_pool:[| a |] ~dst_pool:[| b |]
      ~cc_factory:Tcpstack.Cc.newreno ()
  in
  Sim.run ~until:(ts 60.0) sim;
  check_bool "objects completed" true (stats.Web.objects_completed > 10);
  check_bool "packets accounted" true
    (stats.Web.pkts_completed >= 2 * stats.Web.objects_completed)

let web_respects_until () =
  let sim, topo, a, b = fixture () in
  let stats =
    Web.start_sessions topo ~n:10 ~src_pool:[| a |] ~dst_pool:[| b |]
      ~cc_factory:Tcpstack.Cc.newreno ~until:(ts 5.0) ()
  in
  Sim.run ~until:(ts 30.0) sim;
  let after_cutoff = stats.Web.objects_completed in
  Sim.run ~until:(ts 200.0) sim;
  (* a page in flight at the cutoff may still finish, but generation stops *)
  check_bool "no unbounded growth after cutoff" true
    (stats.Web.objects_completed - after_cutoff < 100)

let web_empty_pool_rejected () =
  let _sim, topo, a, _ = fixture () in
  Alcotest.check_raises "empty pool"
    (Invalid_argument "Web.start_sessions: empty node pool") (fun () ->
      ignore
        (Web.start_sessions topo ~n:1 ~src_pool:[||] ~dst_pool:[| a |]
           ~cc_factory:Tcpstack.Cc.newreno ()))

(* --- Cbr ---------------------------------------------------------------------- *)

let cbr_rate_accuracy () =
  let sim, topo, a, b = fixture () in
  let cbr = Cbr.start topo ~src:a ~dst:b ~rate:(Units.Rate.bps 1e6) ~stop:(ts 10.0) () in
  Sim.run ~until:(ts 12.0) sim;
  (* 1 Mbps for 10 s at 1040-byte packets: ~1202 packets. *)
  check_bool "sent close to nominal" true (abs (Cbr.sent cbr - 1202) <= 2);
  check_int "all delivered on an idle link" (Cbr.sent cbr) (Cbr.received cbr)

let cbr_halt () =
  let sim, topo, a, b = fixture () in
  let cbr = Cbr.start topo ~src:a ~dst:b ~rate:(Units.Rate.bps 1e6) () in
  Sim.run ~until:(ts 1.0) sim;
  Cbr.halt cbr;
  let sent = Cbr.sent cbr in
  Sim.run ~until:(ts 5.0) sim;
  check_int "no more packets after halt" sent (Cbr.sent cbr)

let cbr_competes_with_tcp () =
  let sim, topo, a, b = fixture ~bandwidth:(Units.Rate.bps 5e6) () in
  let flow = Tcpstack.Flow.create topo ~src:a ~dst:b ~cc:(Tcpstack.Cc.newreno ()) () in
  let _cbr = Cbr.start topo ~src:a ~dst:b ~rate:(Units.Rate.bps 3e6) () in
  Sim.run ~until:(ts 20.0) sim;
  let goodput =
    Units.Rate.to_bps (Tcpstack.Flow.goodput_bps flow ~now:(Sim.now sim))
  in
  (* TCP should be squeezed to roughly the residual 2 Mbps. *)
  check_bool "tcp yields to cbr" true (goodput < 3.5e6);
  check_bool "tcp still gets residual share" true (goodput > 0.8e6)

let cbr_validation () =
  let _sim, topo, a, b = fixture () in
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Cbr.start: rate must be positive") (fun () ->
      ignore (Cbr.start topo ~src:a ~dst:b ~rate:(Units.Rate.bps 0.0) ()))

let ftp_empty_pairs () =
  let _sim, topo, _, _ = fixture () in
  check_int "no flows" 0
    (List.length (Ftp.spawn topo ~pairs:[] ~cc_factory:Tcpstack.Cc.newreno ()))

let web_deterministic_per_seed () =
  let run () =
    let sim, topo, a, b = fixture () in
    let stats =
      Web.start_sessions topo ~n:10 ~src_pool:[| a |] ~dst_pool:[| b |]
        ~cc_factory:Tcpstack.Cc.newreno ()
    in
    Sim.run ~until:(ts 30.0) sim;
    (stats.Web.objects_completed, stats.Web.pkts_completed)
  in
  check_bool "same seed, same workload" true (run () = run ())

let suite =
  [
    ("ftp spawns unbounded", `Quick, ftp_spawns_unbounded_flows);
    ("ftp staggered starts", `Quick, ftp_staggered_starts);
    ("web completes objects", `Quick, web_completes_objects);
    ("web respects until", `Quick, web_respects_until);
    ("web empty pool", `Quick, web_empty_pool_rejected);
    ("cbr rate accuracy", `Quick, cbr_rate_accuracy);
    ("cbr halt", `Quick, cbr_halt);
    ("cbr competes with tcp", `Quick, cbr_competes_with_tcp);
    ("cbr validation", `Quick, cbr_validation);
    ("ftp empty pairs", `Quick, ftp_empty_pairs);
    ("web deterministic", `Quick, web_deterministic_per_seed);
  ]
