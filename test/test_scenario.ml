(* Tests for the scenario description language. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let chain_source =
  {|
# three-node chain
node a
node r
node b
duplex a r bw=100M delay=1ms queue=droptail:10000
duplex r b bw=10M delay=10ms queue=droptail:100
flow a b cc=pert
flow a b cc=newreno start=2 total=500
seed 7
run 20
|}

let parse_ok () =
  match Scenario.parse chain_source with
  | Error e -> Alcotest.fail e
  | Ok _ -> ()

let runs_and_reports () =
  match Scenario.parse_and_run chain_source with
  | Error e -> Alcotest.fail e
  | Ok report ->
      Alcotest.(check (float 1e-9)) "duration" 20.0 report.Scenario.duration;
      check_int "two flows" 2 (List.length report.Scenario.flows);
      check_int "four links" 4 (List.length report.Scenario.links);
      (* the long-lived PERT flow gets most of the 10 Mbps bottleneck *)
      (match report.Scenario.flows with
      | (label1, goodput1) :: _ ->
          check_bool "labelled" true
            (String.length label1 > 0 && label1.[0] = 'f');
          check_bool "pert flow used the pipe" true (Units.Rate.to_bps goodput1 > 3e6)
      | [] -> Alcotest.fail "no flows");
      (* the bottleneck link (r->b) is well utilised *)
      let _, util, _, _ =
        List.find (fun (n, _, _, _) -> n = "r->b") report.Scenario.links
      in
      check_bool "bottleneck utilised" true (util > 0.7)

let finite_flow_completes () =
  let src =
    {|
node a
node b
duplex a b bw=10M delay=5ms queue=droptail:1000
flow a b cc=newreno total=100
run 10
|}
  in
  match Scenario.parse_and_run src with
  | Error e -> Alcotest.fail e
  | Ok report ->
      let _, goodput = List.hd report.Scenario.flows in
      (* 100 MSS over 10 s of report window *)
      Alcotest.(check (float 1e3)) "goodput of finished transfer"
        (100.0 *. 8000.0 /. 10.0)
        (Units.Rate.to_bps goodput)

let all_queue_kinds_accepted () =
  List.iter
    (fun kind ->
      let src =
        Printf.sprintf
          {|
node a
node b
link a b bw=10M delay=5ms queue=%s:100
link b a bw=10M delay=5ms queue=droptail:100
flow a b cc=newreno %s
run 5
|}
          kind
          (if kind = "droptail" then "" else "ecn")
      in
      match Scenario.parse_and_run src with
      | Error e -> Alcotest.fail (kind ^ ": " ^ e)
      | Ok report ->
          let _, goodput = List.hd report.Scenario.flows in
          check_bool (kind ^ " carries traffic") true
            (Units.Rate.to_bps goodput > 1e5))
    [ "droptail"; "red"; "pi"; "rem"; "avq" ]

let all_cc_kinds_accepted () =
  List.iter
    (fun cc ->
      let src =
        Printf.sprintf
          {|
node a
node b
duplex a b bw=10M delay=5ms queue=droptail:200
flow a b cc=%s
run 5
|}
          cc
      in
      match Scenario.parse_and_run src with
      | Error e -> Alcotest.fail (cc ^ ": " ^ e)
      | Ok report ->
          let _, goodput = List.hd report.Scenario.flows in
          check_bool (cc ^ " carries traffic") true
            (Units.Rate.to_bps goodput > 1e6))
    [ "newreno"; "vegas"; "pert"; "pert-pi"; "pert-rem"; "pert-avq" ]

let web_and_cbr_directives () =
  let src =
    {|
node a
node b
duplex a b bw=10M delay=5ms queue=droptail:200
web a b sessions=5
cbr a b rate=2M start=1 stop=3
run 6
|}
  in
  match Scenario.parse_and_run src with
  | Error e -> Alcotest.fail e
  | Ok report ->
      let _, util, _, _ = List.hd report.Scenario.links in
      check_bool "background traffic flowed" true (util > 0.05)

let error_cases () =
  let expect_error src frag =
    match Scenario.parse src with
    | Ok _ -> Alcotest.fail ("expected parse error mentioning " ^ frag)
    | Error e ->
        let has_sub sub s =
          let n = String.length sub and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        check_bool (frag ^ " in: " ^ e) true (has_sub frag e)
  in
  expect_error "node a\nrun 5" "no links";
  expect_error "node a\nnode a\nrun 5" "duplicate node";
  expect_error "node a\nlink a b bw=1M delay=1ms queue=droptail:10\nrun 5"
    "unknown node";
  expect_error "node a\nnode b\nlink a b bw=1M delay=1ms queue=magic:10\nrun 5"
    "unknown queue kind";
  expect_error "node a\nnode b\nduplex a b bw=1M delay=1ms queue=droptail:10"
    "missing `run";
  expect_error
    "node a\nnode b\nduplex a b bw=1M delay=1ms queue=droptail:10\nfrobnicate\nrun 5"
    "unknown directive";
  expect_error
    "node a\nnode b\nduplex a b bw=junk delay=1ms queue=droptail:10\nrun 5"
    "bad rate"

let units_parse () =
  let src =
    {|
node a
node b
duplex a b bw=2.5M delay=20ms queue=droptail:50
flow a b cc=newreno
run 1500ms
|}
  in
  match Scenario.parse_and_run src with
  | Error e -> Alcotest.fail e
  | Ok report ->
      Alcotest.(check (float 1e-9)) "ms horizon" 1.5 report.Scenario.duration

let suite =
  [
    ("parse ok", `Quick, parse_ok);
    ("runs and reports", `Quick, runs_and_reports);
    ("finite flow completes", `Quick, finite_flow_completes);
    ("all queue kinds", `Quick, all_queue_kinds_accepted);
    ("all cc kinds", `Quick, all_cc_kinds_accepted);
    ("web and cbr directives", `Quick, web_and_cbr_directives);
    ("error cases", `Quick, error_cases);
    ("units parse", `Quick, units_parse);
  ]
