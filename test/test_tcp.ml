(* Tests for the TCP stack: RTO estimation, the sender/receiver state
   machine (slow start, fast retransmit/recovery, SACK, timeouts, ECN),
   and the congestion-control variants. *)

module Sim = Sim_engine.Sim
module Rng = Sim_engine.Rng
module T = Netsim.Topology
module Link = Netsim.Link
module Packet = Netsim.Packet
open Tcpstack

let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ts = Units.Time.s
let tf = Units.Time.to_s

(* --- Rto ------------------------------------------------------------------- *)

let rto_initial_and_first_sample () =
  let r = Rto.create () in
  check_float_eps 1e-9 "initial" 1.0 (tf (Rto.value r));
  Alcotest.(check (option (float 0.0))) "no srtt yet" None (Option.map tf (Rto.srtt r));
  Rto.observe r (ts 0.1);
  (* srtt = 0.1, rttvar = 0.05, rto = 0.1 + 4*0.05 = 0.3 *)
  check_float_eps 1e-9 "after first sample" 0.3 (tf (Rto.value r));
  Alcotest.(check (option (float 1e-9))) "srtt" (Some 0.1) (Option.map tf (Rto.srtt r))

let rto_min_clamp () =
  let r = Rto.create () in
  for _ = 1 to 50 do
    Rto.observe r (ts 0.001)
  done;
  check_float_eps 1e-9 "clamped at min" 0.2 (tf (Rto.value r))

let rto_backoff_and_reset () =
  let r = Rto.create () in
  Rto.observe r (ts 0.1);
  let base = tf (Rto.value r) in
  Rto.backoff r;
  check_float_eps 1e-9 "doubled" (2.0 *. base) (tf (Rto.value r));
  Rto.backoff r;
  check_float_eps 1e-9 "doubled again" (4.0 *. base) (tf (Rto.value r));
  Rto.observe r (ts 0.1);
  (* a fresh sample resets the multiplier; rttvar has decayed (no error):
     rto = srtt + 4 * 0.75 * rttvar = 0.1 + 0.15 *)
  check_float_eps 1e-9 "sample resets backoff" 0.25 (tf (Rto.value r))

let rto_validation () =
  let r = Rto.create () in
  Alcotest.check_raises "bad sample"
    (Invalid_argument "Rto.observe: non-positive sample") (fun () ->
      Rto.observe r (ts 0.0))

let rto_rejects_non_finite () =
  let r = Rto.create () in
  Alcotest.check_raises "nan"
    (Invalid_argument "Units.Time.s: NaN") (fun () ->
      Rto.observe r (ts Float.nan));
  Alcotest.check_raises "infinity"
    (Invalid_argument "Rto.observe: non-finite sample") (fun () ->
      Rto.observe r (ts Float.infinity))

let rto_backoff_caps_at_max () =
  let r = Rto.create () in
  (* srtt 2, rttvar 1 -> rto 6 s; doubling must saturate at max_rto (60 s)
     and never overflow past it *)
  Rto.observe r (ts 2.0);
  for _ = 1 to 30 do
    Rto.backoff r
  done;
  check_float_eps 1e-9 "capped at max_rto" 60.0 (tf (Rto.value r));
  Rto.observe r (ts 2.0);
  check_bool "fresh sample resets the backoff" true (tf (Rto.value r) < 10.0);
  let r2 = Rto.create ~max_rto:(ts 2.0) () in
  Rto.observe r2 (ts 0.5);
  for _ = 1 to 10 do
    Rto.backoff r2
  done;
  check_float_eps 1e-9 "custom cap respected" 2.0 (tf (Rto.value r2))

(* --- congestion-control unit tests (drive the Cc.t record directly) ---------- *)

let reno_increase_rules () =
  let w = { Cc.Window.cwnd = 2.0; ssthresh = 8.0; in_slow_start = true } in
  Cc.reno_increase w ~newly_acked:2 ~rtt:None ~now:0.0;
  Alcotest.(check (float 1e-9)) "slow start adds acked" 4.0 w.Cc.Window.cwnd;
  Cc.reno_increase w ~newly_acked:4 ~rtt:None ~now:0.0;
  Alcotest.(check (float 1e-9)) "doubles again" 8.0 w.Cc.Window.cwnd;
  check_bool "leaves slow start at ssthresh" false w.Cc.Window.in_slow_start;
  let before = w.Cc.Window.cwnd in
  Cc.reno_increase w ~newly_acked:1 ~rtt:None ~now:0.0;
  Alcotest.(check (float 1e-9)) "congestion avoidance 1/cwnd"
    (before +. (1.0 /. before))
    w.Cc.Window.cwnd

let drive_vegas ~rtt_fn ~epochs =
  (* one synthetic "ACK" per 10 ms; epochs of ~one RTT each *)
  let cc = Vegas.create () in
  let w = { Cc.Window.cwnd = 20.0; ssthresh = 10.0; in_slow_start = false } in
  let now = ref 0.0 in
  for i = 0 to epochs * 10 do
    now := 0.01 *. float_of_int i;
    cc.Cc.on_ack w ~newly_acked:1 ~rtt:(Some (ts (rtt_fn i))) ~now:!now
  done;
  w.Cc.Window.cwnd

let vegas_increases_when_uncongested () =
  (* rtt = base: diff = 0 < alpha, +1 per epoch *)
  let final = drive_vegas ~rtt_fn:(fun _ -> 0.1) ~epochs:10 in
  check_bool "window grew additively" true (final > 21.0 && final < 35.0)

let vegas_decreases_when_backlogged () =
  (* first samples establish base = 50 ms, then rtt doubles:
     diff = 20 * (1 - 0.05/0.1) = 10 > beta -> -1 per epoch *)
  let final =
    drive_vegas ~rtt_fn:(fun i -> if i < 3 then 0.05 else 0.1) ~epochs:10
  in
  check_bool "window shrank" true (final < 20.0)

let vegas_holds_in_band () =
  (* base 100 ms, rtt 110 ms: diff = 20 * (1 - 100/110) ~ 1.8 in [1,3] *)
  let final =
    drive_vegas ~rtt_fn:(fun i -> if i < 3 then 0.1 else 0.11) ~epochs:10
  in
  check_bool "window held" true (Float.abs (final -. 20.0) <= 1.0)

(* --- dumbbell fixture --------------------------------------------------------- *)

type fixture = {
  sim : Sim.t;
  topo : T.t;
  src : Netsim.Node.t;
  dst : Netsim.Node.t;
  bottleneck : Link.t;
}

(* src -- r1 ==bottleneck== r2 -- dst, 10 Mbps / ~24 ms RTT. The forward
   bottleneck discipline is pluggable so tests can inject loss. *)
let fixture ?(disc = fun () -> Netsim.Droptail.create ~limit_pkts:100) ?(seed = 11) () =
  let sim = Sim.create ~seed () in
  let topo = T.create sim in
  let src = T.add_node topo
  and r1 = T.add_node topo
  and r2 = T.add_node topo
  and dst = T.add_node topo in
  let fast () = Netsim.Droptail.create ~limit_pkts:10_000 in
  ignore
    (T.add_duplex topo ~a:src ~b:r1 ~bandwidth:(Units.Rate.bps 100e6) ~delay:(ts 0.001)
       ~disc_ab:(fast ()) ~disc_ba:(fast ()));
  let bottleneck =
    T.add_link topo ~src:r1 ~dst:r2 ~bandwidth:(Units.Rate.bps 10e6) ~delay:(ts 0.01) ~disc:(disc ())
  in
  ignore (T.add_link topo ~src:r2 ~dst:r1 ~bandwidth:(Units.Rate.bps 10e6) ~delay:(ts 0.01) ~disc:(fast ()));
  ignore
    (T.add_duplex topo ~a:r2 ~b:dst ~bandwidth:(Units.Rate.bps 100e6) ~delay:(ts 0.001)
       ~disc_ab:(fast ()) ~disc_ba:(fast ()));
  T.compute_routes topo;
  { sim; topo; src; dst; bottleneck }

(* A discipline that drops exactly the data packets whose (first-transmission)
   sequence numbers are in [victims]; everything else passes. *)
let scripted_drop victims =
  let inner = Netsim.Droptail.create ~limit_pkts:1000 in
  let remaining = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace remaining s ()) victims;
  {
    inner with
    Netsim.Queue_disc.name = "scripted";
    enqueue =
      (fun ~now pkt ->
        match pkt.Packet.payload with
        | Packet.Data { seq }
          when Hashtbl.mem remaining seq && not pkt.Packet.retransmit ->
            Hashtbl.remove remaining seq;
            Netsim.Queue_disc.Reject
        | _ -> inner.Netsim.Queue_disc.enqueue ~now pkt);
  }

(* --- basic transfer ------------------------------------------------------------- *)

let transfer_completes () =
  (* buffer large enough that even the slow-start overshoot of a 500-packet
     transfer fits: this really is a lossless path *)
  let fx = fixture ~disc:(fun () -> Netsim.Droptail.create ~limit_pkts:1000) () in
  let done_at = ref None in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~total_pkts:500
      ~on_complete:(fun _ -> done_at := Some (Sim.now fx.sim))
      ()
  in
  Sim.run ~until:(ts 30.0) fx.sim;
  check_bool "completed" true (Flow.completed flow);
  check_bool "completion time recorded" true (!done_at <> None);
  check_int "exactly 500 acked" 500 (Flow.acked_pkts flow);
  check_int "no retransmissions on a clean path" 0 (Flow.retransmissions flow);
  check_int "no timeouts" 0 (Flow.timeouts flow)

let slow_start_doubles () =
  let fx = fixture () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) ()
  in
  (* After ~3 RTTs (RTT ~ 24 ms) of slow start from cwnd=2 the window
     must have grown substantially and exponentially. *)
  Sim.run ~until:(ts 0.1) fx.sim;
  check_bool "cwnd grew exponentially" true (Flow.cwnd flow >= 12.0);
  Flow.stop flow

let ack_clocked_utilisation () =
  let fx = fixture () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) ()
  in
  Sim.run ~until:(ts 20.0) fx.sim;
  let goodput = Units.Rate.to_bps (Flow.goodput_bps flow ~now:(Sim.now fx.sim)) in
  check_bool "long flow fills most of a 10 Mbps pipe" true (goodput > 8e6)

(* --- loss recovery ----------------------------------------------------------------- *)

let fast_retransmit_single_loss () =
  let fx = fixture ~disc:(fun () -> scripted_drop [ 30 ]) () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~total_pkts:200 ()
  in
  Sim.run ~until:(ts 20.0) fx.sim;
  check_bool "completed" true (Flow.completed flow);
  check_int "one retransmission" 1 (Flow.retransmissions flow);
  check_int "recovered without timeout" 0 (Flow.timeouts flow);
  check_int "one loss event" 1 (Flow.loss_events flow)

let sack_burst_loss_recovery () =
  (* Five packets of one window lost at once: SACK recovery must refill
     all holes without an RTO. *)
  let fx = fixture ~disc:(fun () -> scripted_drop [ 40; 42; 44; 46; 48 ]) () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~total_pkts:300 ()
  in
  Sim.run ~until:(ts 20.0) fx.sim;
  check_bool "completed" true (Flow.completed flow);
  check_int "exactly the five holes retransmitted" 5 (Flow.retransmissions flow);
  check_int "no timeout" 0 (Flow.timeouts flow)

let window_halves_on_loss () =
  let fx = fixture ~disc:(fun () -> scripted_drop [ 60 ]) () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) ()
  in
  let before = ref 0.0 in
  Sim.every fx.sim (ts 0.001) (fun () ->
      if Flow.loss_events flow = 0 then before := Flow.cwnd flow);
  Sim.run ~until:(ts 3.0) fx.sim;
  check_bool "saw loss" true (Flow.loss_events flow >= 1);
  check_bool "ssthresh near half of pre-loss cwnd" true
    (Flow.ssthresh flow <= (!before /. 2.0) +. 2.0);
  Flow.stop flow

let timeout_on_blackout () =
  (* Drop a long consecutive range: not enough dupacks can come back, so
     the sender must fall back to RTO and still finish. *)
  let victims = List.init 60 (fun i -> 20 + i) in
  let fx = fixture ~disc:(fun () -> scripted_drop victims) () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~total_pkts:150 ()
  in
  Sim.run ~until:(ts 60.0) fx.sim;
  check_bool "completed despite blackout" true (Flow.completed flow);
  check_bool "used a timeout" true (Flow.timeouts flow >= 1)

(* --- link outages ------------------------------------------------------------ *)

let blackout_backoff_and_recovery () =
  (* Take the bottleneck down for 20 s mid-transfer: the RTO must back off
     exponentially (a handful of timeouts, not one per min_rto), and the
     first post-recovery ACK must reset the backoff. *)
  let fx = fixture () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) ()
  in
  Sim.run ~until:(ts 0.5) fx.sim;
  let acked_before = Flow.acked_pkts flow in
  check_bool "warm before the outage" true (acked_before > 0);
  Link.set_up fx.bottleneck false;
  Sim.run ~until:(ts 20.5) fx.sim;
  let during = Flow.timeouts flow in
  check_bool "exponential backoff: a few timeouts, not ~100" true
    (during >= 3 && during <= 10);
  check_bool "rto grew under backoff" true (tf (Flow.rto_value flow) > 2.0);
  Link.set_up fx.bottleneck true;
  Sim.run ~until:(ts 45.0) fx.sim;
  check_bool "transfer resumed after recovery" true
    (Flow.acked_pkts flow > acked_before + 100);
  check_bool "backoff reset by the first post-recovery ACK" true
    (tf (Flow.rto_value flow) < 1.0);
  Flow.stop flow

let stop_cancels_pending_rto () =
  (* Unacked data over a dead link leaves an RTO armed; stopping the flow
     must cancel it so the timer never fires on a detached flow. *)
  let fx = fixture () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) ()
  in
  Sim.run ~until:(ts 0.5) fx.sim;
  Link.set_up fx.bottleneck false;
  Sim.run ~until:(ts 0.6) fx.sim;
  Flow.stop flow;
  let at_stop = Flow.timeouts flow in
  Sim.run ~until:(ts 30.0) fx.sim;
  check_int "no timeout fires after stop" at_stop (Flow.timeouts flow)

let receiver_reordering () =
  (* Drop + later holes force out-of-order arrival at the receiver; total
     delivered payload must still be exact (no duplication, no loss). *)
  let fx = fixture ~disc:(fun () -> scripted_drop [ 10; 25; 26; 70 ]) () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~total_pkts:120 ()
  in
  Sim.run ~until:(ts 30.0) fx.sim;
  check_bool "completed" true (Flow.completed flow);
  check_int "acked exactly total" 120 (Flow.acked_pkts flow)

(* --- ECN ----------------------------------------------------------------------------- *)

let ecn_halves_without_retransmit () =
  let mk_red () =
    let params =
      {
        Netsim.Red.wq = 0.02;
        min_th = 5.0;
        max_th = 15.0;
        max_p = Units.Prob.v 0.1;
        gentle = true;
        adaptive = false;
        ecn = true;
      }
    in
    Netsim.Red.create ~rng:(Rng.create 13) ~params ~capacity_pps:1201.0
      ~limit_pkts:100
  in
  let fx = fixture ~disc:mk_red () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) ~ecn:true ()
  in
  (* Slow-start overshoot may push RED past its hard-drop region once;
     judge the steady state after a warm-up. *)
  Sim.run ~until:(ts 5.0) fx.sim;
  Link.reset_stats fx.bottleneck;
  let retx_after_warmup = Flow.retransmissions flow in
  Sim.run ~until:(ts 25.0) fx.sim;
  check_bool "link marked packets" true (Link.marks fx.bottleneck > 0);
  check_int "no steady-state drops (ECN absorbed congestion)" 0
    (Link.drops fx.bottleneck);
  check_int "no steady-state retransmissions" retx_after_warmup
    (Flow.retransmissions flow);
  check_bool "still utilises the pipe" true
    (Units.Rate.to_bps (Flow.goodput_bps flow ~now:(Sim.now fx.sim)) > 7e6)

(* --- fairness / CC variants ------------------------------------------------------------ *)

let two_reno_flows_fair () =
  let fx = fixture () in
  let mk () = Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) () in
  let f1 = mk () and f2 = mk () in
  Sim.run ~until:(ts 10.0) fx.sim;
  Flow.reset_stats f1;
  Flow.reset_stats f2;
  Sim.run ~until:(ts 40.0) fx.sim;
  let now = Sim.now fx.sim in
  let g1 = Units.Rate.to_bps (Flow.goodput_bps f1 ~now)
  and g2 = Units.Rate.to_bps (Flow.goodput_bps f2 ~now) in
  let jain = Sim_engine.Stats.jain_index [| g1; g2 |] in
  check_bool "two identical flows share fairly" true (jain > 0.95)

let vegas_keeps_queue_small () =
  let fx = fixture () in
  let flow = Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Vegas.create ()) () in
  Sim.run ~until:(ts 10.0) fx.sim;
  Link.reset_stats fx.bottleneck;
  Sim.run ~until:(ts 30.0) fx.sim;
  check_bool "queue a few packets (alpha..beta)" true
    (Units.Pkts.to_float (Link.avg_queue_pkts fx.bottleneck) < 8.0);
  check_int "no drops" 0 (Link.drops fx.bottleneck);
  check_bool "high goodput" true
    (Units.Rate.to_bps (Flow.goodput_bps flow ~now:(Sim.now fx.sim)) > 8e6)

let pert_beats_reno_on_queue () =
  let run mk_cc =
    let fx = fixture () in
    let flow = Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(mk_cc fx.sim) () in
    Sim.run ~until:(ts 10.0) fx.sim;
    Link.reset_stats fx.bottleneck;
    Sim.run ~until:(ts 40.0) fx.sim;
    ( Units.Pkts.to_float (Link.avg_queue_pkts fx.bottleneck),
      Link.drops fx.bottleneck,
      flow )
  in
  let q_reno, drops_reno, _ = run (fun _ -> Cc.newreno ()) in
  let q_pert, drops_pert, pert_flow =
    run (fun sim -> Pert_cc.create ~rng:(Rng.split (Sim.rng sim)) ())
  in
  check_bool "PERT queue smaller than Reno" true (q_pert < q_reno /. 2.0);
  check_bool "PERT drops fewer" true (drops_pert <= drops_reno);
  check_bool "PERT did respond early" true (Flow.early_responses pert_flow > 0)

let pert_pi_regulates_delay () =
  let fx = fixture () in
  let gains =
    let g =
      Fluid.Stability.pert_pi_gains ~c:1201.0 ~n_min:1.0 ~r_plus:0.05
        ~r_star:0.024
    in
    Pert_core.Pert_pi.gains_of_pi ~k:g.Fluid.Stability.k ~m:g.Fluid.Stability.m
      ~delta:0.005
  in
  let cc =
    Pert_pi_cc.create
      ~rng:(Rng.split (Sim.rng fx.sim))
      ~gains ~target_delay:(ts 0.003) ~sample_interval:(ts 0.005) ()
  in
  let flow = Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc () in
  Sim.run ~until:(ts 10.0) fx.sim;
  Link.reset_stats fx.bottleneck;
  Sim.run ~until:(ts 40.0) fx.sim;
  (* 3 ms at 1201 pkt/s is ~3.6 packets; allow generous slack. *)
  check_bool "queue regulated near target" true
    (Units.Pkts.to_float (Link.avg_queue_pkts fx.bottleneck) < 15.0);
  check_int "no drops" 0 (Link.drops fx.bottleneck);
  check_bool "early responses happened" true (Flow.early_responses flow > 0)

let flow_stop_detaches () =
  let fx = fixture () in
  let flow = Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) () in
  Sim.run ~until:(ts 1.0) fx.sim;
  let acked = Flow.acked_pkts flow in
  Flow.stop flow;
  Sim.run ~until:(ts 5.0) fx.sim;
  (* a few in-flight ACKs may still drain, but no new data is sent *)
  check_bool "transmission halted" true (Flow.snd_next flow - acked < 200);
  check_bool "no further progress" true (Flow.acked_pkts flow <= acked + 200)

let owd_signal_ignores_reverse_congestion () =
  (* Saturate the reverse path with CBR: the RTT inflates, the forward
     one-way delay does not. An OWD PERT flow must keep early responses
     rare; an RTT PERT flow responds constantly. *)
  let run signal =
    (* Like [fixture] but with a realistically sized reverse bottleneck
       buffer (otherwise reverse queueing grows unboundedly). *)
    let sim = Sim.create ~seed:11 () in
    let topo = T.create sim in
    let src = T.add_node topo
    and r1 = T.add_node topo
    and r2 = T.add_node topo
    and dst = T.add_node topo in
    let fast () = Netsim.Droptail.create ~limit_pkts:10_000 in
    ignore
      (T.add_duplex topo ~a:src ~b:r1 ~bandwidth:(Units.Rate.bps 100e6) ~delay:(ts 0.001)
         ~disc_ab:(fast ()) ~disc_ba:(fast ()));
    ignore
      (T.add_link topo ~src:r1 ~dst:r2 ~bandwidth:(Units.Rate.bps 10e6) ~delay:(ts 0.01)
         ~disc:(Netsim.Droptail.create ~limit_pkts:100));
    ignore
      (T.add_link topo ~src:r2 ~dst:r1 ~bandwidth:(Units.Rate.bps 10e6) ~delay:(ts 0.01)
         ~disc:(Netsim.Droptail.create ~limit_pkts:100));
    ignore
      (T.add_duplex topo ~a:r2 ~b:dst ~bandwidth:(Units.Rate.bps 100e6) ~delay:(ts 0.001)
         ~disc_ab:(fast ()) ~disc_ba:(fast ()));
    T.compute_routes topo;
    let flow =
      Flow.create topo ~src ~dst
        ~cc:(Pert_cc.create ~rng:(Rng.split (Sim.rng sim)) ())
        ~delay_signal:signal ()
    in
    (* two reverse TCP flows keep the reverse queue loaded without
       starving the ACK path outright *)
    let _rev1 = Flow.create topo ~src:dst ~dst:src ~cc:(Cc.newreno ()) () in
    let _rev2 = Flow.create topo ~src:dst ~dst:src ~cc:(Cc.newreno ()) () in
    Sim.run ~until:(ts 20.0) sim;
    ( Flow.early_responses flow,
      Units.Rate.to_bps (Flow.goodput_bps flow ~now:(Sim.now sim)) )
  in
  let early_rtt, goodput_rtt = run `Rtt in
  let early_owd, goodput_owd = run `Owd in
  check_bool "rtt signal reacts to reverse congestion" true (early_rtt > 100);
  check_bool "owd signal reacts far less" true (early_owd * 3 < early_rtt);
  check_bool "owd keeps more forward goodput" true
    (goodput_owd > 2.0 *. goodput_rtt)

let delayed_acks_halve_ack_traffic () =
  (* Delayed ACKs must still deliver everything with no spurious
     retransmissions, while putting roughly half as many ACKs on the
     wire (counted at the reverse direction of the bottleneck). *)
  let run delayed =
    (* deep buffer: the 400-packet slow-start overshoot must fit, so any
       retransmission would be a receiver-side bug *)
    let fx = fixture ~disc:(fun () -> Netsim.Droptail.create ~limit_pkts:1000) () in
    let flow =
      Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
        ~total_pkts:400 ~delayed_acks:delayed ()
    in
    let rev_link =
      List.find
        (fun l -> Netsim.Link.name l = "link-2->1")
        (Netsim.Topology.links fx.topo)
    in
    Sim.run ~until:(ts 60.0) fx.sim;
    check_bool "completed" true (Flow.completed flow);
    check_int "all data acked" 400 (Flow.acked_pkts flow);
    check_int "no spurious retransmissions" 0 (Flow.retransmissions flow);
    Netsim.Link.arrivals rev_link
  in
  let acks_immediate = run false in
  let acks_delayed = run true in
  check_bool "roughly half the ACKs" true
    (acks_delayed * 3 < acks_immediate * 2);
  check_bool "at least a third" true (acks_delayed * 3 >= acks_immediate)

let survives_reordering_jitter () =
  (* A jittery bottleneck reorders packets; the connection must still
     deliver everything (spurious fast retransmits are permitted — that
     is what reordering does to 3-dupack TCP — but no deadlock). *)
  let sim = Sim.create ~seed:5 () in
  let topo = T.create sim in
  let src = T.add_node topo and dst = T.add_node topo in
  let disc () = Netsim.Droptail.create ~limit_pkts:1000 in
  ignore
    (T.add_link topo ~jitter:(ts 0.005) ~src ~dst ~bandwidth:(Units.Rate.bps 10e6) ~delay:(ts 0.01)
       ~disc:(disc ()));
  ignore
    (T.add_link topo ~src:dst ~dst:src ~bandwidth:(Units.Rate.bps 10e6) ~delay:(ts 0.01)
       ~disc:(disc ()));
  T.compute_routes topo;
  let completed = ref false in
  let flow =
    Flow.create topo ~src ~dst ~cc:(Cc.newreno ()) ~total_pkts:500
      ~on_complete:(fun _ -> completed := true)
      ()
  in
  Sim.run ~until:(ts 60.0) sim;
  check_bool "completed despite reordering" true !completed;
  check_int "all data acked exactly once" 500 (Flow.acked_pkts flow)

let max_cwnd_cap_enforced () =
  let fx = fixture ~disc:(fun () -> Netsim.Droptail.create ~limit_pkts:1000) () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) ~max_cwnd:8.0 ()
  in
  Sim.run ~until:(ts 10.0) fx.sim;
  (* cwnd may grow above the cap internally but in-flight must respect it *)
  check_bool "outstanding bounded by cap" true
    (Flow.snd_next flow - Flow.snd_una flow <= 8);
  let goodput = Units.Rate.to_bps (Flow.goodput_bps flow ~now:(Sim.now fx.sim)) in
  (* 8 pkts per 24 ms RTT = ~2.7 Mbps of MSS payload *)
  check_bool "rate matches window cap" true (goodput < 3.3e6);
  Flow.stop flow

let completion_callback_fires_once () =
  let fx = fixture () in
  let fired = ref 0 in
  let _flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~total_pkts:50
      ~on_complete:(fun _ -> incr fired)
      ()
  in
  Sim.run ~until:(ts 20.0) fx.sim;
  check_int "exactly one completion" 1 !fired

let non_ecn_flow_ignores_echo () =
  (* A non-ECN flow over a marking RED queue: CE marks happen at the
     queue, but the sender (ecn = false) never reacts to echoes, so its
     early_responses stay 0 and it behaves like plain NewReno. *)
  let mk_red () =
    let params =
      { Netsim.Red.wq = 0.02; min_th = 5.0; max_th = 15.0; max_p = Units.Prob.v 0.1;
        gentle = true; adaptive = false; ecn = true }
    in
    Netsim.Red.create ~rng:(Rng.create 13) ~params ~capacity_pps:1201.0
      ~limit_pkts:100
  in
  let fx = fixture ~disc:mk_red () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) ~ecn:false ()
  in
  Sim.run ~until:(ts 10.0) fx.sim;
  (* RED marks only ECN-capable packets; non-capable ones get dropped in
     the marking region instead, so the flow sees losses not echoes *)
  check_int "no marks for non-ecn traffic" 0 (Netsim.Link.marks fx.bottleneck);
  check_bool "drops instead" true (Netsim.Link.drops fx.bottleneck > 0);
  Flow.stop flow

let initial_cwnd_respected () =
  let fx = fixture () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~initial_cwnd:4.0 ()
  in
  (* before any ACK returns (RTT ~24 ms), exactly 4 packets are out *)
  Sim.run ~until:(ts 0.01) fx.sim;
  check_int "initial window" 4 (Flow.snd_next flow);
  Flow.stop flow

let deterministic_replay () =
  let run () =
    let fx = fixture ~seed:99 () in
    let flow =
      Flow.create fx.topo ~src:fx.src ~dst:fx.dst
        ~cc:(Pert_cc.create ~rng:(Rng.split (Sim.rng fx.sim)) ())
        ()
    in
    Sim.run ~until:(ts 10.0) fx.sim;
    (Flow.acked_pkts flow, Flow.early_responses flow, Sim.events_executed fx.sim)
  in
  let a = run () and b = run () in
  check_bool "identical replay" true (a = b)

let reliable_delivery_under_random_loss =
  QCheck.Test.make ~name:"reliable delivery under arbitrary loss patterns"
    ~count:25
    QCheck.(list_of_size (Gen.int_range 0 30) (int_range 0 149))
    (fun victims ->
      let fx = fixture ~disc:(fun () -> scripted_drop victims) () in
      let completed = ref false in
      let flow =
        Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
          ~total_pkts:150
          ~on_complete:(fun _ -> completed := true)
          ()
      in
      Sim.run ~until:(ts 120.0) fx.sim;
      !completed && Flow.acked_pkts flow = 150)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ reliable_delivery_under_random_loss ]

let suite =
  [
    ("rto initial/first sample", `Quick, rto_initial_and_first_sample);
    ("rto min clamp", `Quick, rto_min_clamp);
    ("rto backoff/reset", `Quick, rto_backoff_and_reset);
    ("rto validation", `Quick, rto_validation);
    ("rto rejects non-finite", `Quick, rto_rejects_non_finite);
    ("rto backoff caps at max", `Quick, rto_backoff_caps_at_max);
    ("blackout backoff + recovery", `Quick, blackout_backoff_and_recovery);
    ("stop cancels pending rto", `Quick, stop_cancels_pending_rto);
    ("reno increase rules", `Quick, reno_increase_rules);
    ("vegas increases when uncongested", `Quick, vegas_increases_when_uncongested);
    ("vegas decreases when backlogged", `Quick, vegas_decreases_when_backlogged);
    ("vegas holds in band", `Quick, vegas_holds_in_band);
    ("transfer completes exactly", `Quick, transfer_completes);
    ("slow start doubles", `Quick, slow_start_doubles);
    ("ack-clocked utilisation", `Quick, ack_clocked_utilisation);
    ("fast retransmit, single loss", `Quick, fast_retransmit_single_loss);
    ("sack burst-loss recovery", `Quick, sack_burst_loss_recovery);
    ("window halves on loss", `Quick, window_halves_on_loss);
    ("timeout on blackout", `Quick, timeout_on_blackout);
    ("receiver reordering", `Quick, receiver_reordering);
    ("ecn halves without retransmit", `Quick, ecn_halves_without_retransmit);
    ("two reno flows fair", `Quick, two_reno_flows_fair);
    ("vegas keeps queue small", `Quick, vegas_keeps_queue_small);
    ("pert beats reno on queue", `Quick, pert_beats_reno_on_queue);
    ("pert-pi regulates delay", `Quick, pert_pi_regulates_delay);
    ("owd ignores reverse congestion", `Quick, owd_signal_ignores_reverse_congestion);
    ("delayed acks", `Quick, delayed_acks_halve_ack_traffic);
    ("survives reordering jitter", `Quick, survives_reordering_jitter);
    ("max cwnd cap", `Quick, max_cwnd_cap_enforced);
    ("completion fires once", `Quick, completion_callback_fires_once);
    ("non-ecn ignores echo", `Quick, non_ecn_flow_ignores_echo);
    ("initial cwnd", `Quick, initial_cwnd_respected);
    ("flow stop detaches", `Quick, flow_stop_detaches);
    ("deterministic replay", `Quick, deterministic_replay);
  ]
  @ qsuite
