(* Tests for lib/units: the phantom-typed quantity wrappers. These pin
   down (1) the exact float semantics — wrap/unwrap round-trips are the
   identity, conversions are single multiplications — so the migration
   provably changed no computed value, and (2) the construction-time
   guarantees (NaN rejection, Prob clamping) the rest of the tree now
   relies on instead of scattered runtime range checks. *)

module U = Units

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.0))
let check_int = Alcotest.(check int)

(* --- Time --- *)

let time_roundtrip () =
  check_float "to_s (s x) = x" 0.0125 (U.Time.to_s (U.Time.s 0.0125));
  (* ms/us constructors are a single multiplication by the literal scale;
     the float results must be bit-exact against the inline expression. *)
  check_float "ms" (3.0 *. 1e-3) (U.Time.to_s (U.Time.ms 3.0));
  check_float "us" (250.0 *. 1e-6) (U.Time.to_s (U.Time.us 250.0));
  check_float "to_ms" (0.004 *. 1e3) (U.Time.to_ms (U.Time.s 0.004));
  check_float "to_us" (0.004 *. 1e6) (U.Time.to_us (U.Time.s 0.004));
  check_float "zero" 0.0 (U.Time.to_s U.Time.zero)

let time_arith () =
  let a = U.Time.s 0.3 and b = U.Time.s 0.1 in
  check_float "add" (0.3 +. 0.1) (U.Time.to_s (U.Time.add a b));
  check_float "sub" (0.3 -. 0.1) (U.Time.to_s (U.Time.sub a b));
  check_float "scale" (2.5 *. 0.3) (U.Time.to_s (U.Time.scale 2.5 a));
  check_float "ratio" (0.3 /. 0.1) (U.Time.ratio a b);
  check_bool "compare" true (U.Time.compare b a < 0);
  check_bool "min" true (U.Time.equal b (U.Time.min a b));
  check_bool "max" true (U.Time.equal a (U.Time.max a b));
  check_bool "finite" true (U.Time.is_finite a);
  check_bool "infinite" false (U.Time.is_finite (U.Time.s infinity))

let time_rejects_nan () =
  Alcotest.check_raises "s nan" (Invalid_argument "Units.Time.s: NaN")
    (fun () -> ignore (U.Time.s Float.nan));
  Alcotest.check_raises "ms nan" (Invalid_argument "Units.Time.s: NaN")
    (fun () -> ignore (U.Time.ms Float.nan))

(* --- Rate --- *)

let rate_roundtrip () =
  check_float "to_bps (bps x) = x" 1.5e7 (U.Rate.to_bps (U.Rate.bps 1.5e7));
  check_float "mbps" (10.0 *. 1e6) (U.Rate.to_bps (U.Rate.mbps 10.0));
  check_float "to_mbps" (1.5e7 /. 1e6) (U.Rate.to_mbps (U.Rate.bps 1.5e7));
  (* pps of a 10 Mbit/s link with 1000-byte packets: 1250 pkt/s. *)
  check_float "to_pps" (1e7 /. 8000.0)
    (U.Rate.to_pps (U.Rate.bps 1e7) ~pkt_bytes:1000);
  check_float "scale" (0.5 *. 1e7) (U.Rate.to_bps (U.Rate.scale 0.5 (U.Rate.bps 1e7)));
  check_float "ratio" 2.0 (U.Rate.ratio (U.Rate.bps 2e6) (U.Rate.bps 1e6));
  Alcotest.check_raises "bps nan" (Invalid_argument "Units.Rate.bps: NaN")
    (fun () -> ignore (U.Rate.bps Float.nan))

(* --- Size --- *)

let size_arith () =
  check_int "bytes round-trip" 1500 (U.Size.to_bytes (U.Size.bytes 1500));
  check_int "add" 1540 (U.Size.to_bytes (U.Size.add (U.Size.bytes 1500) (U.Size.bytes 40)));
  check_float "bits" (8.0 *. 1500.0) (U.Size.bits (U.Size.bytes 1500));
  (* Serialisation delay of a 1500 B packet at 10 Mbit/s: 1.2 ms. *)
  check_float "tx_time" (12000.0 /. 1e7)
    (U.Time.to_s (U.Size.tx_time (U.Size.bytes 1500) (U.Rate.bps 1e7)))

(* --- Pkts --- *)

let pkts_semantics () =
  check_float "v round-trip" 12.5 (U.Pkts.to_float (U.Pkts.v 12.5));
  check_float "of_int" 7.0 (U.Pkts.to_float (U.Pkts.of_int 7));
  check_float "negative clamps to zero" 0.0 (U.Pkts.to_float (U.Pkts.v (-3.0)));
  check_float "add" (1.5 +. 2.5)
    (U.Pkts.to_float (U.Pkts.add (U.Pkts.v 1.5) (U.Pkts.v 2.5)));
  check_float "ratio" 4.0 (U.Pkts.ratio (U.Pkts.v 8.0) (U.Pkts.v 2.0));
  Alcotest.check_raises "v nan" (Invalid_argument "Units.Pkts.v: NaN")
    (fun () -> ignore (U.Pkts.v Float.nan))

(* --- Prob --- *)

let prob_clamping () =
  check_float "in-range is identity" 0.05 (U.Prob.to_float (U.Prob.v 0.05));
  check_float "overrange clamps to one" 1.0 (U.Prob.to_float (U.Prob.v 1.5));
  check_float "negative clamps to zero" 0.0 (U.Prob.to_float (U.Prob.v (-0.2)));
  check_float "zero" 0.0 (U.Prob.to_float U.Prob.zero);
  check_float "one" 1.0 (U.Prob.to_float U.Prob.one);
  check_bool "is_zero" true (U.Prob.is_zero U.Prob.zero);
  check_bool "positive" true (U.Prob.positive (U.Prob.v 0.01));
  check_bool "zero not positive" false (U.Prob.positive U.Prob.zero);
  check_float "complement" (1.0 -. 0.3) (U.Prob.to_float (U.Prob.complement (U.Prob.v 0.3)));
  (* scale re-clamps: doubling 0.8 saturates. *)
  check_float "scale clamps" 1.0 (U.Prob.to_float (U.Prob.scale 2.0 (U.Prob.v 0.8)));
  Alcotest.check_raises "v nan" (Invalid_argument "Units.Prob.v: NaN")
    (fun () -> ignore (U.Prob.v Float.nan))

let prob_sampling () =
  (* sample p ~u is exactly u < p — the single strict comparison every
     Bernoulli decision in the tree now compiles to. *)
  check_bool "u below p" true (U.Prob.sample (U.Prob.v 0.5) ~u:0.49);
  check_bool "u at p" false (U.Prob.sample (U.Prob.v 0.5) ~u:0.5);
  check_bool "never under zero" false (U.Prob.sample U.Prob.zero ~u:0.0);
  check_bool "always under one" true (U.Prob.sample U.Prob.one ~u:0.999999)

(* --- Round --- *)

let rounding_modes () =
  check_int "trunc" 3 (U.Round.trunc 3.9);
  check_int "trunc negative" (-3) (U.Round.trunc (-3.9));
  check_int "floor" 3 (U.Round.floor 3.9);
  check_int "floor negative" (-4) (U.Round.floor (-3.9));
  check_int "ceil" 4 (U.Round.ceil 3.1);
  check_int "ceil negative" (-3) (U.Round.ceil (-3.1));
  check_int "nearest up" 4 (U.Round.nearest 3.6);
  check_int "nearest down" 3 (U.Round.nearest 3.4)

(* QCheck: wrap/unwrap is the identity on every representable float, so
   the wrappers cannot perturb any computation they pass through. *)
let qcheck_roundtrips =
  let open QCheck in
  [
    Test.make ~name:"Time.s/to_s identity" ~count:500
      (float_range (-1e9) 1e9)
      (fun x -> Float.equal (U.Time.to_s (U.Time.s x)) x);
    Test.make ~name:"Rate.bps/to_bps identity" ~count:500
      (float_range 0.0 1e12)
      (fun x -> Float.equal (U.Rate.to_bps (U.Rate.bps x)) x);
    Test.make ~name:"Prob.v idempotent" ~count:500 (float_range (-2.0) 2.0)
      (fun x ->
        let p = U.Prob.to_float (U.Prob.v x) in
        Float.equal (U.Prob.to_float (U.Prob.v p)) p && 0.0 <= p && p <= 1.0);
  ]

let suite =
  [
    ("Time round-trips", `Quick, time_roundtrip);
    ("Time arithmetic", `Quick, time_arith);
    ("Time rejects NaN", `Quick, time_rejects_nan);
    ("Rate conversions", `Quick, rate_roundtrip);
    ("Size arithmetic and tx_time", `Quick, size_arith);
    ("Pkts semantics", `Quick, pkts_semantics);
    ("Prob clamps and rejects NaN", `Quick, prob_clamping);
    ("Prob sampling is u < p", `Quick, prob_sampling);
    ("Round names its mode", `Quick, rounding_modes);
  ]
  @ QCheck_alcotest.(List.map to_alcotest qcheck_roundtrips)
