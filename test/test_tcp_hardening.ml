(* Tests for the adversarial-hardening layer of the TCP stack:
   zero-window persist machinery (RFC 793/6429), RST validation
   (RFC 5961), window-scale negotiation (RFC 1323), the corrupted-segment
   validity gate, and determinism of the adversarial experiment family. *)

module Sim = Sim_engine.Sim
module Audit = Sim_engine.Audit
module T = Netsim.Topology
module Link = Netsim.Link
module Packet = Netsim.Packet
module Node = Netsim.Node
open Tcpstack

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ts = Units.Time.s

type fixture = {
  sim : Sim.t;
  topo : T.t;
  src : Node.t;
  dst : Node.t;
  bottleneck : Link.t;
  reverse : Link.t;  (* the ACK-path bottleneck *)
}

(* src -- r1 ==bottleneck== r2 -- dst. Bottleneck speed/delay pluggable:
   the default (10 Mbps / ~24 ms RTT) keeps the BDP small; the window-
   scaling tests raise it so the BDP exceeds the unscaled 64 KB cap. *)
let fixture ?(bandwidth = 10e6) ?(delay = 0.01) ?(seed = 11) () =
  let sim = Sim.create ~seed () in
  let topo = T.create sim in
  let src = T.add_node topo
  and r1 = T.add_node topo
  and r2 = T.add_node topo
  and dst = T.add_node topo in
  let fast () = Netsim.Droptail.create ~limit_pkts:10_000 in
  ignore
    (T.add_duplex topo ~a:src ~b:r1
       ~bandwidth:(Units.Rate.bps (10.0 *. bandwidth))
       ~delay:(ts 0.001) ~disc_ab:(fast ()) ~disc_ba:(fast ()));
  let bottleneck =
    T.add_link topo ~src:r1 ~dst:r2 ~bandwidth:(Units.Rate.bps bandwidth)
      ~delay:(ts delay) ~disc:(fast ())
  in
  let reverse =
    T.add_link topo ~src:r2 ~dst:r1 ~bandwidth:(Units.Rate.bps bandwidth)
      ~delay:(ts delay) ~disc:(fast ())
  in
  ignore
    (T.add_duplex topo ~a:r2 ~b:dst
       ~bandwidth:(Units.Rate.bps (10.0 *. bandwidth))
       ~delay:(ts 0.001) ~disc_ab:(fast ()) ~disc_ba:(fast ()));
  T.compute_routes topo;
  { sim; topo; src; dst; bottleneck; reverse }

let watched_flow fx flow ~stall_after =
  let audit = Audit.create ~interval:(ts 0.05) fx.sim in
  Audit.add_stall_check audit ~subject:"flow" ~stall_after (fun () ->
      Flow.liveness flow);
  audit

(* --- zero-window persist (acceptance a) ---------------------------------- *)

(* The receiving application stalls before the transfer starts; the
   64-packet buffer fills, the window closes, and only persist probes
   keep the connection alive until the reader resumes at t = 3 s. The
   window update the resuming reader sends is deliberately LOST (ACK-path
   outage), so completion proves a probe re-elicited the advertisement.
   The stall watchdog must stay quiet throughout, and the RTO must never
   fire: probe pacing comes from the persist backoff alone. *)
let persist_rides_out_zero_window () =
  let fx = fixture () in
  ignore
    (Netsim.Fault.attach
       {
         Netsim.Fault.none with
         outages = Netsim.Fault.Scheduled [ (ts 2.9, ts 3.2) ];
       }
       fx.reverse);
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~total_pkts:200
      ~rcv_buffer:(Units.Size.bytes (64 * Packet.mss))
      ()
  in
  let audit = watched_flow fx flow ~stall_after:(ts 1.0) in
  Flow.pause_reader flow;
  Sim.at fx.sim (ts 3.0) (fun () -> Flow.resume_reader flow);
  Sim.run ~until:(ts 20.0) fx.sim;
  check_bool "transfer completed" true (Flow.completed flow);
  check_bool "entered a zero-window episode" true
    (Flow.zero_window_episodes flow >= 1);
  check_bool "sent persist probes" true (Flow.persist_probes flow >= 2);
  check_int "no RTO fired while the window was closed" 0 (Flow.timeouts flow);
  check_int "stall watchdog stayed quiet" 0 (Audit.violation_count audit)

(* Same scenario with persist disabled: the textbook deadlock. The flow
   never completes and the audit stall watchdog is the component that
   notices. *)
let no_persist_deadlocks_and_watchdog_fires () =
  let fx = fixture () in
  (* RFC 6429's deadlock needs the reopening window update to be LOST:
     an outage on the ACK path swallows the update the resuming reader
     sends at t = 3. With persist probing the sender would re-elicit the
     advertisement afterwards; without it the connection is dead. *)
  ignore
    (Netsim.Fault.attach
       {
         Netsim.Fault.none with
         outages = Netsim.Fault.Scheduled [ (ts 2.9, ts 3.2) ];
       }
       fx.reverse);
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~total_pkts:200
      ~rcv_buffer:(Units.Size.bytes (64 * Packet.mss))
      ~persist:false ()
  in
  let audit = watched_flow fx flow ~stall_after:(ts 1.0) in
  Flow.pause_reader flow;
  Sim.at fx.sim (ts 3.0) (fun () -> Flow.resume_reader flow);
  Sim.run ~until:(ts 20.0) fx.sim;
  check_bool "transfer deadlocked" false (Flow.completed flow);
  check_int "no probes without persist" 0 (Flow.persist_probes flow);
  check_bool "stall watchdog flagged the deadlock" true
    (Audit.violation_count audit > 0)

(* Separate-timer regression (PR satellite): persist probing must not
   touch the RTO state. The RTO value observed after several probe
   backoffs equals the value when the window closed — probes are not
   retransmissions and must never compound RTO backoff. *)
let persist_does_not_inflate_rto () =
  let fx = fixture () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~total_pkts:500
      ~rcv_buffer:(Units.Size.bytes (64 * Packet.mss))
      ()
  in
  Flow.pause_reader flow;
  let rto_at_close = ref 0.0 in
  Sim.at fx.sim (ts 1.0) (fun () ->
      check_bool "in persist by t=1" true (Flow.in_persist flow);
      rto_at_close := Units.Time.to_s (Flow.rto_value flow));
  Sim.run ~until:(ts 15.0) fx.sim;
  check_bool "several probes went out" true (Flow.persist_probes flow >= 3);
  check_int "zero retransmissions during persist" 0
    (Flow.retransmissions flow);
  Alcotest.(check (float 1e-9))
    "RTO untouched by probe backoff" !rto_at_close
    (Units.Time.to_s (Flow.rto_value flow))

(* --- RFC 5961 RST validation (acceptance b) ------------------------------ *)

let inject_rst fx flow ~at ~victim ~seq_of =
  Sim.at fx.sim (ts at) (fun () ->
      let f = Packet.factory () in
      let pkt =
        Packet.rst f ~flow:(Flow.id flow) ~src:(-1) ~dst:(Node.id victim)
          ~seq:(seq_of ()) ~now:(Sim.now fx.sim) ()
      in
      Node.receive victim pkt)

let rst_validation_discriminates () =
  let fx = fixture () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) ()
  in
  (* Blind guess far outside the data in flight: dropped. *)
  inject_rst fx flow ~at:0.5 ~victim:fx.src ~seq_of:(fun () ->
      Flow.snd_next flow + 1_000_000);
  (* In-window but inexact: challenge ACK, connection survives. *)
  inject_rst fx flow ~at:0.7 ~victim:fx.src ~seq_of:(fun () ->
      Flow.snd_una flow + 1);
  Sim.at fx.sim (ts 0.9) (fun () ->
      check_bool "survived blind and in-window RSTs" false (Flow.aborted flow));
  (* Exact sequence (what the real peer would send): abort. *)
  inject_rst fx flow ~at:1.0 ~victim:fx.src ~seq_of:(fun () ->
      Flow.snd_una flow);
  Sim.run ~until:(ts 2.0) fx.sim;
  check_bool "exact RST aborted the connection" true (Flow.aborted flow);
  check_int "three RSTs seen" 3 (Flow.rsts_received flow);
  check_int "blind RST ignored" 1 (Flow.rsts_ignored flow);
  check_int "in-window RST challenged" 1 (Flow.challenge_acks flow);
  check_int "exactly one RST accepted" 1 (Flow.rsts_accepted flow)

(* Without RFC 5961, the same blind out-of-window forgery kills the
   connection instantly — the failure mode the validation removes. *)
let without_validation_blind_rst_kills () =
  let fx = fixture () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~rst_validation:false ()
  in
  inject_rst fx flow ~at:0.5 ~victim:fx.src ~seq_of:(fun () ->
      Flow.snd_next flow + 1_000_000);
  Sim.run ~until:(ts 1.0) fx.sim;
  check_bool "unvalidated stack died to a blind RST" true (Flow.aborted flow)

(* Active teardown: Flow.abort resets the peer with an exact sequence. *)
let active_abort_tears_down () =
  let fx = fixture () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) ()
  in
  Sim.at fx.sim (ts 0.5) (fun () -> Flow.abort flow);
  Sim.run ~until:(ts 1.0) fx.sim;
  check_bool "aborted" true (Flow.aborted flow);
  check_bool "no longer live" true (Flow.liveness flow = None)

(* --- corrupted-segment validity gate (PR satellite) ----------------------- *)

let corrupted_segments_hit_the_gate () =
  let fx = fixture () in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) ()
  in
  (* A corrupted ACK claiming a huge cumulative ack, and a corrupted RST:
     both must be discarded unread — no sequence advance, no abort. *)
  Sim.at fx.sim (ts 0.5) (fun () ->
      let una = Flow.snd_una flow in
      let f = Packet.factory () in
      let forged_ack =
        Packet.ack f ~flow:(Flow.id flow) ~src:(-1) ~dst:(Node.id fx.src)
          ~ack:1_000_000 ~sack:[] ~ecn_echo:false ~ts_echo:Float.nan
          ~window:65535 ~now:(Sim.now fx.sim) ()
      in
      forged_ack.Packet.corrupted <- true;
      Node.receive fx.src forged_ack;
      let forged_rst =
        Packet.rst f ~flow:(Flow.id flow) ~src:(-1) ~dst:(Node.id fx.src)
          ~seq:una ~now:(Sim.now fx.sim) ()
      in
      forged_rst.Packet.corrupted <- true;
      Node.receive fx.src forged_rst;
      check_int "both rejected at the gate" 2 (Flow.corrupt_rejected flow);
      check_bool "corrupted exact RST did not abort" false (Flow.aborted flow);
      check_bool "corrupted ack not applied" true (Flow.snd_una flow < 1_000_000));
  Sim.run ~until:(ts 1.0) fx.sim;
  check_bool "flow unharmed" false (Flow.aborted flow);
  check_int "no real RSTs recorded" 0 (Flow.rsts_received flow)

(* The Fault layer delivers corrupted packets (marked) instead of
   silently dropping them; the endpoint gate must account for every one. *)
let fault_corruption_is_delivered_and_rejected () =
  let fx = fixture () in
  let fault =
    Netsim.Fault.attach
      { Netsim.Fault.none with corrupt_prob = Units.Prob.v 0.05 }
      fx.bottleneck
  in
  let flow =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~total_pkts:300 ()
  in
  Sim.run ~until:(ts 30.0) fx.sim;
  let stats = Netsim.Fault.stats fault in
  check_bool "transfer still completed" true (Flow.completed flow);
  check_bool "some segments were corrupted" true
    (stats.Netsim.Fault.corrupted > 0);
  check_int "every corrupted segment hit the validity gate"
    stats.Netsim.Fault.corrupted
    (Flow.corrupt_rejected flow)

(* --- window scaling (acceptance c) ---------------------------------------- *)

(* High-BDP path: 200 Mbps x 100 ms RTT ~ 2400 packets in flight. With
   negotiated scaling the elephant must exceed the unscaled 65-packet
   (64 KB) ceiling; a peer that offered shift 0 must never cross it. *)
let window_scaling_lifts_the_64k_cap () =
  let fx = fixture ~bandwidth:200e6 ~delay:0.05 () in
  let scaled =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ()) ()
  in
  Sim.run ~until:(ts 5.0) fx.sim;
  check_bool "negotiated a nonzero shift" true (Flow.wscale scaled > 0);
  check_bool
    (Printf.sprintf "scaled flow beat the 64 KB cap (max in flight %d pkts)"
       (Flow.max_outstanding_pkts scaled))
    true
    (Flow.max_outstanding_pkts scaled > 65)

let wscale_zero_keeps_the_64k_cap () =
  let fx = fixture ~bandwidth:200e6 ~delay:0.05 () in
  let capped =
    Flow.create fx.topo ~src:fx.src ~dst:fx.dst ~cc:(Cc.newreno ())
      ~wscale:0 ()
  in
  Sim.run ~until:(ts 5.0) fx.sim;
  check_int "shift 0 negotiated" 0 (Flow.wscale capped);
  check_bool "advertisement clamped to the 16-bit field" true
    (Units.Size.to_bytes (Flow.advertised_bytes capped) <= 65535);
  check_bool
    (Printf.sprintf "capped flow stayed under 65 pkts (max %d)"
       (Flow.max_outstanding_pkts capped))
    true
    (Flow.max_outstanding_pkts capped <= 65)

(* --- window arithmetic properties (QCheck) -------------------------------- *)

let qcheck_encode_decode_bounds =
  QCheck.Test.make ~name:"scaled advertisement round-trip bounds" ~count:1000
    QCheck.(pair (int_range 0 14) (int_bound 2_000_000_000))
    (fun (shift, size) ->
      let scale = Tcp_window.Scale.of_int shift in
      let adv =
        Tcp_window.Adv.encode ~scale (Units.Size.bytes size)
      in
      let decoded =
        Units.Size.to_bytes (Tcp_window.Adv.decode ~scale adv)
      in
      let ceiling = 0xFFFF lsl shift in
      (* never over-advertise *)
      decoded <= size
      (* rounding error strictly below one scale unit, unless clamped *)
      && (decoded = ceiling || size - decoded < 1 lsl shift)
      (* field always representable *)
      && Tcp_window.Adv.to_field adv <= 0xFFFF)

let qcheck_encode_monotone =
  QCheck.Test.make ~name:"scaled advertisement encoding is monotone"
    ~count:500
    QCheck.(
      triple (int_range 0 14) (int_bound 2_000_000_000)
        (int_bound 2_000_000_000))
    (fun (shift, a, b) ->
      let scale = Tcp_window.Scale.of_int shift in
      let enc x =
        Tcp_window.Adv.to_field
          (Tcp_window.Adv.encode ~scale (Units.Size.bytes x))
      in
      if a <= b then enc a <= enc b else enc b <= enc a)

let qcheck_occupancy_conserved =
  QCheck.Test.make ~name:"occupy/release conserve buffer capacity"
    ~count:500
    QCheck.(pair (int_range 1 1_000_000) (small_list (int_bound 100_000)))
    (fun (cap, chunks) ->
      let w = Tcp_window.create ~capacity:(Units.Size.bytes cap) () in
      List.iter
        (fun c -> Tcp_window.occupy w (Units.Size.bytes c))
        chunks;
      let avail = Units.Size.to_bytes (Tcp_window.available w) in
      (* occupancy clamps at capacity, never negative available *)
      avail >= 0 && avail <= cap
      &&
      (List.iter
         (fun c -> Tcp_window.release w (Units.Size.bytes c))
         chunks;
       (* releasing everything restores the full window *)
       Units.Size.to_bytes (Tcp_window.available w) = cap))

let qcheck_scale_negotiation =
  QCheck.Test.make ~name:"negotiated scale is min(offered, required)"
    ~count:200
    QCheck.(pair (int_range 0 14) (int_range 0 14))
    (fun (a, b) ->
      let n =
        Tcp_window.Scale.negotiate
          ~offered:(Tcp_window.Scale.of_int a)
          ~required:(Tcp_window.Scale.of_int b)
      in
      Tcp_window.Scale.to_int n = min a b)

(* --- adversarial family determinism (acceptance d) ------------------------ *)

(* The adversarial tables must be byte-identical whether cells run
   sequentially, on a 4-domain pool, or replayed out of a --resume
   store populated by a differently-parallel run. *)
let adversarial_family_deterministic () =
  let open Experiments in
  let render ctx =
    String.concat "\n"
      (List.map Output.to_csv (Adversarial.all ~ctx Scale.Smoke))
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pert-adv-store-%d" (Unix.getpid ()))
  in
  let sequential = render (Runner.ctx ~jobs:1 ()) in
  let parallel_stored =
    render (Runner.ctx ~jobs:4 ~store:(Store.open_ ~dir) ())
  in
  let resumed = render (Runner.ctx ~jobs:2 ~store:(Store.open_ ~dir) ()) in
  Alcotest.(check string) "jobs=1 vs jobs=4 byte-identical" sequential
    parallel_stored;
  Alcotest.(check string) "resumed from store byte-identical" sequential
    resumed

let suite =
  [
    ("persist rides out a zero window", `Quick, persist_rides_out_zero_window);
    ( "without persist the zero window deadlocks and the watchdog fires",
      `Quick,
      no_persist_deadlocks_and_watchdog_fires );
    ("persist probing never inflates the RTO", `Quick,
      persist_does_not_inflate_rto);
    ("RFC 5961: exact resets, in-window challenges, blind ignored", `Quick,
      rst_validation_discriminates);
    ( "without RFC 5961 a blind RST kills the connection",
      `Quick,
      without_validation_blind_rst_kills );
    ("active abort tears the connection down", `Quick, active_abort_tears_down);
    ("corrupted segments die at the validity gate", `Quick,
      corrupted_segments_hit_the_gate);
    ( "fault-layer corruption is delivered marked and fully rejected",
      `Quick,
      fault_corruption_is_delivered_and_rejected );
    ("window scaling lifts the 64 KB cap", `Quick,
      window_scaling_lifts_the_64k_cap);
    ("wscale 0 keeps the 64 KB cap", `Quick, wscale_zero_keeps_the_64k_cap);
    ( "adversarial family is byte-identical across job counts and resume",
      `Slow,
      adversarial_family_deterministic );
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_encode_decode_bounds;
        qcheck_encode_monotone;
        qcheck_occupancy_conserved;
        qcheck_scale_negotiation;
      ]
