(* Tests for the network substrate: packets, queues (DropTail, RED, PI),
   links, nodes, topology/routing. *)

open Netsim
module Sim = Sim_engine.Sim
module Rng = Sim_engine.Rng

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ts = Units.Time.s
let tf = Units.Time.to_s

let mk_data ?(ecn = false) ?(seq = 0) factory =
  Packet.data factory ~flow:0 ~src:0 ~dst:1 ~seq ~ecn ~now:0.0 ()

(* --- Packet ------------------------------------------------------------- *)

let packet_factory_ids () =
  let f = Packet.factory () in
  let a = mk_data f and b = mk_data f in
  check_bool "distinct ids" true (a.Packet.id <> b.Packet.id);
  check_int "data size" (Packet.mss + Packet.header_size) a.Packet.size;
  check_bool "is_data" true (Packet.is_data a);
  check_int "seq" 0 (Packet.seq_exn a);
  let ack =
    Packet.ack f ~flow:0 ~src:1 ~dst:0 ~ack:5 ~sack:[ (7, 9) ] ~ecn_echo:true
      ~ts_echo:1.5 ~window:65535 ~now:2.0 ()
  in
  check_int "ack size" Packet.header_size ack.Packet.size;
  check_bool "ack not data" false (Packet.is_data ack);
  Alcotest.check_raises "seq of ack"
    (Invalid_argument "Packet.seq_exn: not a data packet") (fun () ->
      ignore (Packet.seq_exn ack))

(* --- Droptail ------------------------------------------------------------ *)

let droptail_tail_drop () =
  let q = Droptail.create ~limit_pkts:3 in
  let f = Packet.factory () in
  for i = 0 to 2 do
    match q.Queue_disc.enqueue ~now:0.0 (mk_data ~seq:i f) with
    | Queue_disc.Accept -> ()
    | _ -> Alcotest.fail "should accept under limit"
  done;
  (match q.Queue_disc.enqueue ~now:0.0 (mk_data ~seq:3 f) with
  | Queue_disc.Reject -> ()
  | _ -> Alcotest.fail "should tail-drop at limit");
  check_int "pkt length" 3 (q.Queue_disc.pkt_length ());
  check_int "byte length" (3 * Packet.data_size) (q.Queue_disc.byte_length ());
  (* FIFO order out *)
  (match q.Queue_disc.dequeue ~now:0.0 with
  | Some p -> check_int "fifo head" 0 (Packet.seq_exn p)
  | None -> Alcotest.fail "dequeue");
  check_int "length after dequeue" 2 (q.Queue_disc.pkt_length ())

let droptail_validation () =
  Alcotest.check_raises "bad limit"
    (Invalid_argument "Droptail.create: limit must be positive") (fun () ->
      ignore (Droptail.create ~limit_pkts:0))

(* --- RED ------------------------------------------------------------------ *)

let red_fixture ?(ecn = true) ?(limit = 100) () =
  let params =
    {
      Red.wq = 0.5 (* fast-moving average to make tests direct *);
      min_th = 5.0;
      max_th = 15.0;
      max_p = Units.Prob.v 0.1;
      gentle = true;
      adaptive = false;
      ecn;
    }
  in
  Red.create ~rng:(Rng.create 3) ~params ~capacity_pps:1000.0 ~limit_pkts:limit

let red_accepts_when_idle () =
  let q = red_fixture () in
  let f = Packet.factory () in
  for i = 0 to 3 do
    match q.Queue_disc.enqueue ~now:(0.001 *. float_of_int i) (mk_data ~seq:i f) with
    | Queue_disc.Accept -> ()
    | _ -> Alcotest.fail "below min_th must accept"
  done;
  check_bool "avg tracked" true (Red.avg_queue q > 0.0)

let red_marks_ecn_between_thresholds () =
  let q = red_fixture () in
  let f = Packet.factory () in
  (* Build the queue (and average) well past min_th. *)
  let marks = ref 0 and drops = ref 0 in
  for i = 0 to 99 do
    match q.Queue_disc.enqueue ~now:0.0 (mk_data ~ecn:true ~seq:i f) with
    | Queue_disc.Accept -> ()
    | Queue_disc.Accept_marked -> incr marks
    | Queue_disc.Reject -> incr drops
  done;
  check_bool "some ECN marks" true (!marks > 0);
  (* ECN-capable packets are marked, never probabilistically dropped, until
     the hard region; with avg beyond 2*max_th they are dropped. *)
  check_bool "hard drops once avg > 2 max_th" true (!drops > 0)

let red_drops_non_ecn () =
  let q = red_fixture ~ecn:false () in
  let f = Packet.factory () in
  let drops = ref 0 and marks = ref 0 in
  for i = 0 to 99 do
    match q.Queue_disc.enqueue ~now:0.0 (mk_data ~seq:i f) with
    | Queue_disc.Accept -> ()
    | Queue_disc.Accept_marked -> incr marks
    | Queue_disc.Reject -> incr drops
  done;
  check_int "never marks without ecn" 0 !marks;
  check_bool "drops instead" true (!drops > 0)

let red_idle_decay () =
  let q = red_fixture () in
  let f = Packet.factory () in
  for i = 0 to 9 do
    ignore (q.Queue_disc.enqueue ~now:0.0 (mk_data ~seq:i f))
  done;
  let avg_busy = Red.avg_queue q in
  (* Drain fully, then let it idle for a long time: the next arrival sees
     a decayed average. *)
  let rec drain () =
    match q.Queue_disc.dequeue ~now:0.1 with Some _ -> drain () | None -> ()
  in
  drain ();
  ignore (q.Queue_disc.enqueue ~now:10.0 (mk_data ~seq:100 f));
  check_bool "average decayed during idle" true (Red.avg_queue q < avg_busy /. 2.0)

let red_auto_params () =
  (* 1000 pps * 5 ms / 2 = 2.5 is below the 5-packet floor. *)
  let p = Red.auto_params ~capacity_pps:1000.0 ~limit_pkts:200 () in
  check_float "min_th floored at 5" 5.0 p.Red.min_th;
  check_float "max_th = 3 min_th" 15.0 p.Red.max_th;
  let p1 = Red.auto_params ~capacity_pps:10_000.0 ~limit_pkts:400 () in
  check_float "min_th = c*d/2 above the floor" 25.0 p1.Red.min_th;
  check_bool "wq small" true (p.Red.wq < 0.01);
  let p2 = Red.auto_params ~capacity_pps:10.0 ~limit_pkts:8 () in
  check_bool "min_th clamped into buffer" true (p2.Red.min_th <= 2.0)

let red_adaptive_moves_max_p () =
  let params =
    { (Red.auto_params ~capacity_pps:1000.0 ~limit_pkts:100 ()) with
      Red.adaptive = true; wq = 0.5 }
  in
  let q = Red.create ~rng:(Rng.create 4) ~params ~capacity_pps:1000.0 ~limit_pkts:100 in
  let f = Packet.factory () in
  let initial = Units.Prob.to_float (Red.current_max_p q) in
  (* Keep the average pinned high across several adaptation intervals. *)
  for i = 0 to 200 do
    ignore (q.Queue_disc.enqueue ~now:(0.1 *. float_of_int i) (mk_data ~ecn:true ~seq:i f))
  done;
  check_bool "max_p increased under persistent congestion" true
    (Units.Prob.to_float (Red.current_max_p q) > initial)

let red_wrong_disc () =
  let q = Droptail.create ~limit_pkts:5 in
  Alcotest.check_raises "not a RED queue"
    (Invalid_argument "Red: not a RED discipline") (fun () ->
      ignore (Red.avg_queue q))

let red_count_correction_bounds_gaps () =
  (* With the average pinned between the thresholds, the count-corrected
     probability pa = pb / (1 - count*pb) guarantees a mark at least every
     ceil(1/pb) arrivals — the de-clustering property RED is built on. *)
  let params =
    { Red.wq = 0.05; min_th = 2.0; max_th = 12.0; max_p = Units.Prob.v 0.5;
      gentle = false; adaptive = false; ecn = true }
  in
  let q = Red.create ~rng:(Rng.create 11) ~params ~capacity_pps:1000.0 ~limit_pkts:100 in
  let f = Packet.factory () in
  (* Pin the instantaneous queue at 7 (every accepted arrival is matched
     by a departure): the average converges to 7, mid-band, where
     pb = 0.5 * (7-2)/10 = 0.25 and the gap bound is 1/pb = 4. *)
  for i = 0 to 6 do
    ignore (q.Queue_disc.enqueue ~now:0.0 (mk_data ~ecn:true ~seq:i f))
  done;
  for i = 7 to 2006 do
    (match q.Queue_disc.enqueue ~now:0.001 (mk_data ~ecn:true ~seq:i f) with
    | Queue_disc.Accept | Queue_disc.Accept_marked ->
        ignore (q.Queue_disc.dequeue ~now:0.001)
    | Queue_disc.Reject -> ())
  done;
  let gap = ref 0 and max_gap = ref 0 and marks = ref 0 in
  for i = 0 to 1999 do
    (match
       q.Queue_disc.enqueue ~now:0.002 (mk_data ~ecn:true ~seq:(6000 + i) f)
     with
    | Queue_disc.Accept_marked ->
        incr marks;
        if !gap > !max_gap then max_gap := !gap;
        gap := 0;
        ignore (q.Queue_disc.dequeue ~now:0.002)
    | Queue_disc.Accept ->
        incr gap;
        ignore (q.Queue_disc.dequeue ~now:0.002)
    | Queue_disc.Reject -> ())
  done;
  check_bool "plenty of marks" true (!marks > 200);
  (* pb >= 0.2 in the settled band -> gap bound 1/pb = 5, plus slack *)
  check_bool "count correction bounds the gap" true (!max_gap <= 8)

(* --- PI queue --------------------------------------------------------------- *)

let pi_fixture () =
  let params =
    { Pi_queue.a = 0.01; b = 0.005; q_ref = 5.0; sample_interval = ts 0.01; ecn = true }
  in
  Pi_queue.create ~rng:(Rng.create 5) ~params ~limit_pkts:100

let pi_probability_rises_and_falls () =
  let q = pi_fixture () in
  let f = Packet.factory () in
  (* Queue pinned at 20 > q_ref: probability should integrate upward. *)
  for i = 0 to 19 do
    ignore (q.Queue_disc.enqueue ~now:0.0 (mk_data ~ecn:true ~seq:i f))
  done;
  ignore (q.Queue_disc.enqueue ~now:1.0 (mk_data ~ecn:true ~seq:20 f));
  let p_high = Units.Prob.to_float (Pi_queue.probability q) in
  check_bool "p grew above 0" true (p_high > 0.0);
  (* Drain to zero and wait: probability should decay back down. *)
  let rec drain () =
    match q.Queue_disc.dequeue ~now:1.0 with Some _ -> drain () | None -> ()
  in
  drain ();
  ignore (q.Queue_disc.enqueue ~now:5.0 (mk_data ~ecn:true ~seq:21 f));
  check_bool "p decayed" true (Units.Prob.to_float (Pi_queue.probability q) < p_high)

let pi_marks_ecn () =
  let q = pi_fixture () in
  let f = Packet.factory () in
  (* Standing queue of ~20 (> q_ref = 5, well below the 100 limit): every
     accepted packet is matched by a departure. *)
  for i = 0 to 19 do
    ignore (q.Queue_disc.enqueue ~now:0.0 (mk_data ~ecn:true ~seq:i f))
  done;
  let marks = ref 0 and drops = ref 0 in
  for i = 20 to 519 do
    (match
       q.Queue_disc.enqueue ~now:(0.01 *. float_of_int i) (mk_data ~ecn:true ~seq:i f)
     with
    | Queue_disc.Accept_marked ->
        incr marks;
        ignore (q.Queue_disc.dequeue ~now:(0.01 *. float_of_int i))
    | Queue_disc.Accept -> ignore (q.Queue_disc.dequeue ~now:(0.01 *. float_of_int i))
    | Queue_disc.Reject -> incr drops)
  done;
  check_bool "ECN marks under sustained excess" true (!marks > 0);
  check_int "no drops while marking" 0 !drops

(* --- REM ---------------------------------------------------------------------- *)

let rem_fixture () =
  let params =
    { Netsim.Rem.gamma = 0.01; alpha = 0.5; b_ref = 5.0; phi = 1.01;
      sample_interval = ts 0.01; ecn = true }
  in
  Rem.create ~rng:(Rng.create 7) ~params ~capacity_pps:100.0 ~limit_pkts:200

let rem_price_tracks_backlog () =
  let q = rem_fixture () in
  let f = Packet.factory () in
  check_float "initial price" 0.0 (Rem.price q);
  (* hold a backlog of 30 > b_ref across many intervals *)
  for i = 0 to 29 do
    ignore (q.Queue_disc.enqueue ~now:0.0 (mk_data ~ecn:true ~seq:i f))
  done;
  ignore (q.Queue_disc.enqueue ~now:2.0 (mk_data ~ecn:true ~seq:100 f));
  let high = Rem.price q in
  check_bool "price grew" true (high > 0.0);
  check_bool "marking probability in (0,1)" true
    (Units.Prob.to_float (Rem.mark_probability q) > 0.0
    && Units.Prob.to_float (Rem.mark_probability q) < 1.0);
  (* drain below the target: price must fall back toward zero *)
  let rec drain () =
    match q.Queue_disc.dequeue ~now:2.0 with Some _ -> drain () | None -> ()
  in
  drain ();
  ignore (q.Queue_disc.enqueue ~now:10.0 (mk_data ~ecn:true ~seq:101 f));
  check_bool "price decayed" true (Rem.price q < high)

let rem_marks_under_price () =
  let q = rem_fixture () in
  let f = Packet.factory () in
  let marks = ref 0 and drops = ref 0 in
  for i = 0 to 999 do
    (match
       q.Queue_disc.enqueue ~now:(0.005 *. float_of_int i)
         (mk_data ~ecn:true ~seq:i f)
     with
    | Queue_disc.Accept_marked -> incr marks
    | Queue_disc.Reject -> incr drops
    | Queue_disc.Accept -> ());
    (* slow service keeps backlog above target *)
    if i mod 2 = 0 then ignore (q.Queue_disc.dequeue ~now:(0.005 *. float_of_int i))
  done;
  check_bool "REM marks" true (!marks > 0)

let rem_validation () =
  Alcotest.check_raises "phi must exceed 1"
    (Invalid_argument "Rem.create: phi must exceed 1") (fun () ->
      ignore
        (Rem.create ~rng:(Rng.create 1)
           ~params:{ (Rem.default_params ~capacity_pps:100.0) with Rem.phi = 1.0 }
           ~capacity_pps:100.0 ~limit_pkts:10))

(* --- AVQ ---------------------------------------------------------------------- *)

let avq_marks_on_virtual_overflow () =
  let params = { (Avq.default_params ()) with Netsim.Avq.virtual_buffer = 5.0 } in
  let q = Avq.create ~params ~capacity_pps:100.0 ~limit_pkts:1000 in
  let f = Packet.factory () in
  (* a burst far above the virtual capacity must overflow the virtual
     queue and mark *)
  let marks = ref 0 in
  for i = 0 to 49 do
    match q.Queue_disc.enqueue ~now:0.001 (mk_data ~ecn:true ~seq:i f) with
    | Queue_disc.Accept_marked -> incr marks
    | Queue_disc.Accept | Queue_disc.Reject -> ()
  done;
  check_bool "burst marked" true (!marks > 30);
  (* virtual capacity stays within [0, C] *)
  let c = Avq.virtual_capacity q in
  check_bool "virtual capacity bounded" true (c >= 0.0 && c <= 100.0)

let avq_adapts_capacity () =
  let q = Avq.create ~params:(Avq.default_params ()) ~capacity_pps:100.0 ~limit_pkts:1000 in
  let f = Packet.factory () in
  (* light load (10 pkt/s against gamma*C = 98): c_tilde pins at C *)
  for i = 0 to 99 do
    ignore (q.Queue_disc.enqueue ~now:(0.1 *. float_of_int i) (mk_data ~ecn:true ~seq:i f));
    ignore (q.Queue_disc.dequeue ~now:(0.1 *. float_of_int i))
  done;
  check_float "pins at C under light load" 100.0 (Avq.virtual_capacity q);
  (* overload (1000 pkt/s): c_tilde must fall *)
  for i = 0 to 999 do
    ignore (q.Queue_disc.enqueue ~now:(10.0 +. (0.001 *. float_of_int i)) (mk_data ~ecn:true ~seq:(1000 + i) f));
    ignore (q.Queue_disc.dequeue ~now:(10.0 +. (0.001 *. float_of_int i)))
  done;
  check_bool "falls under overload" true (Avq.virtual_capacity q < 100.0)

(* --- Link --------------------------------------------------------------------- *)

let link_fixture ?(bandwidth = Units.Rate.bps 1e6) ?(delay = ts 0.01) ?(limit = 50) sim =
  Link.create sim ~name:"l" ~bandwidth ~delay
    ~disc:(Droptail.create ~limit_pkts:limit)

let link_timing_exact () =
  let sim = Sim.create () in
  let link = link_fixture sim in
  let arrival = ref 0.0 in
  Link.set_deliver link (fun _ -> arrival := Sim.now sim);
  let f = Packet.factory () in
  Sim.at sim (ts 0.0) (fun () -> Link.send link (mk_data f));
  Sim.run sim;
  (* 1040 bytes at 1 Mbps = 8.32 ms serialisation + 10 ms propagation. *)
  check_float "delivery time" (0.00832 +. 0.01) !arrival

let link_serialises_back_to_back () =
  let sim = Sim.create () in
  let link = link_fixture sim in
  let arrivals = ref [] in
  Link.set_deliver link (fun p -> arrivals := (Packet.seq_exn p, Sim.now sim) :: !arrivals);
  let f = Packet.factory () in
  Sim.at sim (ts 0.0) (fun () ->
      Link.send link (mk_data ~seq:0 f);
      Link.send link (mk_data ~seq:1 f));
  Sim.run sim;
  match List.rev !arrivals with
  | [ (0, t0); (1, t1) ] ->
      check_float "second is one serialisation later" 0.00832 (t1 -. t0)
  | _ -> Alcotest.fail "expected two arrivals in order"

let link_max_queue_watermark () =
  let sim = Sim.create () in
  let link = link_fixture sim in
  Link.set_deliver link ignore;
  let f = Packet.factory () in
  Sim.at sim (ts 0.0) (fun () ->
      for i = 0 to 9 do
        Link.send link (mk_data ~seq:i f)
      done);
  Sim.run sim;
  (* first packet starts transmitting immediately; nine buffered at peak *)
  check_int "high watermark" 9 (Link.max_queue_pkts link);
  Link.reset_stats link;
  check_int "watermark resets to current" 0 (Link.max_queue_pkts link)

let link_counters_and_reset () =
  let sim = Sim.create () in
  let link = link_fixture ~limit:2 sim in
  Link.set_deliver link ignore;
  let f = Packet.factory () in
  Sim.at sim (ts 0.0) (fun () ->
      for i = 0 to 4 do
        Link.send link (mk_data ~seq:i f)
      done);
  Sim.run sim;
  check_int "arrivals" 5 (Link.arrivals link);
  (* limit 2: the first is transmitted immediately, two buffered, two dropped *)
  check_int "drops" 2 (Link.drops link);
  check_float "drop rate" 0.4 (Link.drop_rate link);
  check_bool "utilization positive" true (Link.utilization link > 0.0);
  Link.reset_stats link;
  check_int "drops reset" 0 (Link.drops link);
  check_int "arrivals reset" 0 (Link.arrivals link)

let link_drop_trace () =
  let sim = Sim.create () in
  let link = link_fixture ~limit:1 sim in
  Link.set_deliver link ignore;
  Link.enable_drop_trace link;
  let f = Packet.factory () in
  Sim.at sim (ts 0.5) (fun () ->
      for i = 0 to 3 do
        Link.send link (mk_data ~seq:i f)
      done);
  Sim.run sim;
  let drops = Link.drop_times link in
  check_int "two drops traced" 2 (Array.length drops);
  Array.iter (fun t -> check_float "at send time" 0.5 t) drops

let link_queue_trace_lookup () =
  let sim = Sim.create () in
  let link = link_fixture sim in
  Link.set_deliver link ignore;
  Link.enable_queue_trace link ~interval:(ts 0.1) ();
  let f = Packet.factory () in
  Sim.at sim (ts 0.45) (fun () ->
      for i = 0 to 9 do
        Link.send link (mk_data ~seq:i f)
      done);
  Sim.run ~until:(ts 1.0) sim;
  check_float "queue before burst" 0.0 (Link.queue_at link (ts 0.2));
  check_bool "queue after burst" true (Link.queue_at link (ts 0.55) > 0.0)

let link_jitter_reorders () =
  let sim = Sim.create ~seed:9 () in
  let link =
    Link.create ~jitter:(ts 0.02) sim ~name:"j" ~bandwidth:(Units.Rate.bps 1e8)
      ~delay:(ts 0.001)
      ~disc:(Droptail.create ~limit_pkts:100)
  in
  let order = ref [] in
  Link.set_deliver link (fun p -> order := Packet.seq_exn p :: !order);
  let f = Packet.factory () in
  Sim.at sim (ts 0.0) (fun () ->
      for i = 0 to 49 do
        Link.send link (mk_data ~seq:i f)
      done);
  Sim.run sim;
  let arrived = List.rev !order in
  check_int "all delivered" 50 (List.length arrived);
  check_bool "some reordering happened" true
    (arrived <> List.sort compare arrived);
  Alcotest.(check (list int))
    "no loss, no duplication"
    (List.init 50 (fun i -> i))
    (List.sort compare arrived)

let rem_default_params_sane () =
  let p = Rem.default_params ~capacity_pps:1000.0 in
  check_bool "phi > 1" true (p.Rem.phi > 1.0);
  check_bool "positive interval" true (tf p.Rem.sample_interval > 0.0)

(* --- Node / Topology ------------------------------------------------------------ *)

let topology_routing_chain () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let n = Array.init 4 (fun _ -> Topology.add_node topo) in
  let disc () = Droptail.create ~limit_pkts:100 in
  for i = 0 to 2 do
    ignore
      (Topology.add_duplex topo ~a:n.(i) ~b:n.(i + 1) ~bandwidth:(Units.Rate.bps 1e7) ~delay:(ts 0.001)
         ~disc_ab:(disc ()) ~disc_ba:(disc ()))
  done;
  Topology.compute_routes topo;
  check_int "node count" 4 (Topology.node_count topo);
  check_int "links" 6 (List.length (Topology.links topo));
  (* End-to-end delivery via intermediate hops. *)
  let got = ref None in
  Node.attach_agent n.(3) ~flow:7 (fun p -> got := Some (Packet.seq_exn p));
  let f = Packet.factory () in
  let pkt = Packet.data f ~flow:7 ~src:0 ~dst:3 ~seq:42 ~ecn:false ~now:0.0 () in
  Sim.at sim (ts 0.0) (fun () -> Topology.inject topo n.(0) pkt);
  Sim.run sim;
  Alcotest.(check (option int)) "delivered across 3 hops" (Some 42) !got

let topology_shortest_path () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  (* Triangle with an extra 2-hop detour: BFS must pick the direct edge. *)
  let a = Topology.add_node topo
  and b = Topology.add_node topo
  and c = Topology.add_node topo in
  let disc () = Droptail.create ~limit_pkts:10 in
  let direct = Topology.add_link topo ~src:a ~dst:c ~bandwidth:(Units.Rate.bps 1e6) ~delay:(ts 0.001) ~disc:(disc ()) in
  ignore (Topology.add_link topo ~src:a ~dst:b ~bandwidth:(Units.Rate.bps 1e6) ~delay:(ts 0.001) ~disc:(disc ()));
  ignore (Topology.add_link topo ~src:b ~dst:c ~bandwidth:(Units.Rate.bps 1e6) ~delay:(ts 0.001) ~disc:(disc ()));
  Topology.compute_routes topo;
  (match Node.route_to a (Node.id c) with
  | Some l -> Alcotest.(check string) "direct link chosen" (Link.name direct) (Link.name l)
  | None -> Alcotest.fail "no route");
  check_bool "no route back (directed)" true (Node.route_to c (Node.id a) = None)

let node_agent_demux () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let a = Topology.add_node topo and b = Topology.add_node topo in
  ignore
    (Topology.add_duplex topo ~a ~b ~bandwidth:(Units.Rate.bps 1e7) ~delay:(ts 0.001)
       ~disc_ab:(Droptail.create ~limit_pkts:10)
       ~disc_ba:(Droptail.create ~limit_pkts:10));
  Topology.compute_routes topo;
  let hits_1 = ref 0 and hits_2 = ref 0 in
  Node.attach_agent b ~flow:1 (fun _ -> incr hits_1);
  Node.attach_agent b ~flow:2 (fun _ -> incr hits_2);
  let f = Packet.factory () in
  Sim.at sim (ts 0.0) (fun () ->
      Node.receive a (Packet.data f ~flow:1 ~src:0 ~dst:1 ~seq:0 ~ecn:false ~now:0.0 ());
      Node.receive a (Packet.data f ~flow:2 ~src:0 ~dst:1 ~seq:0 ~ecn:false ~now:0.0 ());
      Node.receive a (Packet.data f ~flow:3 ~src:0 ~dst:1 ~seq:0 ~ecn:false ~now:0.0 ()));
  Sim.run sim;
  check_int "flow 1" 1 !hits_1;
  check_int "flow 2" 1 !hits_2;
  Node.detach_agent b ~flow:1;
  Sim.at sim (ts (Sim.now sim +. 0.001)) (fun () ->
      Node.receive a (Packet.data f ~flow:1 ~src:0 ~dst:1 ~seq:1 ~ecn:false ~now:0.0 ()));
  Sim.run sim;
  check_int "detached agent silent" 1 !hits_1

(* --- Tracer -------------------------------------------------------------- *)

let tracer_records_lifecycle () =
  let sim = Sim.create () in
  let link = link_fixture ~limit:2 sim in
  Link.set_deliver link ignore;
  let tracer = Tracer.create sim ~links:[ link ] in
  let f = Packet.factory () in
  Sim.at sim (ts 0.0) (fun () ->
      for i = 0 to 4 do
        Link.send link (mk_data ~seq:i f)
      done);
  Sim.run sim;
  (* 3 accepted (1 transmitting + 2 buffered), 2 dropped:
     3 enqueues + 3 dequeues + 3 receives + 2 drops *)
  check_int "event count" 11 (Tracer.events tracer);
  let trace = Tracer.to_string tracer in
  let count c =
    String.fold_left
      (fun (at_bol, n) ch ->
        if at_bol && ch = c then (false, n + 1) else (ch = '\n', n))
      (true, 0) trace
    |> snd
  in
  check_int "enqueues" 3 (count '+');
  check_int "dequeues" 3 (count '-');
  check_int "receives" 3 (count 'r');
  check_int "drops" 2 (count 'd');
  check_bool "ns-2 fields present" true
    (String.length trace > 0
    && String.split_on_char ' ' (List.hd (String.split_on_char '\n' trace))
       |> List.length = 12)

let tracer_marks_flags () =
  let sim = Sim.create () in
  let link = link_fixture sim in
  Link.set_deliver link ignore;
  let tracer = Tracer.create sim ~links:[ link ] in
  let f = Packet.factory () in
  let pkt = mk_data ~seq:0 f in
  pkt.Packet.retransmit <- true;
  Sim.at sim (ts 0.0) (fun () -> Link.send link pkt);
  Sim.run sim;
  check_bool "retransmit flag traced" true
    (let trace = Tracer.to_string tracer in
     String.length trace > 0
     &&
     let has_sub sub s =
       let n = String.length sub and m = String.length s in
       let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     has_sub "-R--" trace)

let suite =
  [
    ("packet factory/accessors", `Quick, packet_factory_ids);
    ("droptail tail drop", `Quick, droptail_tail_drop);
    ("droptail validation", `Quick, droptail_validation);
    ("red accepts when idle", `Quick, red_accepts_when_idle);
    ("red marks ecn", `Quick, red_marks_ecn_between_thresholds);
    ("red drops non-ecn", `Quick, red_drops_non_ecn);
    ("red idle decay", `Quick, red_idle_decay);
    ("red auto params", `Quick, red_auto_params);
    ("red adaptive max_p", `Quick, red_adaptive_moves_max_p);
    ("red wrong discipline", `Quick, red_wrong_disc);
    ("red count correction", `Quick, red_count_correction_bounds_gaps);
    ("pi probability rises/falls", `Quick, pi_probability_rises_and_falls);
    ("rem price tracks backlog", `Quick, rem_price_tracks_backlog);
    ("rem marks under price", `Quick, rem_marks_under_price);
    ("rem validation", `Quick, rem_validation);
    ("avq marks on virtual overflow", `Quick, avq_marks_on_virtual_overflow);
    ("avq adapts capacity", `Quick, avq_adapts_capacity);
    ("pi marks ecn", `Quick, pi_marks_ecn);
    ("link timing exact", `Quick, link_timing_exact);
    ("link serialisation", `Quick, link_serialises_back_to_back);
    ("link max-queue watermark", `Quick, link_max_queue_watermark);
    ("link counters/reset", `Quick, link_counters_and_reset);
    ("link drop trace", `Quick, link_drop_trace);
    ("link queue trace", `Quick, link_queue_trace_lookup);
    ("topology routing chain", `Quick, topology_routing_chain);
    ("topology shortest path", `Quick, topology_shortest_path);
    ("node agent demux", `Quick, node_agent_demux);
    ("link jitter reorders", `Quick, link_jitter_reorders);
    ("rem default params", `Quick, rem_default_params_sane);
    ("tracer records lifecycle", `Quick, tracer_records_lifecycle);
    ("tracer flags", `Quick, tracer_marks_flags);
  ]
