(* The crash-safe runner stack: store round-trips and checksum rejection,
   atomic writes, graceful degradation of poisoned/over-budget cells to
   FAILED/TIMEOUT markers, and resume-after-partial-loss byte identity —
   the properties `experiments_cli --resume` rests on. *)

open Experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A unique, not-yet-existing directory name; Store.open_ creates it. *)
let fresh_dir () =
  let base = Filename.temp_file "pert-store-test" "" in
  Sys.remove base;
  base

(* --- store ---------------------------------------------------------------- *)

let store_round_trip () =
  let store = Store.open_ ~dir:(fresh_dir ()) in
  let k =
    Store.key ~experiment:"exp" ~scheme:"pert" ~seed:7 ~point:"1.5"
      ~extra:"abc" ()
  in
  Alcotest.(check (option string)) "miss before put" None (Store.find store k);
  let payload = "hello\nworld \000 binary bytes" in
  Store.put store k ~payload;
  Alcotest.(check (option string)) "round trip" (Some payload)
    (Store.find store k);
  let k' =
    Store.key ~experiment:"exp" ~scheme:"pert" ~seed:8 ~point:"1.5"
      ~extra:"abc" ()
  in
  Alcotest.(check (option string)) "different key still misses" None
    (Store.find store k');
  Store.put store k ~payload:"second";
  Alcotest.(check (option string)) "last writer wins" (Some "second")
    (Store.find store k)

let canonical_is_collision_safe () =
  (* Field separators in free text must not let two distinct keys
     canonicalise identically. *)
  let c1 =
    Store.canonical (Store.key ~experiment:"a|b" ~scheme:"c" ())
  in
  let c2 = Store.canonical (Store.key ~experiment:"a" ~scheme:"b|c" ()) in
  check_bool "sanitised fields cannot collide" true (c1 <> c2)

let rewrite_file path f =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (f content);
  close_out oc

let checksum_rejects_corruption () =
  let store = Store.open_ ~dir:(fresh_dir ()) in
  let k = Store.key ~experiment:"exp" ~point:"p" () in
  Store.put store k ~payload:"precious result bytes";
  let path = Store.path store k in
  check_bool "cell file exists" true (Sys.file_exists path);
  (* Flip one payload byte: the checksum line no longer matches. *)
  rewrite_file path (fun s ->
      let b = Bytes.of_string s in
      let i = String.length s - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      Bytes.to_string b);
  Alcotest.(check (option string)) "corrupt cell reads as a miss" None
    (Store.find store k);
  (* A torn (truncated) write must read as a miss, not raise. *)
  Store.put store k ~payload:"precious result bytes";
  rewrite_file path (fun s -> String.sub s 0 (String.length s / 2));
  Alcotest.(check (option string)) "torn cell reads as a miss" None
    (Store.find store k);
  (* Garbage without even a header line. *)
  rewrite_file path (fun _ -> "not a store cell");
  Alcotest.(check (option string)) "garbage reads as a miss" None
    (Store.find store k)

let write_atomic_basics () =
  let dir = fresh_dir () in
  ignore (Store.open_ ~dir);
  let path = Filename.concat dir "out.csv" in
  Store.write_atomic ~path "a,b\n1,2\n";
  let ic = open_in_bin path in
  let got = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "content written" "a,b\n1,2\n" got;
  check_bool "no temp file left behind" false
    (Sys.file_exists (path ^ ".tmp"));
  Store.write_atomic ~path "x";
  let ic = open_in_bin path in
  let got = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "overwrite replaces" "x" got

(* --- graceful degradation -------------------------------------------------- *)

let poison_key i = Store.key ~experiment:"poison" ~point:(string_of_int i) ()

let poisoned_cell_degrades () =
  let xs = [ 0; 1; 2; 3 ] in
  let f i = if i = 2 then failwith "poisoned point" else i * 7 in
  let render jobs =
    Runner.map (Runner.ctx ~jobs ~retries:2 ()) ~key:poison_key f xs
    |> List.map (function
         | Ok v -> string_of_int v
         | Error fl -> Runner.failure_cell fl)
  in
  let r1 = render 1 in
  check_int "all cells rendered" 4 (List.length r1);
  Alcotest.(check string) "healthy cell 0" "0" (List.nth r1 0);
  Alcotest.(check string) "healthy cell 3" "21" (List.nth r1 3);
  let marker = List.nth r1 2 in
  check_bool "poisoned cell is a FAILED marker" true
    (String.length marker > 7 && String.sub marker 0 7 = "FAILED(");
  check_bool "marker is recognised" true (Output.is_failure_cell marker);
  Alcotest.(check (list string)) "identical at jobs=4" r1 (render 4);
  (* The attempt count must reflect retries. *)
  match Runner.map (Runner.ctx ~retries:2 ()) ~key:poison_key f [ 2 ] with
  | [ Error (Runner.Failed { attempts; reason }) ] ->
      check_int "initial try + 2 retries" 3 attempts;
      check_bool "reason recorded" true (String.length reason > 0)
  | _ -> Alcotest.fail "expected a Failed cell"

let failures_never_cached () =
  let store = Store.open_ ~dir:(fresh_dir ()) in
  let ctx = Runner.ctx ~store () in
  let calls = ref 0 in
  let f _ =
    incr calls;
    if !calls = 1 then failwith "transient" else 42
  in
  (match Runner.map ctx ~key:poison_key f [ 0 ] with
  | [ Error (Runner.Failed _) ] -> ()
  | _ -> Alcotest.fail "expected the first run to fail");
  (match Runner.map ctx ~key:poison_key f [ 0 ] with
  | [ Ok 42 ] -> ()
  | _ -> Alcotest.fail "failure must not be cached — rerun must recompute");
  (* ...but the success is cached: a third run must not call f again. *)
  (match Runner.map ctx ~key:poison_key f [ 0 ] with
  | [ Ok 42 ] -> ()
  | _ -> Alcotest.fail "success must replay from the store");
  check_int "two computations, then a cache hit" 2 !calls

(* A deliberately small dumbbell so each cell runs in well under a
   second at any scale. *)
let tiny ?(seed = 3) scheme =
  Dumbbell.uniform_flows
    {
      Dumbbell.default with
      Dumbbell.scheme;
      bandwidth = 5e6;
      duration = 4.0;
      warmup = 1.0;
      seed;
    }
    ~n:4

let budget_timeout_marks_cell () =
  let ctx = Runner.ctx ~max_events:200 ~retries:3 () in
  match
    Dumbbell.run_cells ~ctx ~experiment:"tiny-timeout"
      [ ("x", tiny Schemes.Pert) ]
  with
  | [ Error (Runner.Timed_out reason) ] ->
      check_bool "reason recorded" true (String.length reason > 0);
      Alcotest.(check string) "renders as the TIMEOUT marker"
        Output.timeout_cell
        (Runner.failure_cell (Runner.Timed_out reason))
  | _ -> Alcotest.fail "expected a single TIMEOUT cell"

let render_cells cells =
  String.concat "|"
    (List.map
       (function
         | Ok (r : Dumbbell.result) ->
             Printf.sprintf "%.17g,%.17g,%.17g"
               (Units.Pkts.to_float r.Dumbbell.avg_queue_pkts)
               r.Dumbbell.utilization r.Dumbbell.jain
         | Error fl -> Runner.failure_cell fl)
       cells)

let resume_replays_byte_identical () =
  let specs =
    List.map
      (fun s -> (Schemes.name s, tiny s))
      [ Schemes.Pert; Schemes.Sack_droptail ]
  in
  let run ctx = render_cells (Dumbbell.run_cells ~ctx ~experiment:"resume" specs) in
  let plain = run Runner.default in
  let dir = fresh_dir () in
  let store = Store.open_ ~dir in
  let ctx = Runner.ctx ~store () in
  Alcotest.(check string) "store does not change output" plain (run ctx);
  let cells =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cell")
  in
  check_int "every cell committed" 2 (List.length cells);
  (* Simulate a crash that lost one in-flight cell: the rerun recomputes
     only the missing one and must be byte-identical. *)
  Sys.remove (Filename.concat dir (List.hd cells));
  Alcotest.(check string) "resume after partial loss" plain (run ctx);
  (* Pure replay: everything served from the store. *)
  Alcotest.(check string) "pure replay" plain (run ctx)

let failure_count_counts_markers () =
  let t =
    {
      Output.title = "t";
      header = [ "a"; "b" ];
      rows =
        [
          [ "1"; Output.timeout_cell ];
          [ Output.failed_cell ~reason:"x"; "2" ];
          [ "3"; "4" ];
        ];
    }
  in
  check_int "two failure cells" 2 (Output.failure_count t);
  check_bool "TIMEOUT recognised" true
    (Output.is_failure_cell Output.timeout_cell);
  check_bool "FAILED recognised" true
    (Output.is_failure_cell (Output.failed_cell ~reason:"boom"));
  check_bool "ordinary cell not flagged" false (Output.is_failure_cell "3.14")

let suite =
  [
    ("store round trip", `Quick, store_round_trip);
    ("store canonical collision-safe", `Quick, canonical_is_collision_safe);
    ("store checksum rejects corruption", `Quick, checksum_rejects_corruption);
    ("write_atomic basics", `Quick, write_atomic_basics);
    ("poisoned cell degrades to FAILED", `Quick, poisoned_cell_degrades);
    ("failures never cached", `Quick, failures_never_cached);
    ("event budget renders TIMEOUT", `Quick, budget_timeout_marks_cell);
    ("resume replays byte-identical", `Slow, resume_replays_byte_identical);
    ("Output.failure_count", `Quick, failure_count_counts_markers);
  ]
