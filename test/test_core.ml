(* Tests for the pure PERT decision engines (lib/core). *)

open Pert_core

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ts = Units.Time.s
let tf = Units.Time.to_s
let pf = Units.Prob.to_float

(* --- Response_curve -------------------------------------------------------- *)

let curve_anchor_points () =
  let c = Response_curve.default in
  check_float "zero below t_min" 0.0 (pf (Response_curve.probability c (ts 0.004)));
  check_float "zero at 0" 0.0 (pf (Response_curve.probability c (ts 0.0)));
  check_float "zero for negative" 0.0 (pf (Response_curve.probability c (ts (-1.0))));
  check_float "p_max at t_max" 0.05 (pf (Response_curve.probability c (ts 0.010)));
  check_float "midpoint of first segment" 0.025
    (pf (Response_curve.probability c (ts 0.0075)));
  check_float "midpoint of gentle segment" 0.525
    (pf (Response_curve.probability c (ts 0.015)));
  check_float "one at 2*t_max" 1.0 (pf (Response_curve.probability c (ts 0.020)));
  check_float "one beyond" 1.0 (pf (Response_curve.probability c (ts 0.5)))

let curve_slope () =
  check_float "slope = p_max/(t_max-t_min)" 10.0
    (Response_curve.slope Response_curve.default)

let curve_validation () =
  Alcotest.check_raises "t_min >= t_max"
    (Invalid_argument "Response_curve.make: need 0 < t_min < t_max") (fun () ->
      ignore
        (Response_curve.make ~t_min:(ts 0.01) ~t_max:(ts 0.01)
           ~p_max:(Units.Prob.v 0.1)));
  Alcotest.check_raises "p_max = 0"
    (Invalid_argument "Response_curve.make: need 0 < p_max <= 1") (fun () ->
      ignore
        (Response_curve.make ~t_min:(ts 0.005) ~t_max:(ts 0.01)
           ~p_max:Units.Prob.zero));
  (* out-of-range p_max is unrepresentable: [Prob.v] clamps, NaN raises *)
  Alcotest.check_raises "NaN p_max"
    (Invalid_argument "Units.Prob.v: NaN") (fun () ->
      ignore (Units.Prob.v Float.nan))

let curve_qcheck_monotone =
  QCheck.Test.make ~name:"response curve is nondecreasing" ~count:500
    QCheck.(pair (float_bound_exclusive 0.05) (float_bound_exclusive 0.05))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let c = Response_curve.default in
      pf (Response_curve.probability c (ts lo))
      <= pf (Response_curve.probability c (ts hi)) +. 1e-12)

let curve_qcheck_bounded =
  QCheck.Test.make ~name:"response curve within [0,1]" ~count:500
    QCheck.(float_range (-1.0) 10.0)
    (fun qd ->
      let p = pf (Response_curve.probability Response_curve.default (ts qd)) in
      p >= 0.0 && p <= 1.0)

(* --- Srtt ------------------------------------------------------------------- *)

let srtt_first_sample () =
  let s = Srtt.create () in
  check_int "no samples" 0 (Srtt.samples s);
  Alcotest.check_raises "value before sample"
    (Invalid_argument "Srtt.value: no samples") (fun () -> ignore (Srtt.value s));
  Srtt.observe s (ts 0.1);
  check_float "first sample initialises" 0.1 (tf (Srtt.value s));
  check_float "min tracks" 0.1 (tf (Srtt.min_rtt s))

let srtt_ewma_recurrence () =
  let s = Srtt.create ~alpha:0.9 () in
  Srtt.observe s (ts 0.1);
  Srtt.observe s (ts 0.2);
  check_float "one step" ((0.9 *. 0.1) +. (0.1 *. 0.2)) (tf (Srtt.value s));
  Srtt.observe s (ts 0.05);
  check_float "min updates" 0.05 (tf (Srtt.min_rtt s));
  check_bool "queueing delay positive" true (tf (Srtt.queueing_delay s) > 0.0)

let srtt_convergence () =
  let s = Srtt.create ~alpha:0.99 () in
  Srtt.observe s (ts 0.2);
  for _ = 1 to 2000 do
    Srtt.observe s (ts 0.1)
  done;
  Alcotest.(check (float 1e-3)) "converges to steady input" 0.1
    (tf (Srtt.value s));
  check_float "queueing delay ~ 0 at base"
    (tf (Srtt.value s) -. 0.1)
    (tf (Srtt.queueing_delay s))

let srtt_validation () =
  Alcotest.check_raises "bad alpha"
    (Invalid_argument "Srtt.create: alpha in [0,1)") (fun () ->
      ignore (Srtt.create ~alpha:1.0 ()));
  let s = Srtt.create () in
  Alcotest.check_raises "non-positive sample"
    (Invalid_argument "Srtt.observe: non-positive RTT") (fun () ->
      Srtt.observe s (ts 0.0))

let srtt_rejects_non_finite () =
  (* A NaN or infinite sample silently poisons the EWMA (and every
     probability derived from it) forever — it must be rejected loudly. *)
  let s = Srtt.create () in
  Alcotest.check_raises "nan"
    (Invalid_argument "Units.Time.s: NaN") (fun () ->
      Srtt.observe s (ts Float.nan));
  Alcotest.check_raises "infinity"
    (Invalid_argument "Srtt.observe: non-finite RTT") (fun () ->
      Srtt.observe s (ts Float.infinity));
  check_int "rejected samples are not counted" 0 (Srtt.samples s)

(* --- Pert_red ----------------------------------------------------------------- *)

let pert_red_probability_boundaries () =
  (* alpha 0 makes the EWMA follow the latest sample exactly, so the
     queueing delay (sample - min) is fully controlled. Default curve:
     t_min 5 ms, t_max 10 ms, p_max 0.05, saturating at 2*t_max. *)
  let e = Pert_red.create ~alpha:0.0 () in
  check_float "0 with no samples" 0.0 (pf (Pert_red.probability e));
  let s = Pert_red.srtt e in
  Srtt.observe s (ts 0.1);
  check_float "0 at base RTT" 0.0 (pf (Pert_red.probability e));
  Srtt.observe s (ts 0.105);
  check_float "0 at the t_min knee" 0.0 (pf (Pert_red.probability e));
  Srtt.observe s (ts 0.11);
  check_float "p_max at the t_max knee" 0.05 (pf (Pert_red.probability e));
  Srtt.observe s (ts 0.12);
  check_float "1 at 2*t_max" 1.0 (pf (Pert_red.probability e));
  Srtt.observe s (ts 5.0);
  check_float "clamped to 1 far beyond the curve" 1.0 (pf (Pert_red.probability e))

let pert_red_quiet_below_threshold () =
  let e = Pert_red.create () in
  (* Constant RTT: queueing delay 0, must never respond even with u = 0. *)
  for i = 0 to 999 do
    match Pert_red.on_ack e ~now:(0.01 *. float_of_int i) ~rtt:(ts 0.05) ~u:0.0 with
    | Pert_red.Hold -> ()
    | Pert_red.Early_response -> Alcotest.fail "responded below t_min"
  done;
  check_int "no responses" 0 (Pert_red.early_responses e)

let pert_red_responds_when_congested () =
  let e = Pert_red.create () in
  Pert_red.on_ack e ~now:0.0 ~rtt:(ts 0.05) ~u:1.0 |> ignore;
  (* Push the smoothed signal deep into the p=1 region. *)
  let responded = ref 0 in
  for i = 1 to 3000 do
    match
      Pert_red.on_ack e ~now:(0.001 *. float_of_int i) ~rtt:(ts 0.120) ~u:0.99
    with
    | Pert_red.Early_response -> incr responded
    | Pert_red.Hold -> ()
  done;
  check_bool "responded at least once" true (!responded > 0);
  check_bool "probability saturated" true (pf (Pert_red.probability e) > 0.9);
  check_int "counter matches" !responded (Pert_red.early_responses e)

let pert_red_once_per_rtt () =
  let e = Pert_red.create () in
  Pert_red.on_ack e ~now:0.0 ~rtt:(ts 0.05) ~u:1.0 |> ignore;
  (* Saturate the signal first. *)
  for i = 1 to 2000 do
    Pert_red.on_ack e ~now:(0.0001 *. float_of_int i) ~rtt:(ts 0.2) ~u:1.0 |> ignore
  done;
  let t0 = 0.2 in
  let responses = ref [] in
  for i = 0 to 999 do
    let now = t0 +. (0.001 *. float_of_int i) in
    match Pert_red.on_ack e ~now ~rtt:(ts 0.2) ~u:0.0 with
    | Pert_red.Early_response -> responses := now :: !responses
    | Pert_red.Hold -> ()
  done;
  let rec gaps = function
    | a :: (b :: _ as rest) ->
        check_bool "gap >= srtt" true (a -. b >= 0.15);
        gaps rest
    | _ -> ()
  in
  gaps !responses;
  check_bool "multiple spaced responses" true (List.length !responses >= 2)

let pert_red_note_loss_resets_clock () =
  let e = Pert_red.create () in
  Pert_red.on_ack e ~now:0.0 ~rtt:(ts 0.05) ~u:1.0 |> ignore;
  for i = 1 to 2000 do
    Pert_red.on_ack e ~now:(0.0001 *. float_of_int i) ~rtt:(ts 0.5) ~u:1.0 |> ignore
  done;
  Pert_red.note_loss e ~now:1.0;
  (match Pert_red.on_ack e ~now:1.01 ~rtt:(ts 0.5) ~u:0.0 with
  | Pert_red.Hold -> ()
  | Pert_red.Early_response -> Alcotest.fail "responded within an RTT of a loss");
  match Pert_red.on_ack e ~now:2.0 ~rtt:(ts 0.5) ~u:0.0 with
  | Pert_red.Early_response -> ()
  | Pert_red.Hold -> Alcotest.fail "should respond after the loss clock expires"

let pert_red_response_rate_matches_p () =
  (* Statistical calibration: at a steady queueing delay of 7.5 ms the
     curve gives p = 0.025 per ACK; with the limiter off, the measured
     response rate over 40k ACKs must match to within 20%. *)
  let e = Pert_red.create ~limit_per_rtt:false () in
  let rng = Sim_engine.Rng.create 77 in
  Pert_red.on_ack e ~now:0.0 ~rtt:(ts 0.05) ~u:1.0 |> ignore;
  (* settle the smoothed signal at base + 7.5 ms *)
  for i = 1 to 2000 do
    Pert_red.on_ack e ~now:(0.0001 *. float_of_int i) ~rtt:(ts 0.0575) ~u:1.0
    |> ignore
  done;
  let n = 40_000 and hits = ref 0 in
  for i = 0 to n - 1 do
    match
      Pert_red.on_ack e
        ~now:(0.3 +. (0.0001 *. float_of_int i))
        ~rtt:(ts 0.0575)
        ~u:(Sim_engine.Rng.float rng 1.0)
    with
    | Pert_red.Early_response -> incr hits
    | Pert_red.Hold -> ()
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check_bool "response rate ~ curve probability" true
    (rate > 0.02 && rate < 0.03)

let pert_red_unlimited_mode () =
  (* With the limiter off and p saturated, every ACK responds. *)
  let e = Pert_red.create ~limit_per_rtt:false () in
  Pert_red.on_ack e ~now:0.0 ~rtt:(ts 0.05) ~u:1.0 |> ignore;
  for i = 1 to 2000 do
    Pert_red.on_ack e ~now:(0.0001 *. float_of_int i) ~rtt:(ts 0.5) ~u:1.0 |> ignore
  done;
  let before = Pert_red.early_responses e in
  for i = 0 to 9 do
    Pert_red.on_ack e ~now:(0.3 +. (0.001 *. float_of_int i)) ~rtt:(ts 0.5) ~u:0.0
    |> ignore
  done;
  check_int "ten ACKs, ten responses" (before + 10) (Pert_red.early_responses e)

let pert_red_validation () =
  Alcotest.check_raises "bad decrease factor"
    (Invalid_argument "Pert_red.create: decrease_factor in (0,1)") (fun () ->
      ignore (Pert_red.create ~decrease_factor:1.0 ()));
  let e = Pert_red.create ~decrease_factor:0.35 () in
  check_float "decrease factor" 0.35 (Pert_red.decrease_factor e);
  check_float "probability before samples" 0.0 (pf (Pert_red.probability e))

(* --- Pert_rem ----------------------------------------------------------------- *)

let pert_rem_price_dynamics () =
  let e = Pert_rem.create ~params:Pert_rem.default_params () in
  Pert_rem.on_ack e ~now:0.0 ~rtt:(ts 0.05) ~u:1.0 |> ignore;
  check_float "zero price at base rtt" 0.0 (Pert_rem.price e);
  (* sustained queueing delay far above target: price integrates up *)
  for i = 1 to 3000 do
    Pert_rem.on_ack e ~now:(0.001 *. float_of_int i) ~rtt:(ts 0.15) ~u:1.0 |> ignore
  done;
  let high = Pert_rem.price e in
  check_bool "price grew" true (high > 0.0);
  check_bool "probability grew" true (pf (Pert_rem.probability e) > 0.1);
  (* back to base: price unwinds *)
  for i = 3001 to 9000 do
    Pert_rem.on_ack e ~now:(0.001 *. float_of_int i) ~rtt:(ts 0.05) ~u:1.0 |> ignore
  done;
  check_bool "price fell" true (Pert_rem.price e < high)

let pert_rem_responds () =
  let e = Pert_rem.create ~params:Pert_rem.default_params () in
  Pert_rem.on_ack e ~now:0.0 ~rtt:(ts 0.05) ~u:1.0 |> ignore;
  let responded = ref 0 in
  for i = 1 to 5000 do
    match
      Pert_rem.on_ack e ~now:(0.001 *. float_of_int i) ~rtt:(ts 0.2) ~u:0.5
    with
    | Pert_rem.Early_response -> incr responded
    | Pert_rem.Hold -> ()
  done;
  check_bool "responded" true (!responded > 0);
  check_int "counter matches" !responded (Pert_rem.early_responses e)

let pert_rem_validation () =
  Alcotest.check_raises "phi"
    (Invalid_argument "Pert_rem.create: phi must exceed 1") (fun () ->
      ignore
        (Pert_rem.create
           ~params:{ Pert_rem.default_params with Pert_rem.phi = 0.9 }
           ()))

(* --- Pert_avq ----------------------------------------------------------------- *)

let pert_avq_virtual_queue_dynamics () =
  let e = Pert_avq.create ~params:Pert_avq.default_params () in
  Pert_avq.on_ack e ~now:0.0 ~rtt:(ts 0.05) ~u:0.0 |> ignore;
  check_float "idle start" 0.0 (Pert_avq.virtual_backlog e);
  (* sustained queueing-delay growth: V accumulates *)
  for i = 1 to 500 do
    let rtt = 0.05 +. (0.0001 *. float_of_int i) in
    Pert_avq.on_ack e ~now:(0.002 *. float_of_int i) ~rtt:(ts rtt) ~u:0.0 |> ignore
  done;
  check_bool "virtual backlog grew or a response drained it" true
    (Pert_avq.virtual_backlog e > 0.0 || Pert_avq.early_responses e > 0)

let pert_avq_responds_and_resets () =
  let e = Pert_avq.create ~params:Pert_avq.default_params () in
  Pert_avq.on_ack e ~now:0.0 ~rtt:(ts 0.05) ~u:0.0 |> ignore;
  let responded = ref 0 in
  for i = 1 to 20000 do
    let rtt = 0.05 +. Float.min 0.05 (0.00001 *. float_of_int i) in
    match Pert_avq.on_ack e ~now:(0.001 *. float_of_int i) ~rtt:(ts rtt) ~u:0.0 with
    | Pert_avq.Early_response -> incr responded
    | Pert_avq.Hold -> ()
  done;
  check_bool "responded under sustained growth" true (!responded > 0);
  check_int "counter" !responded (Pert_avq.early_responses e)

let pert_avq_quiet_at_base () =
  let e = Pert_avq.create ~params:Pert_avq.default_params () in
  for i = 0 to 2000 do
    match Pert_avq.on_ack e ~now:(0.001 *. float_of_int i) ~rtt:(ts 0.05) ~u:0.0 with
    | Pert_avq.Early_response -> Alcotest.fail "responded with empty queue"
    | Pert_avq.Hold -> ()
  done;
  check_int "silent" 0 (Pert_avq.early_responses e)

let pert_avq_validation () =
  Alcotest.check_raises "gamma"
    (Invalid_argument "Pert_avq.create: gamma in (0,1]") (fun () ->
      ignore
        (Pert_avq.create
           ~params:{ Pert_avq.default_params with Pert_avq.gamma = 1.5 }
           ()))

(* --- Pert_pi ------------------------------------------------------------------ *)

let pi_gains_formula () =
  let g = Pert_pi.gains_of_pi ~k:2.0 ~m:4.0 ~delta:0.1 in
  check_float "gamma" ((2.0 /. 4.0) +. (2.0 *. 0.1 /. 2.0)) g.Pert_pi.gamma;
  check_float "beta" ((2.0 /. 4.0) -. (2.0 *. 0.1 /. 2.0)) g.Pert_pi.beta;
  check_bool "gamma > beta" true (g.Pert_pi.gamma > g.Pert_pi.beta)

let pi_probability_tracks_error () =
  let gains = { Pert_pi.gamma = 0.2; beta = 0.1 } in
  let e =
    Pert_pi.create ~gains ~target_delay:(ts 0.003) ~sample_interval:(ts 0.01) ()
  in
  Pert_pi.on_ack e ~now:0.0 ~rtt:(ts 0.05) ~u:1.0 |> ignore;
  (* Hold the queueing delay well above target: p must climb. *)
  for i = 1 to 500 do
    Pert_pi.on_ack e ~now:(0.01 *. float_of_int i) ~rtt:(ts 0.2) ~u:1.0 |> ignore
  done;
  check_bool "probability grew" true (pf (Pert_pi.probability e) > 0.1);
  (* Drop back to base RTT: integral unwinds, p falls. *)
  let p_high = pf (Pert_pi.probability e) in
  for i = 501 to 1500 do
    Pert_pi.on_ack e ~now:(0.01 *. float_of_int i) ~rtt:(ts 0.05) ~u:1.0 |> ignore
  done;
  check_bool "probability fell" true (pf (Pert_pi.probability e) < p_high)

let pi_probability_clamped () =
  let gains = { Pert_pi.gamma = 100.0; beta = 0.0 } in
  let e = Pert_pi.create ~gains ~target_delay:(ts 0.003) ~sample_interval:(ts 0.001) () in
  Pert_pi.on_ack e ~now:0.0 ~rtt:(ts 0.05) ~u:1.0 |> ignore;
  for i = 1 to 100 do
    Pert_pi.on_ack e ~now:(0.001 *. float_of_int i) ~rtt:(ts 1.0) ~u:1.0 |> ignore
  done;
  check_bool "clamped at 1" true (pf (Pert_pi.probability e) <= 1.0);
  let e2 = Pert_pi.create ~gains ~target_delay:(ts 0.5) ~sample_interval:(ts 0.001) () in
  for i = 0 to 100 do
    Pert_pi.on_ack e2 ~now:(0.001 *. float_of_int i) ~rtt:(ts 0.05) ~u:1.0 |> ignore
  done;
  check_float "clamped at 0" 0.0 (pf (Pert_pi.probability e2))

let pi_validation () =
  let gains = { Pert_pi.gamma = 0.1; beta = 0.05 } in
  Alcotest.check_raises "bad sample interval"
    (Invalid_argument "Pert_pi.create: sample_interval must be positive")
    (fun () ->
      ignore (Pert_pi.create ~gains ~target_delay:(ts 0.003) ~sample_interval:(ts 0.0) ()))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ curve_qcheck_monotone; curve_qcheck_bounded ]

let suite =
  [
    ("response curve anchors", `Quick, curve_anchor_points);
    ("response curve slope", `Quick, curve_slope);
    ("response curve validation", `Quick, curve_validation);
    ("srtt first sample", `Quick, srtt_first_sample);
    ("srtt ewma recurrence", `Quick, srtt_ewma_recurrence);
    ("srtt convergence", `Quick, srtt_convergence);
    ("srtt validation", `Quick, srtt_validation);
    ("srtt rejects non-finite", `Quick, srtt_rejects_non_finite);
    ("pert-red probability boundaries", `Quick, pert_red_probability_boundaries);
    ("pert-red quiet below threshold", `Quick, pert_red_quiet_below_threshold);
    ("pert-red responds when congested", `Quick, pert_red_responds_when_congested);
    ("pert-red once per RTT", `Quick, pert_red_once_per_rtt);
    ("pert-red loss resets clock", `Quick, pert_red_note_loss_resets_clock);
    ("pert-red unlimited mode", `Quick, pert_red_unlimited_mode);
    ("pert-red rate calibration", `Quick, pert_red_response_rate_matches_p);
    ("pert-red validation", `Quick, pert_red_validation);
    ("pert-rem price dynamics", `Quick, pert_rem_price_dynamics);
    ("pert-rem responds", `Quick, pert_rem_responds);
    ("pert-rem validation", `Quick, pert_rem_validation);
    ("pert-avq virtual queue", `Quick, pert_avq_virtual_queue_dynamics);
    ("pert-avq responds/resets", `Quick, pert_avq_responds_and_resets);
    ("pert-avq quiet at base", `Quick, pert_avq_quiet_at_base);
    ("pert-avq validation", `Quick, pert_avq_validation);
    ("pert-pi gains formula", `Quick, pi_gains_formula);
    ("pert-pi tracks error", `Quick, pi_probability_tracks_error);
    ("pert-pi clamped", `Quick, pi_probability_clamped);
    ("pert-pi validation", `Quick, pi_validation);
  ]
  @ qsuite
