(* End-to-end tests for tools/pertlint: each fixture in
   test/lint_fixtures violates exactly one rule at a documented line;
   pertlint (run as a subprocess on the fixture's .cmt) must flag exactly
   that line, and the allow_ok fixture must come out clean.

   The test runs from _build/default/test/lint, so the executable and the
   fixture .cmt files are reachable by relative path. *)

let exe = Filename.concat (Filename.concat ".." "..") "tools/pertlint/pertlint.exe"

let fixture_cmt modname =
  Printf.sprintf "../lint_fixtures/.lint_fixtures.objs/byte/lint_fixtures__%s.cmt"
    modname

(* Returns (exit_code, output_lines). *)
let run_pertlint args =
  let out = Filename.temp_file "pertlint" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1"
      (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  Sys.remove out;
  (code, lines)

let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* (rule, fixture module, source basename, expected 1-based line,
   --assume-scope needed to arm the rule on a fixture .cmt) *)
let bad_fixtures =
  [
    ("D1", "D1_bad", "d1_bad.ml", 4, "lib");
    ("D2", "D2_bad", "d2_bad.ml", 4, "lib");
    ("D3", "D3_bad", "d3_bad.ml", 4, "lib");
    ("N1", "N1_bad", "n1_bad.ml", 4, "lib");
    ("N2", "N2_bad", "n2_bad.ml", 4, "lib");
    ("H1", "H1_bad", "h1_bad.ml", 4, "lib");
    ("M1", "M1_bad", "m1_bad.ml", 1, "lib");
    ("U1", "U1_bad", "u1_bad.ml", 4, "lib");
    ("U2", "U2_bad", "u2_bad.ml", 4, "lib");
    ("U3", "U3_bad", "u3_bad.ml", 8, "lib");
    ("N3", "N3_bad", "n3_bad.ml", 4, "lib");
    ("P1", "P1_bad", "p1_bad.ml", 4, "lib");
    ("R1", "R1_bad", "r1_bad.ml", 4, "lib");
    ("W1", "W1_bad", "w1_bad.ml", 4, "lib/tcp");
  ]

let rule_fires (rule, modname, src, line, scope) () =
  let code, lines =
    run_pertlint [ "--rules"; rule; "--assume-scope"; scope; fixture_cmt modname ]
  in
  check_int (rule ^ " exit code") 1 code;
  let tagged =
    List.filter (fun l -> contains_sub l (Printf.sprintf "[%s]" rule)) lines
  in
  check_int (rule ^ " fires exactly once") 1 (List.length tagged);
  check_bool
    (Printf.sprintf "%s flagged at %s:%d" rule src line)
    true
    (List.for_all
       (fun l -> contains_sub l (Printf.sprintf "%s:%d:" src line))
       tagged)

(* The same fixtures contain no violation of any *other* expression-level
   rule: with the fixture's own rule (and M1, which fires on every
   mli-less fixture) disabled, pertlint must exit clean. Runs under the
   widest scope (lib/tcp implies lib), so e.g. the W1 fixture's int
   window would be caught if any other fixture leaked one. *)
let rule_isolated (rule, modname, _, _, _) () =
  let others =
    List.filter
      (fun r -> r <> rule && r <> "M1")
      (List.map (fun (r, _, _, _, _) -> r) bad_fixtures)
  in
  let code, lines =
    run_pertlint
      [
        "--rules"; String.concat "," others;
        "--assume-scope"; "lib/tcp";
        fixture_cmt modname;
      ]
  in
  check_int (rule ^ " no cross-rule noise: exit") 0 code;
  check_int (rule ^ " no cross-rule noise: output") 0 (List.length lines)

let allow_suppresses () =
  let code, lines =
    run_pertlint [ "--assume-scope"; "lib"; fixture_cmt "Allow_ok" ]
  in
  check_int "allow_ok exit code" 0 code;
  check_int "allow_ok diagnostics" 0 (List.length lines)

let stats_table () =
  let code, lines =
    run_pertlint
      [ "--stats"; "--assume-scope"; "lib"; fixture_cmt "Allow_ok" ]
  in
  check_int "stats exit code" 0 code;
  check_bool "stats prints a total line" true
    (List.exists (fun l -> contains_sub l "total: 0 violation(s)") lines)

let json_format () =
  let code, lines =
    run_pertlint
      [ "--format"; "json"; "--rules"; "N1"; "--assume-scope"; "lib";
        fixture_cmt "N1_bad" ]
  in
  check_int "json exit code" 1 code;
  let joined = String.concat "" lines in
  check_bool "json rule field" true (contains_sub joined "\"rule\": \"N1\"");
  check_bool "json line field" true (contains_sub joined "\"line\": 4");
  check_bool "json severity field" true
    (contains_sub joined "\"severity\": \"error\"");
  (* A clean scan must still print a valid (empty) JSON array. *)
  let code, lines =
    run_pertlint
      [ "--format"; "json"; "--assume-scope"; "lib"; fixture_cmt "Allow_ok" ]
  in
  check_int "clean json exit code" 0 code;
  check_bool "clean scan prints []" true
    (List.exists (fun l -> String.trim l = "[]") lines)

let unknown_rule_rejected () =
  let code, _ = run_pertlint [ "--rules"; "BOGUS"; fixture_cmt "Allow_ok" ] in
  check_int "unknown rule exit code" 2 code

let () =
  let fires =
    List.map
      (fun ((rule, _, _, _, _) as fx) ->
        (Printf.sprintf "%s fires at documented line" rule, `Quick, rule_fires fx))
      bad_fixtures
  in
  let isolated =
    List.map
      (fun ((rule, _, _, _, _) as fx) ->
        (Printf.sprintf "%s fixture is clean for other rules" rule, `Quick,
         rule_isolated fx))
      bad_fixtures
  in
  Alcotest.run "pertlint"
    [
      ("rule firing", fires);
      ("rule isolation", isolated);
      ( "suppression",
        [
          ("[@lint.allow] suppresses every rule", `Quick, allow_suppresses);
          ("--stats prints the summary table", `Quick, stats_table);
          ("--format=json emits a findings array", `Quick, json_format);
          ("unknown --rules id is rejected", `Quick, unknown_rule_rejected);
        ] );
    ]
