(* Tests for the fault-injection layer (Netsim.Fault): spec validation,
   deterministic replay, outage accounting, packet conservation under
   impairment (via the audit), reordering tolerance of SACK, and the
   graceful-degradation bar (PERT >= SACK under non-congestive loss). *)

module Sim = Sim_engine.Sim
module Audit = Sim_engine.Audit
module T = Netsim.Topology
module Link = Netsim.Link
module Fault = Netsim.Fault
module Flow = Tcpstack.Flow
module D = Experiments.Dumbbell

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ts = Units.Time.s
let pv = Units.Prob.v

(* --- spec validation ---------------------------------------------------------- *)

let mini_link ?(seed = 3) () =
  let sim = Sim.create ~seed () in
  let topo = T.create sim in
  let a = T.add_node topo and b = T.add_node topo in
  let link =
    T.add_link topo ~src:a ~dst:b ~bandwidth:(Units.Rate.bps 10e6) ~delay:(ts 0.01)
      ~disc:(Netsim.Droptail.create ~limit_pkts:100)
  in
  (sim, link)

let spec_validation () =
  let _, link = mini_link () in
  let reject msg spec =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Fault.attach spec link))
  in
  (* out-of-range and NaN probabilities are unrepresentable now: the
     [Units.Prob.v] smart constructor clamps the former and rejects the
     latter before a spec can even be built *)
  Alcotest.check_raises "NaN probability rejected at construction"
    (Invalid_argument "Units.Prob.v: NaN") (fun () ->
      ignore (Fault.lossy (pv Float.nan)));
  check_bool "overrange probability clamps to 1" true
    (Float.equal (Units.Prob.to_float (pv 1.5)) 1.0);
  reject "Fault: negative reorder_extra"
    { Fault.none with Fault.reorder_extra = ts (-1.0) };
  reject "Fault: outage windows need 0 <= down_at < up_at"
    { Fault.none with Fault.outages = Fault.Scheduled [ (ts 2.0, ts 1.0) ] };
  reject "Fault: flapping means must be positive"
    {
      Fault.none with
      Fault.outages = Fault.Flapping { mean_up = ts 0.0; mean_down = ts 1.0 };
    };
  (* the identity spec attaches cleanly and impairs nothing *)
  let f = Fault.attach Fault.none link in
  check_int "nothing lost" 0 (Fault.lost f)

let scheduled_outage_accounting () =
  let sim, link = mini_link () in
  let f =
    Fault.attach
      {
        Fault.none with
        Fault.outages = Fault.Scheduled [ (ts 1.0, ts 1.5); (ts 3.0, ts 4.0) ];
      }
      link
  in
  Sim.run ~until:(ts 1.2) sim;
  check_bool "down inside the window" false (Link.is_up link);
  Sim.run ~until:(ts 2.0) sim;
  check_bool "back up between windows" true (Link.is_up link);
  Sim.run ~until:(ts 5.0) sim;
  let s = Fault.stats f in
  check_int "two down + two up transitions" 4 s.Fault.transitions;
  Alcotest.(check (float 1e-9)) "downtime is the window total" 1.5
    s.Fault.downtime

(* --- dumbbell integration ------------------------------------------------------ *)

let small_config ?fault ?(scheme = Experiments.Schemes.Pert) () =
  D.uniform_flows
    {
      D.default with
      D.scheme;
      bandwidth = 10e6;
      duration = 12.0;
      warmup = 3.0;
      seed = 11;
      fault;
    }
    ~n:4

let run config =
  let built = D.build config in
  let sim = T.sim built.D.topo in
  Sim.run ~until:(ts config.D.warmup) sim;
  D.reset built;
  Sim.run ~until:(ts config.D.duration) sim;
  (built, D.measure built)

let check_links_conserve built =
  List.iter
    (fun l ->
      match Link.conservation_error l with
      | None -> ()
      | Some msg -> Alcotest.fail (Link.name l ^ ": " ^ msg))
    (T.links built.D.topo)

let deterministic_replay () =
  (* Same seed, same spec: the whole impaired run — drop schedule, outage
     schedule, goodputs — must replay bit-for-bit. *)
  let spec =
    {
      (Fault.lossy (pv 0.02)) with
      Fault.reorder_prob = pv 0.05;
      reorder_extra = ts 2e-3;
      dup_prob = pv 0.01;
      outages = Fault.Flapping { mean_up = ts 3.0; mean_down = ts 0.2 };
    }
  in
  let once () =
    let built, r = run (small_config ~fault:spec ()) in
    match built.D.fault with
    | Some f -> (Fault.stats f, r.D.per_flow_goodput)
    | None -> Alcotest.fail "no fault handle on built dumbbell"
  in
  let s1, g1 = once () in
  let s2, g2 = once () in
  check_bool "identical fault stats" true (s1 = s2);
  check_bool "identical per-flow goodputs" true (g1 = g2);
  check_bool "impairments actually fired" true
    (s1.Fault.wire_drops > 0 && s1.Fault.transitions > 0)

let conservation_on_clean_dumbbell () =
  let built, r = run (small_config ()) in
  check_int "no audit violations" 0 r.D.audit_violations;
  check_links_conserve built

let conservation_under_impairment () =
  (* Loss, corruption, duplication and outages all bend the packet flow;
     none may break per-link conservation or any flow invariant. *)
  let spec =
    {
      (Fault.lossy (pv 0.05)) with
      Fault.corrupt_prob = pv 0.01;
      dup_prob = pv 0.02;
      outages = Fault.Scheduled [ (ts 4.0, ts 5.0); (ts 7.0, ts 7.5) ];
    }
  in
  let built, r = run (small_config ~fault:spec ()) in
  check_int "no audit violations" 0 r.D.audit_violations;
  check_links_conserve built;
  match built.D.fault with
  | Some f -> check_bool "fault removed packets" true (Fault.lost f > 0)
  | None -> Alcotest.fail "no fault handle"

(* --- reordering tolerance ------------------------------------------------------ *)

let sack_tolerates_mild_reordering () =
  (* Extra delay under ~2 serialization times displaces a packet by at
     most 2 positions — below the 3-dupack threshold — so SACK must
     deliver everything with zero retransmissions and zero loss events. *)
  let sim = Sim.create ~seed:11 () in
  let topo = T.create sim in
  let src = T.add_node topo and dst = T.add_node topo in
  let disc () = Netsim.Droptail.create ~limit_pkts:1000 in
  let fwd =
    T.add_link topo ~src ~dst ~bandwidth:(Units.Rate.bps 10e6) ~delay:(ts 0.01) ~disc:(disc ())
  in
  ignore
    (T.add_link topo ~src:dst ~dst:src ~bandwidth:(Units.Rate.bps 10e6) ~delay:(ts 0.01)
       ~disc:(disc ()));
  T.compute_routes topo;
  let f =
    Fault.attach
      { Fault.none with Fault.reorder_prob = pv 0.05; reorder_extra = ts 2e-3 }
      fwd
  in
  let flow =
    Flow.create topo ~src ~dst ~cc:(Tcpstack.Cc.newreno ()) ~total_pkts:400 ()
  in
  Sim.run ~until:(ts 60.0) sim;
  check_bool "completed" true (Flow.completed flow);
  check_int "all data acked exactly once" 400 (Flow.acked_pkts flow);
  check_bool "packets really were delayed out of order" true
    ((Fault.stats f).Fault.reordered > 10);
  check_int "no spurious retransmissions" 0 (Flow.retransmissions flow);
  check_int "no loss events" 0 (Flow.loss_events flow)

(* --- graceful degradation ------------------------------------------------------ *)

let pert_holds_goodput_under_wire_loss () =
  (* The robustness bar from the paper's Section 7 argument: with 1%
     non-congestive loss polluting both signals, PERT's aggregate goodput
     must not fall below plain SACK's. *)
  let goodput scheme =
    let built, r = run (small_config ~fault:(Fault.lossy (pv 0.01)) ~scheme ()) in
    check_int "no audit violations" 0 r.D.audit_violations;
    ignore built;
    Array.fold_left
      (fun acc g -> acc +. Units.Rate.to_bps g)
      0.0 r.D.per_flow_goodput
  in
  let pert = goodput Experiments.Schemes.Pert in
  let sack = goodput Experiments.Schemes.Sack_droptail in
  check_bool "sack still moves data" true (sack > 1e6);
  check_bool "pert >= sack at 1% wire loss" true (pert >= sack)

let suite =
  [
    ("spec validation", `Quick, spec_validation);
    ("scheduled outage accounting", `Quick, scheduled_outage_accounting);
    ("deterministic replay", `Quick, deterministic_replay);
    ("conservation on clean dumbbell", `Quick, conservation_on_clean_dumbbell);
    ("conservation under impairment", `Quick, conservation_under_impairment);
    ("sack tolerates mild reordering", `Quick, sack_tolerates_mild_reordering);
    ("pert >= sack under wire loss", `Quick, pert_holds_goodput_under_wire_loss);
  ]
