(* Tests for the fluid models: the DDE integrator against analytic
   solutions, the stability theorems against the paper's numbers, and the
   three closed-loop models against their equilibria. *)

open Fluid

let check_float_eps eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)

(* --- Dde ------------------------------------------------------------------- *)

let dde_exponential_decay () =
  (* x' = -x, x(0) = 1: RK4 at dt=1e-3 should match e^{-t} very closely. *)
  let f _t x _hist = [| -.x.(0) |] in
  let times, series =
    Dde.integrate ~f ~init:[| 1.0 |] ~t0:0.0 ~t1:2.0 ~dt:1e-3 ()
  in
  let n = Array.length times in
  check_float_eps 1e-6 "matches analytic" (exp (-2.0)) series.(0).(n - 1)

let dde_harmonic_oscillator () =
  (* x'' = -x as a 2-d system: energy must be conserved by RK4. *)
  let f _t x _ = [| x.(1); -.x.(0) |] in
  let _times, series =
    Dde.integrate ~f ~init:[| 1.0; 0.0 |] ~t0:0.0 ~t1:10.0 ~dt:1e-3 ()
  in
  let n = Array.length series.(0) in
  let energy i = (series.(0).(i) ** 2.0) +. (series.(1).(i) ** 2.0) in
  check_float_eps 1e-6 "energy conserved" (energy 0) (energy (n - 1))

let dde_delay_term () =
  (* x'(t) = -x(t - 1) with x == 1 for t <= 0.
     On (0, 1]: x(t) = 1 - t exactly. *)
  let f t _x hist = [| -.(hist 0 (t -. 1.0)) |] in
  let times, series =
    Dde.integrate ~f ~init:[| 1.0 |] ~t0:0.0 ~t1:1.0 ~dt:1e-3 ()
  in
  let n = Array.length times in
  check_float_eps 1e-6 "linear on first interval" 0.0 series.(0).(n - 1);
  (* and on (1, 2]: x(t) = 1 - t + (t-1)^2/2, so x(2) = -1 + 1/2. *)
  let _times, series2 =
    Dde.integrate ~f ~init:[| 1.0 |] ~t0:0.0 ~t1:2.0 ~dt:1e-3 ()
  in
  let m = Array.length series2.(0) in
  check_float_eps 1e-5 "quadratic on second interval" (-0.5) series2.(0).(m - 1)

let dde_euler_consistent () =
  let f _t x _ = [| -.x.(0) |] in
  let _t1, s_rk = Dde.integrate ~f ~init:[| 1.0 |] ~t0:0.0 ~t1:1.0 ~dt:1e-3 () in
  let _t2, s_eu = Dde.euler ~f ~init:[| 1.0 |] ~t0:0.0 ~t1:1.0 ~dt:1e-4 () in
  let last a = a.(Array.length a - 1) in
  check_float_eps 1e-3 "euler approaches rk4" (last s_rk.(0)) (last s_eu.(0))

let dde_record_every () =
  let f _t _x _ = [| 1.0 |] in
  let times, series =
    Dde.integrate ~f ~init:[| 0.0 |] ~t0:0.0 ~t1:1.0 ~dt:0.01 ~record_every:10 ()
  in
  check_bool "10x fewer samples" true (Array.length times <= 12);
  let n = Array.length times in
  check_float_eps 1e-9 "x = t" times.(n - 1) series.(0).(n - 1)

let dde_validation () =
  let f _t x _ = [| -.x.(0) |] in
  Alcotest.check_raises "bad dt" (Invalid_argument "Dde: dt must be positive")
    (fun () ->
      ignore (Dde.integrate ~f ~init:[| 1.0 |] ~t0:0.0 ~t1:1.0 ~dt:0.0 ()));
  Alcotest.check_raises "bad horizon"
    (Invalid_argument "Dde: t1 must exceed t0") (fun () ->
      ignore (Dde.integrate ~f ~init:[| 1.0 |] ~t0:1.0 ~t1:1.0 ~dt:0.1 ()))

(* --- Stability -------------------------------------------------------------- *)

let stability_k_of () =
  check_float_eps 1e-9 "K = ln(alpha)/delta" (log 0.99 /. 1e-4)
    (Stability.k_of ~alpha:0.99 ~delta:1e-4)

let stability_w_g () =
  (* both arms of the min *)
  check_float_eps 1e-12 "window-limited arm"
    (0.1 *. (2.0 *. 5.0 /. (0.1 *. 0.1 *. 10000.0)))
    (Stability.w_g ~c:10000.0 ~n_min:5.0 ~r_plus:0.1);
  check_float_eps 1e-12 "rtt-limited arm" (0.1 /. 0.1)
    (Stability.w_g ~c:1.0 ~n_min:100.0 ~r_plus:0.1)

let theorem1_boundary_at_paper_point () =
  (* Section 5.3: C = 100 pkt/s, N = 5, L = 2, boundary at R = 171 ms. *)
  let k = Stability.k_of ~alpha:0.99 ~delta:1e-4 in
  check_bool "stable inside" true
    (Stability.theorem1_holds ~l_pert:2.0 ~c:100.0 ~n_min:5.0 ~r_plus:0.170 ~k);
  check_bool "unstable outside" false
    (Stability.theorem1_holds ~l_pert:2.0 ~c:100.0 ~n_min:5.0 ~r_plus:0.172 ~k)

let delta_min_paper_curve () =
  (* Fig 13(a): C = 1000 pkt/s, R+ = 200 ms — reaches ~0.1 s at N- = 40. *)
  let d n = Stability.delta_min ~alpha:0.99 ~l_pert:2.0 ~c:1000.0 ~n_min:n ~r_plus:0.2 in
  check_bool "monotone decreasing" true (d 5.0 > d 10.0 && d 10.0 > d 40.0);
  check_float_eps 0.03 "~0.1 s at N=40" 0.115 (d 40.0);
  (* Large enough N satisfies (11) outright: delta_min = 0. *)
  check_float_eps 1e-12 "unconditional region" 0.0 (d 500.0)

let equilibrium_formulas () =
  let w, p = Stability.equilibrium ~c:100.0 ~n:5.0 ~r:0.1 in
  check_float_eps 1e-9 "W* = RC/N" 2.0 w;
  check_float_eps 1e-9 "p* = 2/W*^2" 0.5 p

let pi_gains_relations () =
  let g = Stability.pert_pi_gains ~c:1000.0 ~n_min:10.0 ~r_plus:0.1 ~r_star:0.08 in
  check_bool "positive gains" true (g.Stability.k > 0.0 && g.Stability.m > 0.0);
  check_float_eps 1e-12 "m = 2N/(R^2 C)" (2.0 *. 10.0 /. (0.01 *. 1000.0)) g.Stability.m;
  let gr = Stability.router_pi_gains ~c:1000.0 ~n_min:10.0 ~r_plus:0.1 ~r_star:0.08 in
  check_float_eps 1e-12 "router k = pert k / C" (g.Stability.k /. 1000.0) gr.Stability.k;
  check_float_eps 1e-12 "same zero m" g.Stability.m gr.Stability.m

(* --- Pert_fluid -------------------------------------------------------------- *)

let pert_fluid_converges_inside () =
  let p = Pert_fluid.paper_params ~r:0.1 () in
  let _times, series = Pert_fluid.run p ~horizon:60.0 ~dt:0.001 ~record_every:100 () in
  let w_star, tq_star, _ = Pert_fluid.equilibrium p in
  let last a = a.(Array.length a - 1) in
  check_float_eps 0.02 "W -> W*" w_star (last series.(0));
  check_float_eps 0.02 "Tq -> Tq*" tq_star (last series.(1));
  check_bool "verdict stable" true (Pert_fluid.is_stable_trajectory series.(0))

let pert_fluid_oscillates_outside () =
  let p = Pert_fluid.paper_params ~r:0.180 () in
  let _times, series = Pert_fluid.run p ~horizon:60.0 ~dt:0.001 ~record_every:100 () in
  check_bool "verdict oscillating" false
    (Pert_fluid.is_stable_trajectory series.(0))

let pert_fluid_equilibrium_formula () =
  let p = Pert_fluid.paper_params ~r:0.1 () in
  let w, tq, prob = Pert_fluid.equilibrium p in
  check_float_eps 1e-9 "W*" 2.0 w;
  check_float_eps 1e-9 "p*" 0.5 prob;
  check_float_eps 1e-9 "Tq* inverts the curve" (0.05 +. (0.5 /. 2.0)) tq

(* --- Red_fluid ----------------------------------------------------------------- *)

let red_fluid_matches_pert_scaling () =
  let pp = Pert_fluid.paper_params () in
  let rp = Red_fluid.matched_to_pert pp in
  check_float_eps 1e-12 "slope scaled by C"
    (pp.Pert_fluid.l_pert /. pp.Pert_fluid.c)
    rp.Red_fluid.l_red;
  check_float_eps 1e-12 "threshold scaled by C"
    (pp.Pert_fluid.t_min *. pp.Pert_fluid.c)
    rp.Red_fluid.min_th;
  let w_red, q_red, p_red = Red_fluid.equilibrium rp in
  let w_pert, tq_pert, p_pert = Pert_fluid.equilibrium pp in
  check_float_eps 1e-9 "same window" w_pert w_red;
  check_float_eps 1e-9 "same probability" p_pert p_red;
  check_float_eps 1e-9 "queue = delay * C" (tq_pert *. pp.Pert_fluid.c) q_red

let red_fluid_converges () =
  let rp = Red_fluid.matched_to_pert (Pert_fluid.paper_params ~r:0.1 ()) in
  let _times, series = Red_fluid.run rp ~horizon:60.0 ~dt:0.001 ~record_every:100 () in
  let w_star, q_star, _ = Red_fluid.equilibrium rp in
  let last a = a.(Array.length a - 1) in
  check_float_eps 0.05 "W -> W*" w_star (last series.(0));
  check_float_eps 1.0 "q -> q*" q_star (last series.(1))

(* --- Pi_fluid ------------------------------------------------------------------- *)

let pi_fluid_pins_target () =
  let p = Pi_fluid.make ~c:1000.0 ~n:10.0 ~r:0.1 ~tq_ref:0.003 () in
  let _times, series =
    Pi_fluid.run p ~init:[| 5.0; 0.01; 0.0 |] ~horizon:200.0 ~dt:0.0005
      ~record_every:200 ()
  in
  (* The saturating controller leaves a small limit cycle around the
     operating point, so compare tail averages, not endpoints. *)
  let tail_mean a =
    let n = Array.length a in
    let start = (3 * n) / 4 in
    let sum = ref 0.0 in
    for i = start to n - 1 do
      sum := !sum +. a.(i)
    done;
    !sum /. float_of_int (n - start)
  in
  let w_star, tq_star, _ = Pi_fluid.equilibrium p in
  check_float_eps 0.5 "W near RC/N" w_star (tail_mean series.(0));
  check_float_eps 0.002 "Tq pinned at target" tq_star (tail_mean series.(1))

let stability_region_claims () =
  let l_pert = 2.0 and n = 10.0 in
  List.iter
    (fun c ->
      let kp = Stability.pert_k ~alpha:0.99 ~c ~n in
      let kr = Stability.red_k ~wq:0.01 ~c in
      let bp =
        Stability.boundary_r
          ~holds:(fun r ->
            Stability.theorem1_holds ~l_pert ~c ~n_min:n ~r_plus:r ~k:kp)
          ()
      in
      let br =
        Stability.boundary_r
          ~holds:(fun r ->
            Stability.red_theorem_holds ~l_red:(l_pert /. c) ~c ~n_min:n
              ~r_plus:r ~k:kr)
          ()
      in
      check_bool "PERT region contains RED region" true (bp >= br))
    [ 100.0; 1000.0; 10000.0 ];
  (* eq. 15: constant C/N makes PERT's boundary capacity-independent *)
  let boundary c =
    let n = c /. 10.0 in
    let kp = Stability.pert_k ~alpha:0.99 ~c ~n in
    Stability.boundary_r
      ~holds:(fun r ->
        Stability.theorem1_holds ~l_pert ~c ~n_min:n ~r_plus:r ~k:kp)
      ()
  in
  check_float_eps 1e-3 "scale invariant" (boundary 100.0) (boundary 10000.0)

let dde_custom_initial_history () =
  (* x'(t) = -x(t-1) with history x(t) = 0 for t <= 0: x stays 0 for one
     unit, then is driven by the recorded trajectory (still 0). *)
  let f t _x hist = [| -.(hist 0 (t -. 1.0)) |] in
  let _times, series =
    Dde.integrate ~f ~init:[| 0.0 |] ~initial_history:(fun _ _ -> 0.0)
      ~t0:0.0 ~t1:3.0 ~dt:0.001 ()
  in
  let n = Array.length series.(0) in
  check_float_eps 1e-9 "stays at rest" 0.0 series.(0).(n - 1)

let boundary_r_unstable_everywhere () =
  check_float_eps 1e-12 "returns lo when even lo fails" 0.001
    (Stability.boundary_r ~holds:(fun _ -> false) ())

let suite =
  [
    ("dde exponential decay", `Quick, dde_exponential_decay);
    ("dde harmonic oscillator", `Quick, dde_harmonic_oscillator);
    ("dde delay term analytic", `Quick, dde_delay_term);
    ("dde euler consistency", `Quick, dde_euler_consistent);
    ("dde record_every", `Quick, dde_record_every);
    ("dde validation", `Quick, dde_validation);
    ("stability k_of", `Quick, stability_k_of);
    ("stability w_g arms", `Quick, stability_w_g);
    ("theorem 1 boundary (paper)", `Quick, theorem1_boundary_at_paper_point);
    ("delta_min curve (fig 13a)", `Quick, delta_min_paper_curve);
    ("equilibrium formulas", `Quick, equilibrium_formulas);
    ("pi gains relations", `Quick, pi_gains_relations);
    ("pert fluid converges", `Quick, pert_fluid_converges_inside);
    ("pert fluid oscillates", `Quick, pert_fluid_oscillates_outside);
    ("pert fluid equilibrium", `Quick, pert_fluid_equilibrium_formula);
    ("red fluid scaling", `Quick, red_fluid_matches_pert_scaling);
    ("red fluid converges", `Quick, red_fluid_converges);
    ("pi fluid pins target", `Quick, pi_fluid_pins_target);
    ("stability region claims (5.4)", `Quick, stability_region_claims);
    ("dde custom history", `Quick, dde_custom_initial_history);
    ("boundary_r degenerate", `Quick, boundary_r_unstable_everywhere);
  ]
