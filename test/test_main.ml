let () =
  Alcotest.run "pert"
    [
      ("units", Test_units.suite);
      ("engine", Test_engine.suite);
      ("core", Test_core.suite);
      ("net", Test_net.suite);
      ("tcp", Test_tcp.suite);
      ("tcp-hardening", Test_tcp_hardening.suite);
      ("faults", Test_faults.suite);
      ("predictors", Test_predictors.suite);
      ("fluid", Test_fluid.suite);
      ("traffic", Test_traffic.suite);
      ("parallel", Test_parallel.suite);
      ("runner", Test_runner.suite);
      ("experiments", Test_experiments.suite);
      ("determinism", Test_determinism.suite);
      ("scenario", Test_scenario.suite);
    ]
