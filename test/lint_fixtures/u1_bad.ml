(* Fixture for pertlint rule U1: a unit-suffixed name bound as a raw
   float in (assumed) lib scope. The violation must stay on line 4 —
   test/lint asserts it. *)
let delay_s = 0.005

(* Not a violation: a unit-ish suffix on a non-float is fine. *)
let count_pkts : int = 3

(* Not a violation: no unit suffix. *)
let alpha = 0.99
