(* Fixture for pertlint rule M1: a module with no .mli. The violation is
   file-level and reported at line 1 — test/lint asserts it. *)

let answer = 42
