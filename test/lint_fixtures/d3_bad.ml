(* Fixture for pertlint rule D3: module-toplevel mutable state. The
   violation must stay on line 4 — test/lint asserts it. *)

let counter = ref 0
let bump () = incr counter

(* Not a violation: the ref is minted per call, inside a constructor. *)
let fresh_counter () = ref 0
