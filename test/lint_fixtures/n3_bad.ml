(* Fixture for pertlint rule N3: raw float->int truncation in (assumed)
   lib scope, outside Units.Round. The violation must stay on line 4 —
   test/lint asserts it. *)
let chunk x = truncate x

(* Not a violation: integer arithmetic involves no rounding decision. *)
let half n = n / 2
