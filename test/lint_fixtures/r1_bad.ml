(* Fixture for pertlint rule R1: blocking/process-control call in
   (assumed) lib scope. The violation must stay on line 4 — test/lint
   asserts it. *)
let nap () = Unix.sleep 1
