(* Fixture for pertlint rule H1: catch-all exception handler. The
   violation must stay on line 4 — test/lint asserts it. *)

let safe_div a b = try a / b with _ -> 0

(* Not a violation: a specific exception is matched. *)
let safe_div' a b = try a / b with Division_by_zero -> 0
