(* Fixture for pertlint rule D2: wall-clock read in (assumed) lib scope.
   The violation must stay on line 4 — test/lint asserts it. *)

let now () = Unix.gettimeofday ()
