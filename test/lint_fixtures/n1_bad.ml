(* Fixture for pertlint rule N1: structural equality on floats. The
   violation must stay on line 4 — test/lint asserts it. *)

let is_unset (x : float) = x = 0.0

(* Not a violation: integer equality is exact. *)
let is_zero (n : int) = n = 0

(* Not a violation: Float.equal is the NaN-aware primitive. *)
let same (a : float) (b : float) = Float.equal a b
