(* Fixture for pertlint rule P1: concurrency primitive in (assumed) lib
   scope outside lib/parallel. The violation must stay on line 4 —
   test/lint asserts it. *)
let jobs () = Domain.recommended_domain_count ()
