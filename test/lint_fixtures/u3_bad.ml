(* Fixture for pertlint rule U3: bare truncation of a unit-suffixed
   value. The violation must stay on line 8 — test/lint asserts it.
   U1 (the raw-float binding) and N3 (any lib/ truncation) also fire on
   this file by design; they are file-allowed so the fixture isolates
   U3. *)
[@@@lint.allow "U1 N3"]

let ticks timeout_ms = int_of_float timeout_ms

(* Not a violation (for U3): the operand carries no unit suffix. *)
let whole x = int_of_float x
