(* Fixture for pertlint rule W1: a window-named binding typed as raw int
   in (assumed) lib/tcp scope. The violation must stay on line 4 —
   test/lint asserts it. *)
let rcv_wnd : int = 65535

(* Not a violation: a window name on a non-int is fine (the point of the
   rule is to push window quantities into Tcp_window's typed API). *)
let cwnd : float = 10.0

(* Not a violation: composite names only mention a window. *)
let wnd_scale : int = 7
let window_probes : int = 0
