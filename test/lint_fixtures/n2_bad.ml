(* Fixture for pertlint rule N2: Obj.magic. The violation must stay on
   line 4 — test/lint asserts it. *)

let coerce (n : int) : bool = Obj.magic n
