(* Fixture for pertlint rule D1: ambient randomness outside the Rng
   module. The violation must stay on line 4 — test/lint asserts it. *)

let draw () = Random.int 10
