(* Fixture for pertlint rule U2: an inline probability decision made by
   comparing a raw Rng draw against a bare float. Violation on line 4. *)
module Rng = struct let float _state bound = bound *. 0.5 end
let decide state p = Rng.float state 1.0 < p

(* Not a violation: ordering two plain floats is not a Bernoulli trial. *)
let ordered (a : float) (b : float) = a < b
