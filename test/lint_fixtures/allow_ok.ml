(* Fixture for pertlint suppression: every rule is violated here, and
   every violation carries a [@lint.allow "<rule>"] attribute (or the
   file-level [@@@lint.allow] for M1, which has no expression to attach
   to). test/lint runs pertlint with all rules on and expects a clean
   exit. *)

[@@@lint.allow "M1"]

let draw () = (Random.int 10 [@lint.allow "D1"])
let now () = (Unix.gettimeofday () [@lint.allow "D2"])
let[@lint.allow "D3"] counter = ref 0
(* For infix operators the attribute must sit on the parenthesized
   application, not the right operand: [(x = 0.0) [@lint.allow "N1"]]. *)
let is_unset (x : float) = (x = 0.0) [@lint.allow "N1"]
let coerce (n : int) : bool = (Obj.magic n [@lint.allow "N2"])
let safe_div a b = (try a / b with _ -> 0) [@lint.allow "H1"]

(* The unit-flow rules follow the same pattern. *)
module Rng = struct let float _state bound = bound *. 0.5 end

let[@lint.allow "U1"] delay_s = 0.25
let bernoulli state p = (Rng.float state 1.0 < p) [@lint.allow "U2"]
let ticks = (int_of_float delay_s) [@lint.allow "U3 N3"]
let cores () = (Domain.recommended_domain_count () [@lint.allow "P1"])
let nap () = (Unix.sleep 0 [@lint.allow "R1"])
