(* The Parallel work-queue pool: submission-order results, worker
   exception propagation with the failing task's index, and end-to-end
   bit-identity of experiment tables across pool widths — the property
   the whole -j flag rests on. *)

open Experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let map_matches_sequential () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let xs = List.init n (fun i -> i) in
          let expected = List.map (fun i -> (i * i) + 1) xs in
          let got = Parallel.map ~jobs (fun i -> (i * i) + 1) xs in
          Alcotest.(check (list int))
            (Printf.sprintf "map at jobs=%d over %d tasks" jobs n)
            expected got)
        [ 0; 1; 7; 64 ])
    [ 1; 2; 4 ]

let results_in_submission_order () =
  (* Tasks finish in scrambled order (later indices do less work); the
     result list must still line up with the input list. *)
  let work i =
    let acc = ref 0 in
    for k = 0 to (64 - i) * 1000 do
      acc := (!acc + k) mod 7919
    done;
    (i, !acc)
  in
  let got = Parallel.map ~jobs:4 work (List.init 64 (fun i -> i)) in
  List.iteri (fun i (j, _) -> check_int "slot i holds task i" i j) got

let exception_carries_index () =
  let tasks = List.init 8 (fun i -> i) in
  match
    Parallel.map ~jobs:4
      (fun i -> if i = 3 then failwith "boom" else i)
      tasks
  with
  | _ -> Alcotest.fail "expected Parallel.Task_error"
  | exception Parallel.Task_error { index; exn } -> (
      check_int "failing task index" 3 index;
      match exn with
      | Failure m -> Alcotest.(check string) "original exception" "boom" m
      | _ -> Alcotest.fail "wrong exception payload")

let lowest_index_wins () =
  (* With several failures the reported one must be the lowest-index
     task, independent of completion order. *)
  match
    Parallel.map ~jobs:4
      (fun i -> if i >= 5 then failwith "late" else i)
      (List.init 10 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Parallel.Task_error"
  | exception Parallel.Task_error { index; _ } ->
      check_int "first failing index reported" 5 index

let sequential_map_wraps_task_error () =
  (* jobs <= 1 takes the no-domain path; its failures must still surface
     as Task_error with the task index, exactly like the pool path. *)
  List.iter
    (fun n ->
      match
        Parallel.map ~jobs:1
          (fun i -> if i = n - 1 then failwith "seq-boom" else i)
          (List.init n (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Parallel.Task_error"
      | exception Parallel.Task_error { index; exn } -> (
          check_int "sequential failing index" (n - 1) index;
          match exn with
          | Failure m -> Alcotest.(check string) "payload" "seq-boom" m
          | _ -> Alcotest.fail "wrong exception payload"))
    [ 1; 8 ]

let with_pool jobs f =
  let pool = Parallel.create ~jobs in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> f pool)

let supervised_retry_then_succeed () =
  with_pool 1 (fun pool ->
      (* Atomic, not ref: the counter is written on whatever domain runs
         the task and read back here (pertscan S1). *)
      let calls = Atomic.make 0 in
      let fut =
        Parallel.submit_supervised pool ~retries:3 ~seed:11
          (fun ~deadline:_ ->
            Atomic.incr calls;
            if Atomic.get calls < 3 then failwith "flaky";
            Atomic.get calls * 10)
      in
      match Parallel.await fut with
      | Ok (Parallel.Ok v) ->
          check_int "third attempt's value" 30 v;
          check_int "two failures then success" 3 (Atomic.get calls)
      | _ -> Alcotest.fail "expected a supervised Ok")

let supervised_exhausts_retries () =
  with_pool 1 (fun pool ->
      let fut =
        Parallel.submit_supervised pool ~retries:2 ~seed:11
          (fun ~deadline:_ -> failwith "always")
      in
      match Parallel.await fut with
      | Ok (Parallel.Failed attempts) ->
          check_int "initial try + 2 retries" 3 (List.length attempts);
          List.iteri
            (fun i (a : Parallel.attempt) ->
              check_int "attempts numbered from 1" (i + 1) a.attempt;
              check_bool "error recorded" true
                (String.length a.error > 0))
            attempts;
          let last = List.nth attempts 2 in
          check_bool "no backoff after the final attempt" true
            (Float.equal (Units.Time.to_s last.backoff) 0.0)
      | _ -> Alcotest.fail "expected a supervised Failed")

let backoff_trace pool ~seed =
  let fut =
    Parallel.submit_supervised pool ~retries:3 ~seed (fun ~deadline:_ ->
        failwith "always")
  in
  match Parallel.await fut with
  | Ok (Parallel.Failed attempts) ->
      List.map (fun (a : Parallel.attempt) -> Units.Time.to_s a.backoff) attempts
  | _ -> Alcotest.fail "expected a supervised Failed"

let supervised_backoff_deterministic () =
  with_pool 1 (fun pool ->
      let t1 = backoff_trace pool ~seed:5 in
      let t2 = backoff_trace pool ~seed:5 in
      Alcotest.(check (list (float 0.0)))
        "same seed, byte-identical backoff trace" t1 t2;
      let t3 = backoff_trace pool ~seed:6 in
      check_bool "different seed, different backoffs" true (t1 <> t3);
      (* Exponential envelope: attempt k+1's pause sits in
         [0.5, 1.5) * 2^k * 20ms. *)
      List.iteri
        (fun k pause ->
          if k < 3 then begin
            let base = 0.020 *. float_of_int (1 lsl k) in
            check_bool "pause within the jittered envelope" true
              (pause >= 0.5 *. base && pause < 1.5 *. base)
          end)
        t1)

exception Fake_deadline

let supervised_timeout_classified () =
  with_pool 1 (fun pool ->
      let calls = Atomic.make 0 in
      let fut =
        Parallel.submit_supervised pool ~retries:5
          ~deadline:(Units.Time.s 0.25)
          ~is_timeout:(function Fake_deadline -> true | _ -> false)
          ~seed:11
          (fun ~deadline ->
            Atomic.incr calls;
            (match deadline with
            | Some d ->
                check_bool "deadline passed to task" true
                  (Float.equal (Units.Time.to_s d) 0.25)
            | None -> Alcotest.fail "deadline not threaded");
            raise Fake_deadline)
      in
      match Parallel.await fut with
      | Ok (Parallel.Timed_out { reason; _ }) ->
          check_int "deadlines are final: no retry" 1 (Atomic.get calls);
          check_bool "reason recorded" true (String.length reason > 0)
      | _ -> Alcotest.fail "expected a supervised Timed_out")

let supervised_identical_across_pool_widths () =
  let outcome_sig jobs =
    with_pool jobs (fun pool ->
        let futs =
          List.init 6 (fun i ->
              Parallel.submit_supervised pool ~retries:2 ~seed:(100 + i)
                (fun ~deadline:_ ->
                  if i mod 3 = 0 then failwith "die" else i * i))
        in
        List.map
          (fun fut ->
            match Parallel.await fut with
            | Ok (Parallel.Ok v) -> Printf.sprintf "ok:%d" v
            | Ok (Parallel.Failed attempts) ->
                Printf.sprintf "failed:%s"
                  (String.concat ";"
                     (List.map
                        (fun (a : Parallel.attempt) ->
                          Printf.sprintf "%d@%.9f" a.attempt
                            (Units.Time.to_s a.backoff))
                        attempts))
            | Ok (Parallel.Timed_out _) -> "timeout"
            | Error _ -> "pool-error")
          futs)
  in
  Alcotest.(check (list string))
    "outcomes and attempt traces identical at jobs=1 vs jobs=4"
    (outcome_sig 1) (outcome_sig 4)

let render tables = String.concat "\n" (List.map Output.to_csv tables)

let family_identical id () =
  match Registry.find id with
  | None -> Alcotest.fail ("unknown experiment family: " ^ id)
  | Some e ->
      let j1 = render (e.Registry.run ~ctx:Runner.default Scale.Smoke) in
      let j4 = render (e.Registry.run ~ctx:(Runner.ctx ~jobs:4 ()) Scale.Smoke) in
      Alcotest.(check string) (id ^ " tables byte-identical at -j1 vs -j4") j1
        j4

let suite =
  [
    ("map matches sequential (0/1/many tasks)", `Quick, map_matches_sequential);
    ("results come back in submission order", `Quick, results_in_submission_order);
    ("worker exception propagates with task index", `Quick, exception_carries_index);
    ("lowest failing index is reported", `Quick, lowest_index_wins);
    ("sequential map wraps Task_error", `Quick, sequential_map_wraps_task_error);
    ("supervised retry then succeed", `Quick, supervised_retry_then_succeed);
    ("supervised exhausts retries", `Quick, supervised_exhausts_retries);
    ("supervised backoff deterministic", `Quick, supervised_backoff_deterministic);
    ("supervised timeout is final", `Quick, supervised_timeout_classified);
    ("supervised outcomes identical across widths", `Quick,
     supervised_identical_across_pool_widths);
    ("faults tables identical -j1 vs -j4", `Slow, family_identical "faults");
    ("fig6 tables identical -j1 vs -j4", `Slow, family_identical "fig6");
  ]
