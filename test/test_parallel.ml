(* The Parallel work-queue pool: submission-order results, worker
   exception propagation with the failing task's index, and end-to-end
   bit-identity of experiment tables across pool widths — the property
   the whole -j flag rests on. *)

open Experiments

let check_int = Alcotest.(check int)

let map_matches_sequential () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let xs = List.init n (fun i -> i) in
          let expected = List.map (fun i -> (i * i) + 1) xs in
          let got = Parallel.map ~jobs (fun i -> (i * i) + 1) xs in
          Alcotest.(check (list int))
            (Printf.sprintf "map at jobs=%d over %d tasks" jobs n)
            expected got)
        [ 0; 1; 7; 64 ])
    [ 1; 2; 4 ]

let results_in_submission_order () =
  (* Tasks finish in scrambled order (later indices do less work); the
     result list must still line up with the input list. *)
  let work i =
    let acc = ref 0 in
    for k = 0 to (64 - i) * 1000 do
      acc := (!acc + k) mod 7919
    done;
    (i, !acc)
  in
  let got = Parallel.map ~jobs:4 work (List.init 64 (fun i -> i)) in
  List.iteri (fun i (j, _) -> check_int "slot i holds task i" i j) got

let exception_carries_index () =
  let tasks = List.init 8 (fun i -> i) in
  match
    Parallel.map ~jobs:4
      (fun i -> if i = 3 then failwith "boom" else i)
      tasks
  with
  | _ -> Alcotest.fail "expected Parallel.Task_error"
  | exception Parallel.Task_error { index; exn } -> (
      check_int "failing task index" 3 index;
      match exn with
      | Failure m -> Alcotest.(check string) "original exception" "boom" m
      | _ -> Alcotest.fail "wrong exception payload")

let lowest_index_wins () =
  (* With several failures the reported one must be the lowest-index
     task, independent of completion order. *)
  match
    Parallel.map ~jobs:4
      (fun i -> if i >= 5 then failwith "late" else i)
      (List.init 10 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Parallel.Task_error"
  | exception Parallel.Task_error { index; _ } ->
      check_int "first failing index reported" 5 index

let render tables = String.concat "\n" (List.map Output.to_csv tables)

let family_identical id () =
  match Registry.find id with
  | None -> Alcotest.fail ("unknown experiment family: " ^ id)
  | Some e ->
      let j1 = render (e.Registry.run ~jobs:1 Scale.Smoke) in
      let j4 = render (e.Registry.run ~jobs:4 Scale.Smoke) in
      Alcotest.(check string) (id ^ " tables byte-identical at -j1 vs -j4") j1
        j4

let suite =
  [
    ("map matches sequential (0/1/many tasks)", `Quick, map_matches_sequential);
    ("results come back in submission order", `Quick, results_in_submission_order);
    ("worker exception propagates with task index", `Quick, exception_carries_index);
    ("lowest failing index is reported", `Quick, lowest_index_wins);
    ("faults tables identical -j1 vs -j4", `Slow, family_identical "faults");
    ("fig6 tables identical -j1 vs -j4", `Slow, family_identical "fig6");
  ]
