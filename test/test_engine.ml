(* Tests for the discrete-event engine: Heap, Sim, Rng, Stats, Fvec. *)

open Sim_engine

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ts = Units.Time.s

(* --- Heap ---------------------------------------------------------------- *)

let heap_pop_order () =
  let h = Heap.create () in
  List.iteri
    (fun i t -> Heap.add h ~time:t ~seq:i i)
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (t, _, _) ->
        order := t :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.0)))
    "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (List.rev !order)

let heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.add h ~time:1.0 ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, seq, v) ->
        check_int "seq order" i seq;
        check_int "payload order" i v
    | None -> Alcotest.fail "heap drained early"
  done

let heap_interleaved () =
  let h = Heap.create ~capacity:1 () in
  Heap.add h ~time:2.0 ~seq:0 "b";
  Heap.add h ~time:1.0 ~seq:1 "a";
  (match Heap.pop h with
  | Some (t, _, v) ->
      check_float "first time" 1.0 t;
      Alcotest.(check string) "first value" "a" v
  | None -> Alcotest.fail "empty");
  Heap.add h ~time:0.5 ~seq:2 "c";
  (match Heap.pop h with
  | Some (_, _, v) -> Alcotest.(check string) "second" "c" v
  | None -> Alcotest.fail "empty");
  check_int "length" 1 (Heap.length h);
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let heap_peek () =
  let h = Heap.create () in
  Alcotest.(check (option (float 0.0))) "empty peek" None (Heap.peek_time h);
  Heap.add h ~time:3.0 ~seq:0 ();
  Heap.add h ~time:1.5 ~seq:1 ();
  Alcotest.(check (option (float 0.0))) "min peek" (Some 1.5) (Heap.peek_time h)

(* Popped payloads must become collectable immediately: the vacated array
   slot used to keep a reference to the popped element alive until it was
   overwritten by a later add. Payloads are minted (and popped) inside
   [@inline never] helpers so no test-frame local pins them. *)
let[@inline never] heap_add_tracked h finalised ~time ~seq =
  let payload = ref (Sys.opaque_identity seq) in
  Gc.finalise (fun _ -> incr finalised) payload;
  Heap.add h ~time ~seq payload

let[@inline never] heap_pop_discard h =
  match Heap.pop h with
  | Some _ -> ()
  | None -> Alcotest.fail "heap drained early"

let heap_pop_releases_payload () =
  let h = Heap.create () in
  let finalised = ref 0 in
  for i = 0 to 3 do
    heap_add_tracked h finalised ~time:(float_of_int i) ~seq:i
  done;
  heap_pop_discard h;
  Gc.full_major ();
  Gc.full_major ();
  check_int "popped payload collected, the three live ones kept" 1 !finalised;
  check_int "heap still holds the rest" 3 (Heap.length h)

let heap_drain_releases_all () =
  let h = Heap.create () in
  let finalised = ref 0 in
  for i = 0 to 2 do
    heap_add_tracked h finalised ~time:(float_of_int i) ~seq:i
  done;
  for _ = 0 to 2 do
    heap_pop_discard h
  done;
  Gc.full_major ();
  Gc.full_major ();
  check_int "every payload collected once drained" 3 !finalised;
  (* The drained heap must still be reusable. *)
  Heap.add h ~time:9.0 ~seq:9 (ref 9);
  check_int "add after drain" 1 (Heap.length h)

let heap_exn_api () =
  let h = Heap.create () in
  Alcotest.check_raises "min_time_exn on empty" Heap.Empty (fun () ->
      ignore (Heap.min_time_exn h));
  Alcotest.check_raises "pop_min_exn on empty" Heap.Empty (fun () ->
      ignore (Heap.pop_min_exn h));
  Heap.add h ~time:2.0 ~seq:0 "b";
  Heap.add h ~time:1.0 ~seq:1 "a";
  check_float "min_time_exn" 1.0 (Heap.min_time_exn h);
  Alcotest.(check string) "pop_min_exn pops the min" "a" (Heap.pop_min_exn h);
  Alcotest.(check string) "then the next" "b" (Heap.pop_min_exn h);
  check_bool "drained" true (Heap.is_empty h)

let heap_qcheck_sorted =
  QCheck.Test.make ~name:"heap pops any multiset sorted" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun i t -> Heap.add h ~time:t ~seq:i ()) times;
      let rec drain acc =
        match Heap.pop h with
        | Some (t, _, ()) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare times)

(* --- Sim ------------------------------------------------------------------ *)

let sim_event_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.at sim (ts 2.0) (fun () -> log := (2, Sim.now sim) :: !log);
  Sim.at sim (ts 1.0) (fun () -> log := (1, Sim.now sim) :: !log);
  Sim.after sim (ts 3.0) (fun () -> log := (3, Sim.now sim) :: !log);
  Sim.run sim;
  let order = List.rev_map fst !log in
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] order;
  check_float "clock at end" 3.0 (Sim.now sim)

let sim_until_semantics () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.at sim (ts 5.0) (fun () -> fired := true);
  Sim.run ~until:(ts 2.0) sim;
  check_bool "future event not fired" false !fired;
  check_float "clock advanced to horizon" 2.0 (Sim.now sim);
  Sim.run ~until:(ts 10.0) sim;
  check_bool "event fires on later run" true !fired

let sim_nested_scheduling () =
  let sim = Sim.create () in
  let hits = ref 0 in
  let rec tick n =
    if n > 0 then begin
      incr hits;
      Sim.after sim (ts 1.0) (fun () -> tick (n - 1))
    end
  in
  Sim.at sim (ts 0.0) (fun () -> tick 5);
  Sim.run sim;
  check_int "nested events all ran" 5 !hits;
  (* the 5th tick at t=4 schedules a no-op tick at t=5 *)
  check_float "clock" 5.0 (Sim.now sim)

let sim_every_and_stop () =
  let sim = Sim.create () in
  let ticks = ref 0 in
  Sim.every sim (ts 1.0) (fun () ->
      incr ticks;
      if !ticks = 4 then Sim.stop sim);
  Sim.run ~until:(ts 100.0) sim;
  check_int "stopped after 4 ticks" 4 !ticks

let sim_every_start () =
  let sim = Sim.create () in
  let times = ref [] in
  Sim.every sim ~start:(ts 0.5) (ts 2.0) (fun () -> times := Sim.now sim :: !times);
  Sim.run ~until:(ts 5.0) sim;
  Alcotest.(check (list (float 1e-9)))
    "tick times" [ 0.5; 2.5; 4.5 ] (List.rev !times)

let sim_rejects_past () =
  let sim = Sim.create () in
  Sim.at sim (ts 1.0) (fun () ->
      Alcotest.check_raises "scheduling into the past"
        (Invalid_argument "Sim.at: time 0.5 is before now 1") (fun () ->
          Sim.at sim (ts 0.5) ignore));
  Sim.run sim;
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.after: negative delay") (fun () ->
      Sim.after sim (ts (-1.0)) ignore)

let sim_counts_events () =
  let sim = Sim.create () in
  for i = 1 to 7 do
    Sim.at sim (ts (float_of_int i)) ignore
  done;
  Sim.run sim;
  check_int "events executed" 7 (Sim.events_executed sim)

(* --- Rng ------------------------------------------------------------------ *)

let rng_determinism () =
  let a = Rng.create 9 and b = Rng.create 9 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a 1.0) (Rng.float b 1.0)
  done

let rng_split_independence () =
  let a = Rng.create 9 and b = Rng.create 9 in
  let a1 = Rng.split a and b1 = Rng.split b in
  (* Splits of identical parents are identical... *)
  check_float "split determinism" (Rng.float a1 1.0) (Rng.float b1 1.0);
  (* ...and the parent keeps its own stream after splitting. *)
  let x = Rng.float a 1.0 in
  check_bool "parent stream differs from child" true
    (not (Float.equal x (Rng.float a1 1.0)))

let rng_ranges () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let u = Rng.uniform rng 2.0 3.0 in
    check_bool "uniform in range" true (u >= 2.0 && u < 3.0);
    let i = Rng.int rng 7 in
    check_bool "int in range" true (i >= 0 && i < 7)
  done

let mean_of f n =
  let rng = Rng.create 4 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. f rng
  done;
  !sum /. float_of_int n

let rng_exponential_mean () =
  let m = mean_of (fun rng -> Rng.exponential rng 2.5) 50_000 in
  check_float_eps 0.1 "exponential mean" 2.5 m

let rng_pareto_properties () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    check_bool "pareto >= scale" true (Rng.pareto rng ~shape:1.5 ~scale:3.0 >= 3.0)
  done;
  (* shape 2.5 has mean scale*shape/(shape-1) = 5/3 for scale 1. *)
  let m = mean_of (fun rng -> Rng.pareto rng ~shape:2.5 ~scale:1.0) 100_000 in
  check_float_eps 0.08 "pareto mean" (2.5 /. 1.5) m

let rng_bounded_pareto_in_range () =
  let rng = Rng.create 6 in
  for _ = 1 to 2000 do
    let x = Rng.bounded_pareto rng ~shape:1.2 ~scale:2.0 ~cap:100.0 in
    check_bool "bounded pareto range" true (x >= 2.0 -. 1e-9 && x <= 100.0 +. 1e-9)
  done

let rng_geometric () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    check_bool "geometric >= 1" true (Rng.geometric rng 0.3 >= 1)
  done;
  check_int "p=1 gives 1" 1 (Rng.geometric rng 1.0);
  let m = mean_of (fun rng -> float_of_int (Rng.geometric rng 0.25)) 50_000 in
  check_float_eps 0.1 "geometric mean 1/p" 4.0 m

let rng_bernoulli_rate () =
  let rng = Rng.create 8 in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Rng.bernoulli rng (Units.Prob.v 0.3) then incr hits
  done;
  check_float_eps 0.01 "bernoulli rate" 0.3 (float_of_int !hits /. 100_000.0)

(* --- Stats ----------------------------------------------------------------- *)

let acc_moments () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.Acc.count acc);
  check_float "mean" 5.0 (Stats.Acc.mean acc);
  check_float_eps 1e-9 "variance" (32.0 /. 7.0) (Stats.Acc.variance acc);
  check_float "min" 2.0 (Stats.Acc.min acc);
  check_float "max" 9.0 (Stats.Acc.max acc)

let acc_empty () =
  let acc = Stats.Acc.create () in
  check_float "empty mean" 0.0 (Stats.Acc.mean acc);
  check_float "empty variance" 0.0 (Stats.Acc.variance acc);
  Alcotest.check_raises "empty min" (Invalid_argument "Stats.Acc.min: empty")
    (fun () -> ignore (Stats.Acc.min acc))

let tw_average () =
  let tw = Stats.Time_weighted.create ~start:0.0 ~value:0.0 in
  Stats.Time_weighted.update tw ~now:1.0 ~value:10.0;
  Stats.Time_weighted.update tw ~now:3.0 ~value:2.0;
  (* 0 for 1s, 10 for 2s, 2 for 1s -> (0 + 20 + 2) / 4 *)
  check_float "time-weighted mean" 5.5 (Stats.Time_weighted.average tw ~now:4.0)

let tw_reset () =
  let tw = Stats.Time_weighted.create ~start:0.0 ~value:4.0 in
  Stats.Time_weighted.update tw ~now:2.0 ~value:8.0;
  Stats.Time_weighted.reset tw ~now:3.0;
  (* window restarts at t=3 holding 8 *)
  check_float "after reset" 8.0 (Stats.Time_weighted.average tw ~now:5.0)

let tw_monotonic_time () =
  let tw = Stats.Time_weighted.create ~start:0.0 ~value:1.0 in
  Stats.Time_weighted.update tw ~now:1.0 ~value:2.0;
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Stats.Time_weighted: time went backwards") (fun () ->
      Stats.Time_weighted.update tw ~now:0.5 ~value:3.0)

let histogram_basic () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -5.0; 50.0 ];
  let counts = Stats.Histogram.counts h in
  check_int "bin 0 (incl clamped low)" 2 counts.(0);
  check_int "bin 1" 2 counts.(1);
  check_int "bin 9 (incl clamped high)" 2 counts.(9);
  check_int "total" 6 (Stats.Histogram.total h);
  let pdf = Stats.Histogram.pdf h in
  check_float_eps 1e-9 "pdf sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 pdf);
  check_float "bin center" 0.5 (Stats.Histogram.bin_center h 0)

let jain_known () =
  check_float "equal shares" 1.0 (Stats.jain_index [| 3.0; 3.0; 3.0 |]);
  check_float "one hog" (1.0 /. 3.0) (Stats.jain_index [| 1.0; 0.0; 0.0 |]);
  check_float "empty" 1.0 (Stats.jain_index [||]);
  check_float "all zero" 1.0 (Stats.jain_index [| 0.0; 0.0 |])

let jain_qcheck_bounds =
  QCheck.Test.make ~name:"jain index within [1/n, 1]" ~count:500
    QCheck.(list_of_size (Gen.int_range 1 20) (float_bound_exclusive 100.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let j = Stats.jain_index arr in
      let n = float_of_int (Array.length arr) in
      j >= (1.0 /. n) -. 1e-9 && j <= 1.0 +. 1e-9)

let percentile_basic () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median" 3.0 (Stats.percentile xs 0.5);
  check_float "min" 1.0 (Stats.percentile xs 0.0);
  check_float "max" 5.0 (Stats.percentile xs 1.0);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Stats.percentile [||] 0.5))

(* --- Fvec ------------------------------------------------------------------ *)

let fvec_push_get () =
  let v = Fvec.create ~capacity:2 () in
  for i = 0 to 99 do
    Fvec.push v (float_of_int i)
  done;
  check_int "length" 100 (Fvec.length v);
  check_float "get 57" 57.0 (Fvec.get v 57);
  check_int "to_array length" 100 (Array.length (Fvec.to_array v));
  Alcotest.check_raises "oob" (Invalid_argument "Fvec.get: index out of bounds")
    (fun () -> ignore (Fvec.get v 100))

let fvec_lower_bound () =
  let v = Fvec.create () in
  List.iter (Fvec.push v) [ 1.0; 3.0; 3.0; 7.0 ];
  check_int "before all" 0 (Fvec.lower_bound v 0.5);
  check_int "exact" 1 (Fvec.lower_bound v 3.0);
  check_int "between" 3 (Fvec.lower_bound v 5.0);
  check_int "after all" 4 (Fvec.lower_bound v 9.0)

let heap_reuse_after_clear () =
  let h = Heap.create () in
  Heap.add h ~time:1.0 ~seq:0 "x";
  Heap.clear h;
  Heap.add h ~time:2.0 ~seq:1 "y";
  (match Heap.pop h with
  | Some (t, _, v) ->
      check_float "time" 2.0 t;
      Alcotest.(check string) "value" "y" v
  | None -> Alcotest.fail "empty after reuse");
  check_bool "drained" true (Heap.is_empty h)

let sim_stop_is_resumable () =
  let sim = Sim.create () in
  let ran = ref 0 in
  Sim.at sim (ts 1.0) (fun () ->
      incr ran;
      Sim.stop sim);
  Sim.at sim (ts 2.0) (fun () -> incr ran);
  Sim.run sim;
  check_int "stopped after first" 1 !ran;
  Sim.run sim;
  check_int "resumes on next run" 2 !ran

let rng_same_seed_same_split_tree () =
  let walk seed =
    let root = Rng.create seed in
    let a = Rng.split root in
    let b = Rng.split root in
    (Rng.float a 1.0, Rng.float b 1.0, Rng.float root 1.0)
  in
  check_bool "split tree deterministic" true (walk 3 = walk 3);
  check_bool "different seeds diverge" true (walk 3 <> walk 4)

let acc_single_sample () =
  let acc = Stats.Acc.create () in
  Stats.Acc.add acc 5.0;
  check_float "mean" 5.0 (Stats.Acc.mean acc);
  check_float "variance of one sample" 0.0 (Stats.Acc.variance acc);
  check_float "min = max" (Stats.Acc.min acc) (Stats.Acc.max acc)

let histogram_validation () =
  Alcotest.check_raises "zero bins" (Invalid_argument "Stats.Histogram.create")
    (fun () -> ignore (Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0));
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Stats.Histogram.create") (fun () ->
      ignore (Stats.Histogram.create ~lo:1.0 ~hi:0.0 ~bins:4))

let percentile_p_validation () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [| 1.0 |] 1.5))

let tw_zero_span () =
  let tw = Stats.Time_weighted.create ~start:1.0 ~value:7.0 in
  check_float "zero-span average is current value" 7.0
    (Stats.Time_weighted.average tw ~now:1.0)

let fvec_clear_and_iter () =
  let v = Fvec.create () in
  List.iter (Fvec.push v) [ 1.0; 2.0; 3.0 ];
  let sum = ref 0.0 in
  Fvec.iter (fun x -> sum := !sum +. x) v;
  check_float "iter sums" 6.0 !sum;
  Fvec.clear v;
  check_int "cleared" 0 (Fvec.length v)

(* --- Audit ------------------------------------------------------------------ *)

let audit_clean_run () =
  let sim = Sim.create () in
  let a = Audit.create ~interval:(ts 0.05) sim in
  Audit.add_check a ~subject:"always-ok" (fun ~now:_ -> None);
  Sim.run ~until:(ts 1.0) sim;
  check_bool "ok" true (Audit.ok a);
  check_int "no violations" 0 (Audit.violation_count a);
  Alcotest.(check string)
    "summary" "audit: no invariant violations" (Audit.summary a)

let audit_records_failing_check () =
  let sim = Sim.create () in
  let a = Audit.create ~interval:(ts 0.1) ~max_kept:3 sim in
  Audit.add_check a ~subject:"queue" (fun ~now ->
      if now > 0.55 then Some "count drifted" else None);
  Sim.run ~until:(ts 1.0) sim;
  check_bool "not ok" false (Audit.ok a);
  (* ticks at 0.6..1.0 all fail; only the first [max_kept] are kept
     verbatim but the total stays exact *)
  check_bool "total is exact" true (Audit.violation_count a >= 4);
  check_int "kept capped" 3 (List.length (Audit.violations a));
  (match Audit.violations a with
  | { Audit.time; subject; message } :: _ ->
      check_bool "oldest first, with sim time" true (time > 0.55 && time < 0.75);
      Alcotest.(check string) "subject" "queue" subject;
      Alcotest.(check string) "message" "count drifted" message
  | [] -> Alcotest.fail "no violation kept");
  check_bool "summary names the first violation" true
    (String.length (Audit.summary a) > 0 && not (Audit.ok a))

let audit_check_finite () =
  let sim = Sim.create () in
  let a = Audit.create sim in
  check_bool "finite passes" true
    (Audit.check_finite a ~now:0.0 ~subject:"x" ~what:"v" 1.0);
  check_bool "nan caught" false
    (Audit.check_finite a ~now:0.0 ~subject:"x" ~what:"v" Float.nan);
  check_bool "infinity caught" false
    (Audit.check_finite a ~now:0.0 ~subject:"x" ~what:"v" Float.infinity);
  check_int "two violations" 2 (Audit.violation_count a)

let sim_watchdog_semantics () =
  let sim = Sim.create () in
  Alcotest.check_raises "zero budget"
    (Invalid_argument "Sim.set_watchdog: budget must be positive") (fun () ->
      Sim.set_watchdog sim ~max_events_per_instant:0 ignore);
  let trips = ref 0 in
  Sim.set_watchdog sim ~max_events_per_instant:10 (fun _ -> incr trips);
  (* 25 zero-delay events at t=1: over budget, but the trip must fire
     exactly once for the stuck instant *)
  let n = ref 0 in
  let rec spin () =
    incr n;
    if !n < 25 then Sim.after sim (ts 0.0) spin
  in
  Sim.at sim (ts 1.0) spin;
  Sim.at sim (ts 2.0) ignore;
  Sim.run sim;
  check_int "one trip per stuck instant" 1 !trips;
  check_int "all events still ran" 25 !n;
  (* once cleared, the same burst goes unreported *)
  Sim.clear_watchdog sim;
  n := 0;
  Sim.at sim (ts 3.0) spin;
  Sim.run sim;
  check_int "no trip after clear" 1 !trips

let audit_watchdog_stops_livelock () =
  let sim = Sim.create () in
  let a = Audit.create sim in
  Audit.enable_watchdog ~max_events_per_instant:500 a;
  let spins = ref 0 in
  let rec spin () =
    incr spins;
    Sim.after sim (ts 0.0) spin
  in
  Sim.at sim (ts 0.25) spin;
  Sim.run ~until:(ts 10.0) sim;
  check_bool "trip recorded as violation" false (Audit.ok a);
  (match Audit.violations a with
  | { Audit.subject = "sim"; message; _ } :: _ ->
      check_bool "message names livelock" true
        (String.length message > 0
        && String.sub message 0 8 = "livelock")
  | _ -> Alcotest.fail "expected a sim-subject violation");
  check_bool "stopped promptly instead of hanging" true (!spins <= 502);
  check_float "clock stuck at the livelock instant" 0.25 (Sim.now sim)

let sim_event_budget_trips_and_resumes () =
  let sim = Sim.create () in
  let ran = ref 0 in
  for i = 1 to 1000 do
    Sim.at sim (ts (float_of_int i *. 0.001)) (fun () -> incr ran)
  done;
  Sim.set_budget sim ~max_events:100 ();
  (match Sim.run sim with
  | () -> Alcotest.fail "expected Budget_exceeded"
  | exception Sim.Budget_exceeded { events; exhausted; now } ->
      check_int "partial stats: events executed" 100 events;
      Alcotest.(check string) "which budget tripped" "max_events" exhausted;
      check_bool "partial stats: sim time advanced" true
        (Units.Time.to_s now >= 0.1));
  check_int "exactly the budget ran" 100 !ran;
  (* The budget check fires before the pop, so the offending event is
     still queued: clearing the budget makes the sim resumable. *)
  Sim.clear_budget sim;
  Sim.run sim;
  check_int "remaining events run after clear_budget" 1000 !ran;
  check_int "events_executed counts the whole run" 1000
    (Sim.events_executed sim)

let sim_wall_budget_stops_runaway () =
  let sim = Sim.create () in
  (* An unbounded microsecond ticker: without ~until this would run
     forever; only the wall budget can stop it. *)
  Sim.every sim (ts 1e-6) ignore;
  Sim.set_budget sim ~max_wall:(Units.Time.ms 5.0) ();
  match Sim.run sim with
  | () -> Alcotest.fail "expected Budget_exceeded"
  | exception Sim.Budget_exceeded { exhausted; events; _ } ->
      Alcotest.(check string) "which budget tripped" "max_wall" exhausted;
      check_bool "made progress before tripping" true (events > 0)

let sim_budget_validation () =
  let sim = Sim.create () in
  Alcotest.check_raises "no budget at all"
    (Invalid_argument "Sim.set_budget: set max_events, max_wall or both")
    (fun () -> Sim.set_budget sim ());
  Alcotest.check_raises "zero events"
    (Invalid_argument "Sim.set_budget: max_events must be positive")
    (fun () -> Sim.set_budget sim ~max_events:0 ());
  Alcotest.check_raises "zero wall"
    (Invalid_argument "Sim.set_budget: max_wall must be positive")
    (fun () -> Sim.set_budget sim ~max_wall:Units.Time.zero ())

let qsuite = List.map QCheck_alcotest.to_alcotest [ heap_qcheck_sorted; jain_qcheck_bounds ]

let suite =
  [
    ("heap pop order", `Quick, heap_pop_order);
    ("heap FIFO on equal times", `Quick, heap_fifo_ties);
    ("heap interleaved ops", `Quick, heap_interleaved);
    ("heap peek", `Quick, heap_peek);
    ("heap pop releases payload", `Quick, heap_pop_releases_payload);
    ("heap drain releases all payloads", `Quick, heap_drain_releases_all);
    ("heap exn-based min/pop", `Quick, heap_exn_api);
    ("sim event order", `Quick, sim_event_order);
    ("sim until semantics", `Quick, sim_until_semantics);
    ("sim nested scheduling", `Quick, sim_nested_scheduling);
    ("sim every + stop", `Quick, sim_every_and_stop);
    ("sim every start", `Quick, sim_every_start);
    ("sim rejects past/negative", `Quick, sim_rejects_past);
    ("sim counts events", `Quick, sim_counts_events);
    ("rng determinism", `Quick, rng_determinism);
    ("rng split", `Quick, rng_split_independence);
    ("rng ranges", `Quick, rng_ranges);
    ("rng exponential mean", `Quick, rng_exponential_mean);
    ("rng pareto", `Quick, rng_pareto_properties);
    ("rng bounded pareto", `Quick, rng_bounded_pareto_in_range);
    ("rng geometric", `Quick, rng_geometric);
    ("rng bernoulli", `Quick, rng_bernoulli_rate);
    ("stats acc moments", `Quick, acc_moments);
    ("stats acc empty", `Quick, acc_empty);
    ("stats time-weighted", `Quick, tw_average);
    ("stats tw reset", `Quick, tw_reset);
    ("stats tw monotonic", `Quick, tw_monotonic_time);
    ("stats histogram", `Quick, histogram_basic);
    ("stats jain known", `Quick, jain_known);
    ("stats percentile", `Quick, percentile_basic);
    ("heap reuse after clear", `Quick, heap_reuse_after_clear);
    ("sim stop is resumable", `Quick, sim_stop_is_resumable);
    ("rng split tree deterministic", `Quick, rng_same_seed_same_split_tree);
    ("stats acc single sample", `Quick, acc_single_sample);
    ("stats histogram validation", `Quick, histogram_validation);
    ("stats percentile validation", `Quick, percentile_p_validation);
    ("stats tw zero span", `Quick, tw_zero_span);
    ("fvec clear/iter", `Quick, fvec_clear_and_iter);
    ("fvec push/get", `Quick, fvec_push_get);
    ("fvec lower_bound", `Quick, fvec_lower_bound);
    ("audit clean run", `Quick, audit_clean_run);
    ("audit records violations", `Quick, audit_records_failing_check);
    ("audit check_finite", `Quick, audit_check_finite);
    ("sim watchdog semantics", `Quick, sim_watchdog_semantics);
    ("audit watchdog stops livelock", `Quick, audit_watchdog_stops_livelock);
    ("sim event budget trips and resumes", `Quick, sim_event_budget_trips_and_resumes);
    ("sim wall budget stops a runaway", `Quick, sim_wall_budget_stops_runaway);
    ("sim budget validation", `Quick, sim_budget_validation);
  ]
  @ qsuite
