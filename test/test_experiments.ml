(* Tests for the experiment harness: the dumbbell builder/runner, scheme
   configuration, output tables, and quick-scale sanity of the headline
   qualitative results. *)

open Experiments

let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Schemes ------------------------------------------------------------------ *)

let schemes_names_and_ecn () =
  Alcotest.(check (list string)) "paper order"
    [ "pert"; "sack-droptail"; "sack-red-ecn"; "vegas" ]
    (List.map Schemes.name Schemes.all_fig4_schemes);
  check_bool "red uses ecn" true (Schemes.uses_ecn Schemes.Sack_red_ecn);
  check_bool "pert endpoint-only" false (Schemes.uses_ecn Schemes.Pert);
  check_bool "pi router uses ecn" true
    (Schemes.uses_ecn (Schemes.Sack_pi_ecn { target_delay = Units.Time.s 0.003 }))

let schemes_disc_kinds () =
  let sim = Sim_engine.Sim.create () in
  let ctx =
    { Schemes.sim; capacity_pps = 1000.0; limit_pkts = 100; rtt = 0.06; nflows = 8 }
  in
  let dt = Schemes.bottleneck_disc Schemes.Pert ctx in
  check_bool "pert gets droptail" true (dt.Netsim.Queue_disc.name = "droptail");
  let red = Schemes.bottleneck_disc Schemes.Sack_red_ecn ctx in
  check_bool "red disc introspectable" true (Netsim.Red.avg_queue red >= 0.0);
  let pi = Schemes.bottleneck_disc (Schemes.Sack_pi_ecn { target_delay = Units.Time.s 0.003 }) ctx in
  check_bool "pi disc introspectable" true (Units.Prob.to_float (Netsim.Pi_queue.probability pi) >= 0.0)

(* --- Dumbbell ------------------------------------------------------------------ *)

let bdp_rule () =
  (* 50 Mbps * 60 ms / (8 * 1040 B) = 360 packets *)
  check_int "bdp pkts" 360 (Dumbbell.bdp_pkts ~bandwidth:50e6 ~rtt:0.060);
  let cfg = Dumbbell.uniform_flows Dumbbell.default ~n:300 in
  let built = Dumbbell.build { cfg with Dumbbell.web_sessions = 0 } in
  let buffer =
    (Netsim.Link.disc built.Dumbbell.bottleneck).Netsim.Queue_disc.capacity_pkts
  in
  check_int "floor at 2x flows" 600 buffer

let uniform_flows_helper () =
  let cfg = Dumbbell.uniform_flows Dumbbell.default ~n:5 in
  check_int "five rtts" 5 (List.length cfg.Dumbbell.flow_rtts);
  List.iter
    (fun r -> check_float_eps 1e-12 "all equal default rtt" cfg.Dumbbell.rtt r)
    cfg.Dumbbell.flow_rtts

let measured_rtt_matches_config () =
  (* The topology must realise the configured propagation delay. *)
  let cfg =
    Dumbbell.uniform_flows
      { Dumbbell.default with Dumbbell.bandwidth = 100e6; rtt = 0.080;
        start_window = (0.0, 0.0) }
      ~n:1
  in
  let built = Dumbbell.build cfg in
  let flow = List.hd built.Dumbbell.forward_flows in
  Tcpstack.Flow.enable_rtt_trace flow;
  Sim_engine.Sim.run ~until:(Units.Time.s 2.0)
    (Netsim.Topology.sim built.Dumbbell.topo);
  let _, rtts, _ = Tcpstack.Flow.rtt_trace flow in
  let min_rtt = Array.fold_left min infinity rtts in
  (* propagation plus a little serialisation *)
  check_bool "min rtt close to configured" true
    (min_rtt >= 0.080 && min_rtt < 0.083)

let dumbbell_result_consistency () =
  let cfg =
    Dumbbell.uniform_flows
      { Dumbbell.default with Dumbbell.bandwidth = 10e6; duration = 20.0; warmup = 8.0 }
      ~n:4
  in
  let r = Dumbbell.run cfg in
  check_float_eps 1e-9 "norm = pkts / buffer"
    (Units.Pkts.to_float r.Dumbbell.avg_queue_pkts
    /. float_of_int r.Dumbbell.buffer_pkts)
    r.Dumbbell.avg_queue_norm;
  check_int "per-flow vector sized" 4 (Array.length r.Dumbbell.per_flow_goodput);
  check_bool "utilization sane" true
    (r.Dumbbell.utilization > 0.5 && r.Dumbbell.utilization <= 1.05);
  check_bool "jain in range" true (r.Dumbbell.jain > 0.25 && r.Dumbbell.jain <= 1.0)

let headline_qualitative_result () =
  (* The paper's core claim at smoke scale: PERT keeps the queue far
     below DropTail at (near) zero drops, with comparable utilisation. *)
  let run scheme =
    Dumbbell.run
      (Dumbbell.uniform_flows
         { Dumbbell.default with Dumbbell.scheme; bandwidth = 10e6;
           duration = 30.0; warmup = 10.0 }
         ~n:6)
  in
  let pert = run Schemes.Pert and dt = run Schemes.Sack_droptail in
  check_bool "queue much smaller" true
    (Units.Pkts.to_float pert.Dumbbell.avg_queue_pkts
    < Units.Pkts.to_float dt.Dumbbell.avg_queue_pkts /. 2.0);
  check_bool "drops lower" true (pert.Dumbbell.drop_rate <= dt.Dumbbell.drop_rate);
  check_bool "pert used early response" true (pert.Dumbbell.early_responses > 0);
  check_bool "utilisation comparable" true
    (pert.Dumbbell.utilization > dt.Dumbbell.utilization -. 0.15)

let vegas_zero_loss_smoke () =
  let r =
    Dumbbell.run
      (Dumbbell.uniform_flows
         { Dumbbell.default with Dumbbell.scheme = Schemes.Vegas;
           bandwidth = 10e6; duration = 30.0; warmup = 10.0 }
         ~n:6)
  in
  check_float_eps 1e-9 "vegas: no drops" 0.0 r.Dumbbell.drop_rate;
  check_bool "vegas: full pipe" true (r.Dumbbell.utilization > 0.9)

(* --- Output --------------------------------------------------------------------- *)

let output_cells () =
  Alcotest.(check string) "fixed" "1.500" (Output.cell_f 1.5);
  Alcotest.(check string) "digits" "1.50" (Output.cell_f ~digits:2 1.5);
  Alcotest.(check string) "sci" "1.00e-03" (Output.cell_e 0.001);
  Alcotest.(check string) "int" "42" (Output.cell_i 42)

let output_csv () =
  let t =
    { Output.title = "t"; header = [ "a"; "b" ]; rows = [ [ "1"; "2" ]; [ "3"; "4" ] ] }
  in
  Alcotest.(check string) "csv" "a,b\n1,2\n3,4\n" (Output.to_csv t)

let output_gnuplot () =
  let t =
    { Output.title = "t"; header = [ "a"; "b" ]; rows = [ [ "1"; "2" ] ] }
  in
  Alcotest.(check string) "gnuplot" "# t\n# a b\n1 2\n" (Output.to_gnuplot t)

let scale_parsing () =
  check_bool "quick" true (Scale.of_string "quick" = Ok Scale.Quick);
  check_bool "default" true (Scale.of_string "default" = Ok Scale.Default);
  check_bool "full" true (Scale.of_string "full" = Ok Scale.Full);
  check_bool "junk rejected" true (Result.is_error (Scale.of_string "huge"));
  Alcotest.(check string) "round trip" "full" (Scale.to_string Scale.Full)

(* --- Registry -------------------------------------------------------------------- *)

let registry_covers_paper () =
  let ids = Registry.ids () in
  List.iter
    (fun id -> check_bool (id ^ " present") true (List.mem id ids))
    [ "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9";
      "table1"; "fig11"; "fig12"; "fig13a"; "fig13"; "fig14" ];
  check_int "no duplicates" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  check_bool "find works" true (Registry.find "fig6" <> None);
  check_bool "find rejects junk" true (Registry.find "fig99" = None)

let fig6_structure () =
  let t = Sweeps.fig6 Scale.Quick in
  (* 2 quick bandwidth points x 4 schemes *)
  check_int "rows" 8 (List.length t.Output.rows);
  List.iter
    (fun row ->
      check_int "columns" (List.length t.Output.header) (List.length row);
      (* numeric cells parse *)
      match row with
      | _mbps :: _scheme :: rest ->
          List.iter (fun c -> ignore (float_of_string c)) rest
      | _ -> Alcotest.fail "short row")
    t.Output.rows;
  (* every scheme appears at every point *)
  let schemes_in_rows =
    List.map (fun row -> List.nth row 1) t.Output.rows |> List.sort_uniq compare
  in
  check_int "four schemes present" 4 (List.length schemes_in_rows)

let fig5_is_the_curve () =
  match (Option.get (Registry.find "fig5")).Registry.run ~ctx:Runner.default Scale.Quick with
  | [ t ] ->
      check_int "26 sample points" 26 (List.length t.Output.rows);
      let last = List.nth t.Output.rows 25 in
      Alcotest.(check (list string)) "saturates at 1" [ "0.025"; "1.0000" ] last
  | _ -> Alcotest.fail "fig5 should emit one table"

let fig13a_matches_paper_point () =
  match
    (Option.get (Registry.find "fig13a")).Registry.run ~ctx:Runner.default Scale.Quick
  with
  | [ t ] ->
      check_int "fifty rows" 50 (List.length t.Output.rows);
      (* N- = 40 row: delta_min ~ 0.115 s (paper: reaches 0.1 near N=40) *)
      let row40 = List.nth t.Output.rows 39 in
      let d = float_of_string (List.nth row40 1) in
      check_bool "near 0.1 s" true (d > 0.05 && d < 0.2)
  | _ -> Alcotest.fail "fig13a should emit one table"

(* --- Multi-bottleneck / dynamic smoke --------------------------------------------- *)

let multibneck_smoke () =
  let config =
    { (Multibneck.default Scale.Quick Schemes.Pert) with
      Multibneck.duration = 12.0; warmup = 5.0; cloud_size = 3 }
  in
  let reports, long_jain = Multibneck.run config in
  check_int "five hops" 5 (List.length reports);
  List.iter
    (fun r ->
      check_bool "hop utilised" true (r.Multibneck.utilization > 0.5);
      check_bool "queue bounded" true (r.Multibneck.avg_queue_norm < 0.9))
    reports;
  check_bool "long-haul fairness sane" true (long_jain > 0.5)

let dynamic_cbr_yield_and_reclaim () =
  let config =
    { (Dynamic.default Scale.Quick Schemes.Pert) with
      Dynamic.epoch = 8.0; bin = 2.0; cohort_size = 3 }
  in
  let times, tcp, cbr = Dynamic.run_cbr config ~cbr_share:0.5 in
  let n = Array.length times in
  check_int "three phases sampled" n (Array.length tcp);
  (* CBR silent in the first and last thirds, active in the middle *)
  check_float_eps 1e-9 "cbr off early" 0.0 cbr.(1);
  check_bool "cbr on mid-run" true (cbr.(n / 2) > 0.0);
  (* TCP yields while CBR is on, then reclaims *)
  check_bool "tcp yields" true (tcp.(n / 2) < tcp.(2));
  check_bool "tcp reclaims" true (tcp.(n - 1) > tcp.(n / 2))

let dynamic_conservation () =
  let config =
    { (Dynamic.default Scale.Quick Schemes.Pert) with
      Dynamic.epoch = 6.0; bin = 2.0; cohort_size = 3 }
  in
  let times, series = Dynamic.run config in
  check_int "four cohorts" 4 (Array.length series);
  check_bool "bins exist" true (Array.length times > 10);
  (* cohort 2 must be silent before its join epoch and active after *)
  check_float_eps 1e-9 "cohort2 silent early" 0.0 series.(1).(1);
  let mid = Array.length times / 2 in
  check_bool "cohort2 active mid-run" true (series.(1).(mid) > 0.0);
  (* total throughput never exceeds capacity (plus header slack) *)
  Array.iteri
    (fun i _ ->
      let total = Array.fold_left (fun a s -> a +. s.(i)) 0.0 series in
      check_bool "below capacity" true (total <= config.Dynamic.bandwidth *. 1.05))
    times;
  (* after all departures only the last cohort remains *)
  let last = Array.length times - 1 in
  check_float_eps 1e-9 "cohort1 gone at end" 0.0 series.(0).(last);
  check_bool "last cohort reclaims" true (series.(3).(last) > 0.0)

let other_aqm_schemes_smoke () =
  List.iter
    (fun scheme ->
      let r =
        Dumbbell.run
          (Dumbbell.uniform_flows
             { Dumbbell.default with Dumbbell.scheme; bandwidth = 10e6;
               duration = 25.0; warmup = 10.0 }
             ~n:4)
      in
      check_bool
        (Schemes.name scheme ^ " regulates the queue")
        true
        (r.Dumbbell.avg_queue_norm < 0.6);
      check_bool
        (Schemes.name scheme ^ " keeps the pipe busy")
        true
        (r.Dumbbell.utilization > 0.6))
    [ Schemes.Pert_rem; Schemes.Pert_avq; Schemes.Sack_rem_ecn;
      Schemes.Sack_avq_ecn ]

let tuned_scheme_matches_default () =
  (* Pert_tuned with the paper's knobs must behave like Pert. *)
  let cfg scheme =
    Dumbbell.uniform_flows
      { Dumbbell.default with Dumbbell.scheme; bandwidth = 10e6;
        duration = 25.0; warmup = 10.0 }
      ~n:4
  in
  let a = Dumbbell.run (cfg Schemes.Pert) in
  let b =
    Dumbbell.run
      (cfg
         (Schemes.Pert_tuned
            { curve = Pert_core.Response_curve.default; alpha = 0.99;
              decrease_factor = 0.35; limit_per_rtt = true }))
  in
  (* identical code path modulo RNG stream: same qualitative regime *)
  check_bool "similar queue" true
    (Float.abs
       (Units.Pkts.to_float a.Dumbbell.avg_queue_pkts
       -. Units.Pkts.to_float b.Dumbbell.avg_queue_pkts)
     < 8.0);
  check_bool "both respond early" true
    (a.Dumbbell.early_responses > 0 && b.Dumbbell.early_responses > 0)

let ablation_tables_smoke () =
  let tables = Ablations.all Scale.Quick in
  check_int "six tables" 6 (List.length tables);
  List.iter
    (fun t ->
      check_bool "has rows" true (List.length t.Output.rows >= 2);
      List.iter
        (fun row -> check_int "row width" (List.length t.Output.header) (List.length row))
        t.Output.rows)
    tables

let ablation_decrease_direction () =
  (* Bigger early decrease -> smaller standing queue (monotone over the
     swept factors). *)
  match (Ablations.decrease_factor Scale.Quick).Output.rows with
  | [ r20; _; r50 ] ->
      let q row = float_of_string (List.nth row 1) in
      check_bool "f=0.5 queue below f=0.2 queue" true (q r50 < q r20)
  | _ -> Alcotest.fail "expected three rows"

let suite =
  [
    ("schemes names/ecn", `Quick, schemes_names_and_ecn);
    ("schemes disc kinds", `Quick, schemes_disc_kinds);
    ("dumbbell bdp rule", `Quick, bdp_rule);
    ("dumbbell uniform flows", `Quick, uniform_flows_helper);
    ("dumbbell realises rtt", `Quick, measured_rtt_matches_config);
    ("dumbbell result consistency", `Quick, dumbbell_result_consistency);
    ("headline qualitative result", `Quick, headline_qualitative_result);
    ("vegas zero loss", `Quick, vegas_zero_loss_smoke);
    ("output cells", `Quick, output_cells);
    ("output csv", `Quick, output_csv);
    ("output gnuplot", `Quick, output_gnuplot);
    ("scale parsing", `Quick, scale_parsing);
    ("registry covers paper", `Quick, registry_covers_paper);
    ("fig5 curve table", `Quick, fig5_is_the_curve);
    ("fig6 table structure", `Quick, fig6_structure);
    ("fig13a paper point", `Quick, fig13a_matches_paper_point);
    ("other aqm schemes smoke", `Quick, other_aqm_schemes_smoke);
    ("tuned scheme matches default", `Quick, tuned_scheme_matches_default);
    ("ablation tables smoke", `Quick, ablation_tables_smoke);
    ("ablation decrease direction", `Quick, ablation_decrease_direction);
    ("multibottleneck smoke", `Quick, multibneck_smoke);
    ("dynamic conservation", `Quick, dynamic_conservation);
    ("dynamic cbr yield/reclaim", `Quick, dynamic_cbr_yield_and_reclaim);
  ]
