(* End-to-end tests for tools/pertlint/pertscan: the whole-program
   analyses (S1 race escape, S2 determinism taint, S3 dead exports,
   S4 stale allows) run as a subprocess over the fixture .cmt/.cmti
   files in test/scan_fixtures. Every analysis is exercised as a pair:
   a true positive asserting the documented diagnostic and location,
   and a structurally-matched true negative that must stay silent.

   The test runs from _build/default/test/scan, so the executables and
   the fixture objects are reachable by relative path. *)

let scan_exe =
  Filename.concat (Filename.concat ".." "..") "tools/pertlint/pertscan.exe"

let lint_exe =
  Filename.concat (Filename.concat ".." "..") "tools/pertlint/pertlint.exe"

let fixture_dir = "../scan_fixtures/.scan_fixtures.objs/byte"

let fixture_cmt modname =
  Printf.sprintf "%s/scan_fixtures__%s.cmt" fixture_dir modname

let fixture_cmti modname =
  Printf.sprintf "%s/scan_fixtures__%s.cmti" fixture_dir modname

(* The library wrapper module, compiled from dune's generated .ml-gen —
   a .cmt pertscan deliberately refuses to treat as a scannable unit. *)
let wrapper_cmt = Printf.sprintf "%s/scan_fixtures.cmt" fixture_dir

(* Returns (exit_code, output_lines), stderr included — the exit-2
   config errors print there. *)
let run exe args =
  let out = Filename.temp_file "pertscan" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  Sys.remove out;
  (code, lines)

let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tagged rule lines =
  List.filter (fun l -> contains_sub l (Printf.sprintf "[%s]" rule)) lines

(* A true positive: pertscan on the fixture alone exits 1 with exactly
   one line carrying the rule tag, pinned to the documented location and
   containing every documented message fragment. *)
let fires ~rule ~modname ~loc ~fragments () =
  let code, lines = run scan_exe [ fixture_cmt modname ] in
  check_int (rule ^ " exit code") 1 code;
  match tagged rule lines with
  | [ line ] ->
      check_bool
        (Printf.sprintf "%s flagged at %s" rule loc)
        true
        (contains_sub line (loc ^ ":"));
      List.iter
        (fun frag ->
          check_bool
            (Printf.sprintf "%s diagnostic mentions %S" rule frag)
            true (contains_sub line frag))
        fragments
  | other ->
      Alcotest.failf "%s: expected exactly one [%s] line, got %d" rule rule
        (List.length other)

(* A true negative: the structurally-matched clean fixture produces no
   output at all and exits 0. *)
let silent ~modname () =
  let code, lines = run scan_exe [ fixture_cmt modname ] in
  check_int (modname ^ " exit code") 0 code;
  check_int (modname ^ " is clean") 0 (List.length lines)

let s1_capture_true_positive =
  fires ~rule:"S1" ~modname:"Race_capture_bad"
    ~loc:"test/scan_fixtures/race_capture_bad.ml:7"
    ~fragments:
      [
        "mutable 'hits' (ref, allocated at \
         test/scan_fixtures/race_capture_bad.ml:6)";
        "captured (at test/scan_fixtures/race_capture_bad.ml:7)";
        "handed to Parallel.submit";
        "cross-domain data race";
      ]

let s1_global_true_positive =
  fires ~rule:"S1" ~modname:"Race_global_bad"
    ~loc:"test/scan_fixtures/race_global_bad.ml:9"
    ~fragments:
      [
        "module-level mutable 'Race_global_bad.table' (Hashtbl.t, defined \
         at test/scan_fixtures/race_global_bad.ml:6)";
        "accessed unguarded at test/scan_fixtures/race_global_bad.ml:11";
        "reachable directly";
        "handed to Parallel.map";
      ]

let s2_taint_true_positive =
  fires ~rule:"S2" ~modname:"Taint_bad"
    ~loc:"test/scan_fixtures/taint_bad.ml:8"
    ~fragments:
      [
        "Hashtbl iteration order (introduced at \
         test/scan_fixtures/taint_bad.ml:7)";
        "reaches 'Output.cell_f'";
        "run-to-run nondeterminism";
      ]

let s4_stale_true_positive =
  fires ~rule:"S4" ~modname:"Stale_allow"
    ~loc:"test/scan_fixtures/stale_allow.ml:5"
    ~fragments:
      [ "[@lint.allow \"N2\"] suppresses no diagnostic"; "stale" ]

(* S3 needs the using module and the interface in scope together: [used]
   has a cross-module reference (negative), [unused] has none
   (positive), [kept] is unreferenced but allowed. *)
let s3_scope =
  [
    fixture_cmt "Dead_export";
    fixture_cmt "Use_site";
    fixture_cmti "Dead_export";
  ]

let s3_dead_vs_used_export () =
  let code, lines = run scan_exe ([ "--rules"; "S3" ] @ s3_scope) in
  check_int "S3 exit code" 1 code;
  (match tagged "S3" lines with
  | [ line ] ->
      check_bool "S3 flagged at dead_export.mli:7" true
        (contains_sub line "test/scan_fixtures/dead_export.mli:7:");
      check_bool "S3 names the dead export" true
        (contains_sub line "'Dead_export.unused' is exported by its .mli")
  | other ->
      Alcotest.failf "expected exactly one [S3] line, got %d"
        (List.length other));
  check_bool "the referenced export is not flagged" true
    (not (List.exists (fun l -> contains_sub l "Dead_export.used'") lines));
  check_bool "the allowed export is not flagged" true
    (not (List.exists (fun l -> contains_sub l "Dead_export.kept") lines))

(* S4 vs a live allow: with S3 enabled, the [@@lint.allow "S3"] on
   [Dead_export.kept] suppresses a real diagnostic and must be credited;
   only the no-op N2 allow in stale_allow.ml is stale. *)
let s4_stale_vs_live_allow () =
  let code, lines =
    run scan_exe
      ([ "--rules"; "S3,S4" ] @ s3_scope @ [ fixture_cmt "Stale_allow" ])
  in
  check_int "S3,S4 exit code" 1 code;
  (match tagged "S4" lines with
  | [ line ] ->
      check_bool "S4 flagged at stale_allow.ml:5" true
        (contains_sub line "test/scan_fixtures/stale_allow.ml:5:")
  | other ->
      Alcotest.failf "expected exactly one [S4] line, got %d"
        (List.length other));
  check_bool "the live allow on Dead_export.kept is credited, not stale" true
    (not
       (List.exists
          (fun l ->
            contains_sub l "[S4]" && contains_sub l "dead_export.mli")
          lines))

(* The whole fixture tree under every scan rule at once: exactly the
   five documented findings, nothing from the true negatives. *)
let whole_tree_finding_counts () =
  let code, lines = run scan_exe [ "--stats"; fixture_dir ] in
  check_int "whole-tree exit code" 1 code;
  check_int "two S1 findings" 2 (List.length (tagged "S1" lines));
  check_int "one S2 finding" 1 (List.length (tagged "S2" lines));
  check_int "one S3 finding" 1 (List.length (tagged "S3" lines));
  check_int "one S4 finding" 1 (List.length (tagged "S4" lines));
  check_bool "stats total" true
    (List.exists (fun l -> contains_sub l "total: 5 violation(s)") lines)

let json_format () =
  let code, lines =
    run scan_exe [ "--format=json"; fixture_cmt "Taint_bad" ]
  in
  check_int "json exit code" 1 code;
  let blob = String.concat "\n" lines in
  List.iter
    (fun frag ->
      check_bool (Printf.sprintf "json contains %S" frag) true
        (contains_sub blob frag))
    [
      "\"rule\": \"S2\"";
      "\"file\": \"test/scan_fixtures/taint_bad.ml\"";
      "\"line\": 8";
      "\"severity\": \"error\"";
    ]

(* Exit-code contract for misdirected scopes: an empty directory (no
   .cmt at all) and a wrapper-only scope (a .cmt that is not a scannable
   implementation) are configuration errors — exit 2, never a clean 0 —
   for pertscan and pertlint alike. *)
let fresh_empty_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "pertscan_empty_scope"
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  dir

let empty_scope_is_an_error exe name () =
  let code, lines = run exe [ fresh_empty_dir () ] in
  check_int (name ^ " exit code on empty scope") 2 code;
  check_bool (name ^ " explains the empty scope") true
    (List.exists (fun l -> contains_sub l "no .cmt files") lines)

let wrapper_only_scope_is_an_error exe name () =
  let code, lines = run exe [ wrapper_cmt ] in
  check_int (name ^ " exit code on wrapper-only scope") 2 code;
  check_bool (name ^ " explains the unscannable scope") true
    (List.exists
       (fun l -> contains_sub l "none was a scannable implementation")
       lines)

let () =
  Alcotest.run "pertscan"
    [
      ( "s1-races",
        [
          ("captured local ref is a true positive", `Quick,
           s1_capture_true_positive);
          ("module-level Hashtbl is a true positive", `Quick,
           s1_global_true_positive);
          ("Mutex.protect-guarded accesses are silent", `Quick,
           silent ~modname:"Race_ok");
          ("Parallel.Guard-guarded cache is silent", `Quick,
           silent ~modname:"Guard_ok");
        ] );
      ( "s2-determinism",
        [
          ("Hashtbl-order float reaching cell_f is a true positive", `Quick,
           s2_taint_true_positive);
          ("sorted fold is silent", `Quick, silent ~modname:"Taint_ok");
        ] );
      ( "s3-s4-exports-and-allows",
        [
          ("dead export flagged, used export not", `Quick,
           s3_dead_vs_used_export);
          ("stale allow flagged, live allow credited", `Quick,
           s4_stale_vs_live_allow);
          ("stale allow alone is a true positive", `Quick,
           s4_stale_true_positive);
        ] );
      ( "driver",
        [
          ("whole fixture tree: exact finding counts", `Quick,
           whole_tree_finding_counts);
          ("json findings carry file/line/rule", `Quick, json_format);
          ("pertscan: empty scope exits 2", `Quick,
           empty_scope_is_an_error scan_exe "pertscan");
          ("pertlint: empty scope exits 2", `Quick,
           empty_scope_is_an_error lint_exe "pertlint");
          ("pertscan: wrapper-only scope exits 2", `Quick,
           wrapper_only_scope_is_an_error scan_exe "pertscan");
          ("pertlint: wrapper-only scope exits 2", `Quick,
           wrapper_only_scope_is_an_error lint_exe "pertlint");
        ] );
    ]
