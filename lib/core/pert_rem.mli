(** End-host emulation of REM (Random Exponential Marking) — the paper's
    "other AQM schemes can be potentially emulated" direction, made
    concrete.

    REM's router-side price integrates backlog and rate mismatch. At the
    end host both are visible in delay units: the backlog is the estimated
    queueing delay [Tq], and the rate mismatch is its growth, since
    [dTq/dt = (input - capacity) / capacity]. On a fixed sampling clock:

    [price(k+1) = max 0 (price(k)
                         + kappa * (alpha * (Tq(k) - tq_ref)
                                    + (Tq(k) - Tq(k-1))))]

    with response probability [1 - phi ** (-. price)] per ACK, at most
    once per RTT, exactly as in {!Pert_red}. *)

type decision = Hold | Early_response

type params = {
  kappa : float;  (** price gain, 1/seconds-of-delay *)
  alpha : float;  (** weight of the standing-delay term *)
  tq_ref : Units.Time.t;  (** target queueing delay *)
  phi : float;  (** marking base, > 1 *)
  sample_interval : Units.Time.t;
}

val default_params : params
(** [kappa = 20.], [alpha = 0.3], [tq_ref = 5 ms], [phi = 1.05],
    [sample_interval = 10 ms]. *)

type t

val create :
  ?srtt_alpha:float -> ?decrease_factor:float -> params:params -> unit -> t

val on_ack : t -> now:float -> rtt:Units.Time.t -> u:float -> decision
val probability : t -> Units.Prob.t
val price : t -> float
(* Kept despite no external caller: the four PERT-family engines
   (Pert, Pert_pi, Pert_rem, Pert_avq) expose one uniform
   introspection surface, reached through each scheme's [engine_of]
   (see {!Cc.engine}); deleting per-engine members would make the
   interfaces drift apart. *)
val srtt : t -> Srtt.t [@@lint.allow "S3"]

val decrease_factor : t -> float
val early_responses : t -> int
val note_loss : t -> now:float -> unit
