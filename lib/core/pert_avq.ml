type decision = Hold | Early_response

type params = {
  gamma : float;
  v_thresh : Units.Time.t;
  sample_interval : Units.Time.t;
}

let default_params =
  {
    gamma = 0.98;
    v_thresh = Units.Time.s 0.010;
    sample_interval = Units.Time.s 0.010;
  }

type t = {
  srtt : Srtt.t;
  p : params;
  (* seconds, pre-extracted from [p] so the per-ACK path stays float *)
  v_thresh_s : float;
  sample_interval_s : float;
  decrease_factor : float;
  mutable v : float;
  mutable prev_tq : float;
  mutable last_update : float;
  mutable next_update : float;
  mutable last_response : float;
  mutable early_responses : int;
}

(* Below this much estimated queueing delay the real queue is treated as
   idle for the busy-indicator. *)
let idle_eps = 0.0005

let create ?(srtt_alpha = 0.99) ?(decrease_factor = 0.35) ~params () =
  if params.gamma <= 0.0 || params.gamma > 1.0 then
    invalid_arg "Pert_avq.create: gamma in (0,1]";
  if Units.Time.to_s params.sample_interval <= 0.0 then
    invalid_arg "Pert_avq.create: sample_interval must be positive";
  if decrease_factor <= 0.0 || decrease_factor >= 1.0 then
    invalid_arg "Pert_avq.create: decrease_factor in (0,1)";
  {
    srtt = Srtt.create ~alpha:srtt_alpha ();
    p = params;
    v_thresh_s = Units.Time.to_s params.v_thresh;
    sample_interval_s = Units.Time.to_s params.sample_interval;
    decrease_factor;
    v = 0.0;
    prev_tq = 0.0;
    last_update = neg_infinity;
    next_update = neg_infinity;
    last_response = neg_infinity;
    early_responses = 0;
  }

let update t ~now =
  let tq = Units.Time.to_s (Srtt.queueing_delay t.srtt) in
  let dt =
    if Float.equal t.last_update neg_infinity then t.sample_interval_s
    else Float.max 0.0 (now -. t.last_update)
  in
  let busy = tq > idle_eps in
  let dv =
    if busy then tq -. t.prev_tq +. ((1.0 -. t.p.gamma) *. dt)
    else -.(t.p.gamma *. dt)
  in
  t.v <- Float.max 0.0 (t.v +. dv);
  t.prev_tq <- tq;
  t.last_update <- now

let on_ack t ~now ~rtt ~u:_ =
  Srtt.observe t.srtt rtt;
  if now >= t.next_update then begin
    update t ~now;
    t.next_update <-
      (if Float.equal t.next_update neg_infinity then
         now +. t.sample_interval_s
       else Float.max (t.next_update +. t.sample_interval_s) now)
  end;
  if
    t.v > t.v_thresh_s
    && now -. t.last_response >= Units.Time.to_s (Srtt.value t.srtt)
  then begin
    t.last_response <- now;
    t.early_responses <- t.early_responses + 1;
    (* The response drains the virtual burst, like AVQ's mark. *)
    t.v <- 0.0;
    Early_response
  end
  else Hold

let virtual_backlog t = t.v
let srtt t = t.srtt
let decrease_factor t = t.decrease_factor
let early_responses t = t.early_responses
let note_loss t ~now = t.last_response <- now
