type decision = Hold | Early_response
type gains = { gamma : float; beta : float }

let gains_of_pi ~k ~m ~delta =
  { gamma = (k /. m) +. (k *. delta /. 2.0); beta = (k /. m) -. (k *. delta /. 2.0) }

type t = {
  srtt : Srtt.t;
  gains : gains;
  target_delay : float;
  sample_interval : float;
  decrease_factor : float;
  mutable p : float;
  mutable prev_err : float;
  mutable next_update : float;
  mutable last_response : float;
  mutable early_responses : int;
}

let create ?(alpha = 0.99) ?(decrease_factor = 0.35) ~gains ~target_delay
    ~sample_interval () =
  let target_delay = Units.Time.to_s target_delay in
  let sample_interval = Units.Time.to_s sample_interval in
  if decrease_factor <= 0.0 || decrease_factor >= 1.0 then
    invalid_arg "Pert_pi.create: decrease_factor in (0,1)";
  if sample_interval <= 0.0 then
    invalid_arg "Pert_pi.create: sample_interval must be positive";
  {
    srtt = Srtt.create ~alpha ();
    gains;
    target_delay;
    sample_interval;
    decrease_factor;
    p = 0.0;
    prev_err = 0.0;
    next_update = neg_infinity;
    last_response = neg_infinity;
    early_responses = 0;
  }

(* NaN-safe: a non-finite PI state must not escape as a probability. *)
let clamp01 x = if x >= 1.0 then 1.0 else if x >= 0.0 then x else 0.0

let update_probability t =
  let err = Units.Time.to_s (Srtt.queueing_delay t.srtt) -. t.target_delay in
  t.p <- clamp01 (t.p +. (t.gains.gamma *. err) -. (t.gains.beta *. t.prev_err));
  t.prev_err <- err

let on_ack t ~now ~rtt ~u =
  Srtt.observe t.srtt rtt;
  if now >= t.next_update then begin
    update_probability t;
    t.next_update <-
      (if Float.equal t.next_update neg_infinity then now +. t.sample_interval
       else Float.max (t.next_update +. t.sample_interval) now)
  end;
  if
    now -. t.last_response >= Units.Time.to_s (Srtt.value t.srtt)
    && Units.Prob.sample (Units.Prob.v t.p) ~u
  then begin
    t.last_response <- now;
    t.early_responses <- t.early_responses + 1;
    Early_response
  end
  else Hold

let probability t = Units.Prob.v t.p
let srtt t = t.srtt
let decrease_factor t = t.decrease_factor
let early_responses t = t.early_responses
let note_loss t ~now = t.last_response <- now
