(** The PERT/PI decision engine (Section 6): replaces the gentle-RED curve
    with a discretised proportional-integral controller on queueing delay,
    per paper eq. (19):

    [p(k) = p(k-1) + gamma * (Tq(k) - Tq0) - beta * (Tq(k-1) - Tq0)]

    where [gamma = K/m + K*delta/2 > beta = K/m - K*delta/2] come from the
    bilinear transform of the continuous PI (16), [Tq0] is the target
    queueing delay (paper: 3 ms) and [delta] the sampling interval.

    As in the router PI of Hollot et al., the probability is updated on a
    fixed clock rather than per packet; between updates each ACK responds
    with the latest probability, at most once per RTT. *)

type decision = Hold | Early_response

type gains = { gamma : float; beta : float }

val gains_of_pi : k:float -> m:float -> delta:float -> gains
(** Bilinear-transform discretisation of [C_PI(s) = K (1 + s/m) / s] with
    sampling interval [delta] (paper eq. 18). *)

type t

val create :
  ?alpha:float -> ?decrease_factor:float -> gains:gains ->
  target_delay:Units.Time.t -> sample_interval:Units.Time.t -> unit -> t

val on_ack : t -> now:float -> rtt:Units.Time.t -> u:float -> decision
(** Feed one ACK. Probability updates happen lazily on the internal clock
    (every [sample_interval] seconds of [now]). *)

val probability : t -> Units.Prob.t
(** Current controller output, clamped to [\[0,1\]]. *)

(* Kept despite no external caller: the four PERT-family engines
   (Pert, Pert_pi, Pert_rem, Pert_avq) expose one uniform
   introspection surface, reached through each scheme's [engine_of]
   (see {!Cc.engine}); deleting per-engine members would make the
   interfaces drift apart. *)
val srtt : t -> Srtt.t [@@lint.allow "S3"]

val decrease_factor : t -> float
val early_responses : t -> int [@@lint.allow "S3"]
val note_loss : t -> now:float -> unit
