type decision = Hold | Early_response

type t = {
  curve : Response_curve.t;
  srtt : Srtt.t;
  decrease_factor : float;
  limit_per_rtt : bool;
  mutable last_response : float;
  mutable early_responses : int;
}

let create ?(curve = Response_curve.default) ?(alpha = 0.99)
    ?(decrease_factor = 0.35) ?(limit_per_rtt = true) () =
  if decrease_factor <= 0.0 || decrease_factor >= 1.0 then
    invalid_arg "Pert_red.create: decrease_factor in (0,1)";
  {
    curve;
    srtt = Srtt.create ~alpha ();
    decrease_factor;
    limit_per_rtt;
    last_response = neg_infinity;
    early_responses = 0;
  }

let probability t =
  if Srtt.samples t.srtt = 0 then Units.Prob.zero
  else Response_curve.probability t.curve (Srtt.queueing_delay t.srtt)

let on_ack t ~now ~rtt ~u =
  Srtt.observe t.srtt rtt;
  let p = probability t in
  (* One response per smoothed RTT at most: the reduction takes one RTT to
     show up in the signal, so responding faster overreacts. *)
  let clock_allows =
    (not t.limit_per_rtt)
    || now -. t.last_response >= Units.Time.to_s (Srtt.value t.srtt)
  in
  if clock_allows && Units.Prob.sample p ~u then begin
    t.last_response <- now;
    t.early_responses <- t.early_responses + 1;
    Early_response
  end
  else Hold

let decrease_factor t = t.decrease_factor
let srtt t = t.srtt
let early_responses t = t.early_responses
let note_loss t ~now = t.last_response <- now
