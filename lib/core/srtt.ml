type t = {
  alpha : float;
  mutable srtt : float;
  mutable min_rtt : float;
  mutable samples : int;
}

let create ?(alpha = 0.99) () =
  if alpha < 0.0 || alpha >= 1.0 then invalid_arg "Srtt.create: alpha in [0,1)";
  { alpha; srtt = 0.0; min_rtt = infinity; samples = 0 }

let observe t sample =
  let sample = Units.Time.to_s sample in
  (* A single NaN would poison the EWMA (and min_rtt) forever; reject it
     loudly instead (infinities are caught by the same finiteness test). *)
  if not (Float.is_finite sample) then
    invalid_arg "Srtt.observe: non-finite RTT";
  if sample <= 0.0 then invalid_arg "Srtt.observe: non-positive RTT";
  if t.samples = 0 then t.srtt <- sample
  else t.srtt <- (t.alpha *. t.srtt) +. ((1.0 -. t.alpha) *. sample);
  if sample < t.min_rtt then t.min_rtt <- sample;
  t.samples <- t.samples + 1

let value t =
  if t.samples = 0 then invalid_arg "Srtt.value: no samples";
  Units.Time.s t.srtt

let min_rtt t =
  if t.samples = 0 then invalid_arg "Srtt.min_rtt: no samples";
  Units.Time.s t.min_rtt

let queueing_delay t =
  if t.samples = 0 then invalid_arg "Srtt.value: no samples";
  Units.Time.s (Float.max 0.0 (t.srtt -. t.min_rtt))
let samples t = t.samples
