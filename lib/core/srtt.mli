(** The heavily smoothed RTT signal [srtt_0.99] of Section 2.4, plus
    propagation-delay (minimum-RTT) tracking.

    The estimator is the standard exponentially weighted moving average
    [srtt <- alpha * srtt + (1 - alpha) * sample] applied to {e every} RTT
    sample (one per ACK), with history weight [alpha = 0.99]. *)

type t

val create : ?alpha:float -> unit -> t
(** [alpha] is the weight of the history term, default 0.99. Must be in
    [\[0, 1)]. *)

val observe : t -> Units.Time.t -> unit
(** Feed one instantaneous RTT sample. The first sample initialises the
    average. Non-positive or non-finite samples raise [Invalid_argument]
    (a NaN would otherwise poison the EWMA forever). *)

val value : t -> Units.Time.t
(** Current smoothed RTT. Raises [Invalid_argument] before any sample. *)

val min_rtt : t -> Units.Time.t
(** Smallest sample seen — the propagation-delay estimate [P]. Raises
    [Invalid_argument] before any sample. *)

val queueing_delay : t -> Units.Time.t
(** [value t - min_rtt t], clamped at 0. *)

val samples : t -> int
(** Number of samples observed. *)
