module Time = Units.Time
module Prob = Units.Prob

type t = { t_min : Time.t; t_max : Time.t; p_max : Prob.t }

let make ~t_min ~t_max ~p_max =
  if not (0.0 < Time.to_s t_min && Time.compare t_min t_max < 0) then
    invalid_arg "Response_curve.make: need 0 < t_min < t_max";
  if not (Prob.positive p_max) then
    invalid_arg "Response_curve.make: need 0 < p_max <= 1";
  { t_min; t_max; p_max }

let default =
  { t_min = Time.s 0.005; t_max = Time.s 0.010; p_max = Prob.v 0.05 }

let probability t qd =
  let qd = Time.to_s qd in
  let t_min = Time.to_s t.t_min
  and t_max = Time.to_s t.t_max
  and p_max = Prob.to_float t.p_max in
  Prob.v
    (if qd < t_min then 0.0
     else if qd < t_max then p_max *. (qd -. t_min) /. (t_max -. t_min)
     else if qd < 2.0 *. t_max then
       p_max +. ((1.0 -. p_max) *. (qd -. t_max) /. t_max)
     else 1.0)

let slope t =
  Prob.to_float t.p_max /. (Time.to_s t.t_max -. Time.to_s t.t_min)
