type t = { t_min : float; t_max : float; p_max : float }

let make ~t_min ~t_max ~p_max =
  if not (0.0 < t_min && t_min < t_max) then
    invalid_arg "Response_curve.make: need 0 < t_min < t_max";
  if not (0.0 < p_max && p_max <= 1.0) then
    invalid_arg "Response_curve.make: need 0 < p_max <= 1";
  { t_min; t_max; p_max }

let default = { t_min = 0.005; t_max = 0.010; p_max = 0.05 }

let probability t qd =
  if qd < t.t_min then 0.0
  else if qd < t.t_max then
    t.p_max *. (qd -. t.t_min) /. (t.t_max -. t.t_min)
  else if qd < 2.0 *. t.t_max then
    t.p_max +. ((1.0 -. t.p_max) *. (qd -. t.t_max) /. t.t_max)
  else 1.0

let slope t = t.p_max /. (t.t_max -. t.t_min)
