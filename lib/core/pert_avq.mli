(** End-host emulation of AVQ (Adaptive Virtual Queue) — the last entry on
    the paper's list of candidate AQM schemes to emulate.

    AVQ marks when a virtual queue served at [gamma * C] overflows. In
    delay units the virtual backlog [V] (seconds) evolves, while the real
    queue is busy, as

    [V' = dTq/dt + (1 - gamma)]

    (the real input rate is [C (1 + dTq/dt)], the virtual service rate
    [gamma * C]); while the real queue is idle the virtual queue drains at
    [gamma]. The end host integrates this from its queueing-delay
    estimate on a fixed sampling clock and issues an early response —
    at most once per RTT — whenever [V] exceeds [v_thresh] (the virtual
    buffer, in seconds); responding resets [V], like a mark draining the
    burst.

    This is an original delay-domain transcription (the paper only names
    AVQ as future work); its fidelity claim is behavioural — early
    response before loss at a target utilisation [gamma] — not numeric
    equivalence with the router implementation. *)

type decision = Hold | Early_response

type params = {
  gamma : float;  (** target utilisation, e.g. 0.98 *)
  v_thresh : Units.Time.t;  (** virtual buffer in delay units, e.g. 10 ms *)
  sample_interval : Units.Time.t;
}

val default_params : params
(** [gamma = 0.98], [v_thresh = 10 ms], [sample_interval = 10 ms]. *)

type t

val create :
  ?srtt_alpha:float -> ?decrease_factor:float -> params:params -> unit -> t

val on_ack : t -> now:float -> rtt:Units.Time.t -> u:float -> decision
(** [u] is accepted for interface uniformity; AVQ's marking is
    deterministic (threshold-crossing), so it is ignored. *)

val virtual_backlog : t -> float

(* Kept despite no external caller: the four PERT-family engines
   (Pert, Pert_pi, Pert_rem, Pert_avq) expose one uniform
   introspection surface, reached through each scheme's [engine_of]
   (see {!Cc.engine}); deleting per-engine members would make the
   interfaces drift apart. *)
val srtt : t -> Srtt.t [@@lint.allow "S3"]
val decrease_factor : t -> float
val early_responses : t -> int
val note_loss : t -> now:float -> unit
