type decision = Hold | Early_response

type params = {
  kappa : float;
  alpha : float;
  tq_ref : Units.Time.t;
  phi : float;
  sample_interval : Units.Time.t;
}

let default_params =
  {
    kappa = 20.0;
    alpha = 0.3;
    tq_ref = Units.Time.s 0.005;
    phi = 1.05;
    sample_interval = Units.Time.s 0.010;
  }

type t = {
  srtt : Srtt.t;
  p : params;
  (* seconds, pre-extracted from [p] so the per-ACK path stays float *)
  tq_ref_s : float;
  sample_interval_s : float;
  decrease_factor : float;
  mutable price : float;
  mutable prev_tq : float;
  mutable next_update : float;
  mutable last_response : float;
  mutable early_responses : int;
}

let create ?(srtt_alpha = 0.99) ?(decrease_factor = 0.35) ~params () =
  if params.phi <= 1.0 then invalid_arg "Pert_rem.create: phi must exceed 1";
  if Units.Time.to_s params.sample_interval <= 0.0 then
    invalid_arg "Pert_rem.create: sample_interval must be positive";
  if decrease_factor <= 0.0 || decrease_factor >= 1.0 then
    invalid_arg "Pert_rem.create: decrease_factor in (0,1)";
  {
    srtt = Srtt.create ~alpha:srtt_alpha ();
    p = params;
    tq_ref_s = Units.Time.to_s params.tq_ref;
    sample_interval_s = Units.Time.to_s params.sample_interval;
    decrease_factor;
    price = 0.0;
    prev_tq = 0.0;
    next_update = neg_infinity;
    last_response = neg_infinity;
    early_responses = 0;
  }

let probability t = Units.Prob.v (1.0 -. (t.p.phi ** -.t.price))
let price t = t.price

let update_price t =
  let tq = Units.Time.to_s (Srtt.queueing_delay t.srtt) in
  t.price <-
    Float.max 0.0
      (t.price
      +. (t.p.kappa
         *. ((t.p.alpha *. (tq -. t.tq_ref_s)) +. (tq -. t.prev_tq))));
  t.prev_tq <- tq

let on_ack t ~now ~rtt ~u =
  Srtt.observe t.srtt rtt;
  if now >= t.next_update then begin
    update_price t;
    t.next_update <-
      (if Float.equal t.next_update neg_infinity then
         now +. t.sample_interval_s
       else Float.max (t.next_update +. t.sample_interval_s) now)
  end;
  if
    now -. t.last_response >= Units.Time.to_s (Srtt.value t.srtt)
    && Units.Prob.sample (probability t) ~u
  then begin
    t.last_response <- now;
    t.early_responses <- t.early_responses + 1;
    Early_response
  end
  else Hold

let srtt t = t.srtt
let decrease_factor t = t.decrease_factor
let early_responses t = t.early_responses
let note_loss t ~now = t.last_response <- now
