(** The PERT decision engine emulating gentle RED (Sections 3–4).

    Pure and simulator-agnostic: feed it one RTT sample per ACK together
    with the current clock and a uniform random draw; it answers whether
    the sender should perform a probabilistic early window reduction.

    Behavioural rules from the paper:
    - the congestion signal is {!Srtt} with history weight 0.99;
    - response probability comes from {!Response_curve} applied to the
      estimated queueing delay;
    - early responses are limited to at most once per (smoothed) RTT,
      because the effect of a reduction is not visible any sooner;
    - an early response is a multiplicative decrease by factor
      [decrease_factor] (paper: 0.35, i.e. [cwnd <- 0.65 * cwnd]), chosen
      from the buffer-sizing rule B > f/(1-f) * BDP with B = BDP/2. *)

type decision =
  | Hold  (** no early response on this ACK *)
  | Early_response
      (** reduce the window multiplicatively by {!decrease_factor} *)

type t

val create :
  ?curve:Response_curve.t -> ?alpha:float -> ?decrease_factor:float ->
  ?limit_per_rtt:bool -> unit -> t
(** [alpha] is the srtt history weight (default 0.99); [decrease_factor]
    the early multiplicative decrease (default 0.35, must be in (0,1));
    [limit_per_rtt] (default [true]) enforces the at-most-one-response-
    per-RTT rule — disabling it exists only for the ablation study. *)

val on_ack : t -> now:float -> rtt:Units.Time.t -> u:float -> decision
(** [on_ack t ~now ~rtt ~u] processes one ACK carrying RTT sample [rtt] at
    time [now]; [u] is a uniform [\[0,1)] draw supplied by the caller (keeps
    the core free of RNG policy). *)

val decrease_factor : t -> float
(** The factor [f]: on [Early_response] set [cwnd <- (1 - f) * cwnd]. *)

val srtt : t -> Srtt.t
(** The underlying smoothed-RTT estimator (read-only use intended). *)

val probability : t -> Units.Prob.t
(** Response probability implied by the current smoothed signal; 0 before
    any sample. *)

val early_responses : t -> int
(** Count of [Early_response] decisions issued. *)

val note_loss : t -> now:float -> unit
(** Tell the engine a real loss response happened at [now]; this also
    restarts the once-per-RTT clock so the loss response and an early
    response cannot double-fire within the same RTT. *)
