(** The gentle-RED-shaped probabilistic response curve of PERT (paper
    Fig. 5), expressed on estimated {e queueing delay} (smoothed RTT minus
    propagation delay).

    Probability of an early window reduction per ACK:
    - 0 below [t_min];
    - linear from 0 to [p_max] on [\[t_min, t_max)];
    - linear from [p_max] to 1 on [\[t_max, 2 t_max)] (the "gentle" region);
    - 1 at and above [2 t_max].

    The paper's fixed thresholds are [t_min = P + 5 ms] and
    [t_max = P + 10 ms] where [P] is the propagation delay, i.e. 5 ms and
    10 ms of queueing delay. *)

type t = private {
  t_min : Units.Time.t;
  t_max : Units.Time.t;
  p_max : Units.Prob.t;
}

val make :
  t_min:Units.Time.t -> t_max:Units.Time.t -> p_max:Units.Prob.t -> t
(** Raises [Invalid_argument] unless [0 < t_min < t_max] and [p_max > 0]
    ([p_max <= 1] holds by {!Units.Prob.t} construction). *)

val default : t
(** [t_min = 5 ms], [t_max = 10 ms], [p_max = 0.05] — the paper's values. *)

val probability : t -> Units.Time.t -> Units.Prob.t
(** [probability t qd] is the response probability for queueing delay
    [qd]. Total: negative inputs give 0. *)

val slope : t -> float
(** [p_max /. (t_max -. t_min)] — the loss-function gain [L_PERT] used by
    the stability analysis (paper eq. 10). *)
