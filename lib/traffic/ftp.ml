module Sim = Sim_engine.Sim
module Rng = Sim_engine.Rng

let spawn topo ~pairs ~cc_factory ?(ecn = false) ?(start_window = (0.0, 0.0))
    () =
  let sim = Netsim.Topology.sim topo in
  let rng = Rng.split (Sim.rng sim) in
  let lo, hi = start_window in
  List.map
    (fun (src, dst) ->
      let start =
        Units.Time.s (if hi > lo then Rng.uniform rng lo hi else lo)
      in
      Tcpstack.Flow.create topo ~src ~dst ~cc:(cc_factory ()) ~ecn ~start ())
    pairs
