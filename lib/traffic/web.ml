module Sim = Sim_engine.Sim
module Rng = Sim_engine.Rng
module Flow = Tcpstack.Flow

type params = {
  think_mean : float;
  objects_per_page : float;
  size_shape : float;
  size_min_pkts : int;
  size_cap_pkts : int;
}

let default_params =
  {
    think_mean = 10.0;
    objects_per_page = 4.0;
    size_shape = 1.2;
    size_min_pkts = 2;
    size_cap_pkts = 200;
  }

type stats = {
  mutable objects_completed : int;
  mutable pkts_completed : int;
}

let object_size rng p =
  let raw =
    Rng.bounded_pareto rng ~shape:p.size_shape
      ~scale:(float_of_int p.size_min_pkts)
      ~cap:(float_of_int p.size_cap_pkts)
  in
  max p.size_min_pkts (Units.Round.trunc raw)

let start_sessions topo ~n ~src_pool ~dst_pool ~cc_factory ?(ecn = false)
    ?(params = default_params) ?until () =
  if Array.length src_pool = 0 || Array.length dst_pool = 0 then
    invalid_arg "Web.start_sessions: empty node pool";
  let sim = Netsim.Topology.sim topo in
  let until =
    match until with Some u -> Units.Time.to_s u | None -> infinity
  in
  let stats = { objects_completed = 0; pkts_completed = 0 } in
  let session rng =
    (* Fetch [remaining] objects of the current page sequentially, then
       think and start the next page. *)
    let rec think () =
      (* Heavy-tailed OFF periods (bounded Pareto, mean ~ think_mean):
         the variability-of-load ingredient of the Feldmann model; long
         quiet spells let bottleneck queues drain. *)
      let shape = 1.2 in
      let scale = params.think_mean *. (shape -. 1.0) /. shape in
      let delay =
        Rng.bounded_pareto rng ~shape ~scale ~cap:(50.0 *. params.think_mean)
      in
      Sim.after sim (Units.Time.s delay) (fun () ->
          if Sim.now sim < until then page ())
    and page () =
      let objects = Rng.geometric rng (1.0 /. params.objects_per_page) in
      let src = src_pool.(Rng.int rng (Array.length src_pool)) in
      let dst = dst_pool.(Rng.int rng (Array.length dst_pool)) in
      fetch src dst objects
    and fetch src dst remaining =
      if remaining <= 0 then think ()
      else begin
        let size = object_size rng params in
        let on_complete _flow =
          stats.objects_completed <- stats.objects_completed + 1;
          stats.pkts_completed <- stats.pkts_completed + size;
          fetch src dst (remaining - 1)
        in
        ignore
          (Flow.create topo ~src ~dst ~cc:(cc_factory ()) ~ecn
             ~total_pkts:size ~on_complete ())
      end
    in
    think ()
  in
  for _ = 1 to n do
    session (Rng.split (Sim.rng sim))
  done;
  stats
