(** Web-session workload in the spirit of Feldmann et al. (SIGCOMM 1999),
    the model the paper cites for its web-traffic mix: each session
    alternates think times and pages; a page is a burst of objects with
    heavy-tailed (bounded-Pareto) sizes, each object fetched over a fresh
    short TCP connection. *)

type params = {
  think_mean : float;  (** s, exponential inter-page think time *)
  objects_per_page : float;
      (** mean of the geometric number of objects per page *)
  size_shape : float;  (** Pareto tail index of object sizes *)
  size_min_pkts : int;  (** minimum object size, packets *)
  size_cap_pkts : int;  (** truncation of the size distribution *)
}

(* Kept with no current caller (pertscan S3): every [params] record in
   the tree ships its paper defaults; callers currently build explicit
   params but the baseline remains the reference configuration. *)
val default_params : params [@@lint.allow "S3"]
(** [think_mean = 10.0] (heavy-tailed, bounded Pareto),
    [objects_per_page = 4.0], [size_shape = 1.2], [size_min_pkts = 2],
    [size_cap_pkts = 200] — mean object ≈ 12 KB, mean session load a few
    tens of kbit/s, as in typical web-browsing models. *)

type stats = {
  mutable objects_completed : int;
  mutable pkts_completed : int;
}

val start_sessions :
  Netsim.Topology.t ->
  n:int ->
  src_pool:Netsim.Node.t array ->
  dst_pool:Netsim.Node.t array ->
  cc_factory:(unit -> Tcpstack.Cc.t) ->
  ?ecn:bool ->
  ?params:params ->
  ?until:Units.Time.t ->
  unit ->
  stats
(** Launch [n] independent sessions; each picks a uniform (src, dst) pair
    per page. New pages stop being generated after [until] (default:
    never); in-flight transfers finish naturally. *)
