module Sim = Sim_engine.Sim
module Packet = Netsim.Packet
module Node = Netsim.Node

(* CBR shares the per-simulation id space with TCP flows via a distinct
   negative range to avoid colliding with Flow's ids. *)
let fresh_cbr_id sim = -1 - Sim.fresh_id sim

type t = {
  sim : Sim.t;
  src : Node.t;
  dst : Node.t;
  id : int;
  factory : Packet.factory;
  interval : float;
  stop : float;
  mutable sent : int;
  mutable received : int;
  mutable halted : bool;
}

let start topo ~src ~dst ~rate ?start ?stop () =
  if Units.Rate.to_bps rate <= 0.0 then invalid_arg "Cbr.start: rate must be positive";
  let sim = Netsim.Topology.sim topo in
  let id = fresh_cbr_id sim in
  let t =
    {
      sim;
      src;
      dst;
      id;
      factory = Packet.factory ();
      interval = float_of_int (8 * Packet.data_size) /. Units.Rate.to_bps rate;
      stop = (match stop with Some s -> Units.Time.to_s s | None -> infinity);
      sent = 0;
      received = 0;
      halted = false;
    }
  in
  Node.attach_agent dst ~flow:id (fun _pkt -> t.received <- t.received + 1);
  let rec emit () =
    if (not t.halted) && Sim.now sim < t.stop then begin
      let pkt =
        Packet.data t.factory ~flow:id ~src:(Node.id src) ~dst:(Node.id dst)
          ~seq:t.sent ~ecn:false ~now:(Sim.now sim) ()
      in
      t.sent <- t.sent + 1;
      Node.receive src pkt;
      Sim.after sim (Units.Time.s t.interval) emit
    end
  in
  let start_time =
    match start with Some s -> s | None -> Units.Time.s (Sim.now sim)
  in
  Sim.at sim start_time emit;
  t

let sent t = t.sent
let received t = t.received

let halt t =
  t.halted <- true;
  Node.detach_agent t.dst ~flow:t.id
