(** Long-lived ("FTP") flows — the paper's long-term background traffic. *)

val spawn :
  Netsim.Topology.t ->
  pairs:(Netsim.Node.t * Netsim.Node.t) list ->
  cc_factory:(unit -> Tcpstack.Cc.t) ->
  ?ecn:bool ->
  ?start_window:float * float ->
  unit ->
  Tcpstack.Flow.t list
(** One unbounded flow per [(src, dst)] pair, each starting at a uniform
    random time within [start_window] (default [(0, 0)]: all at 0) — the
    paper staggers starts over [(0, 50)] s to exercise fairness between
    flows arriving at different times. *)
