(** Constant-bit-rate, non-responsive traffic (UDP-like), used for the
    paper's transient experiments with unresponsive cross-traffic. *)

type t

val start :
  Netsim.Topology.t -> src:Netsim.Node.t -> dst:Netsim.Node.t ->
  rate:Units.Rate.t -> ?start:Units.Time.t -> ?stop:Units.Time.t -> unit -> t
(** Emit [Packet.data_size]-byte packets at [rate] from [start]
    (default now) until [stop] (default: forever). *)

val sent : t -> int
val received : t -> int
val halt : t -> unit
