(** The state machine of the paper's Fig. 1 and the derived metrics of
    Sections 2.2–2.4.

    Given the predictor's boolean signal over the trace samples and a set
    of loss times (flow-level or queue-level), replay the A/B/C machine
    and count transitions:

    - "1" A→B: congestion predicted;
    - "2" B→C: a loss while congestion was predicted (correct prediction);
    - "4" A→C: a loss with no warning (false negative);
    - "5" B→A: prediction withdrawn without a loss (false positive).

    Losses closer together than [loss_merge] collapse into a single C
    visit (one buffer-overflow episode drops many packets); after a C
    visit the machine returns to state A (the responding flows drain the
    queue). *)

type counts = {
  a_to_b : int;
  b_to_c : int;
  a_to_c : int;
  b_to_a : int;
  loss_episodes : int;
}

val count :
  times:float array -> states:bool array -> losses:float array ->
  ?loss_merge:float -> unit -> counts
(** [loss_merge] defaults to 0.2 s. *)

val efficiency : counts -> float
(** ["2" / ("2" + "5")] — fraction of predictions followed by a loss.
    0 if no B-state exits at all. *)

val false_positive_rate : counts -> float
(** ["5" / ("2" + "5")]. *)

val false_negative_rate : counts -> float
(** ["4" / ("2" + "4")]. *)

val false_positive_times :
  times:float array -> states:bool array -> losses:float array ->
  ?loss_merge:float -> unit -> float array
(** Times of the "5" (B→A) transitions — used to sample the queue
    occupancy for the paper's Fig. 4. *)
