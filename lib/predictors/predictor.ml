type t = { name : string; predict : Trace.t -> bool array }

(* Expand decisions taken at a sparse set of indices into a full
   per-sample signal by holding the last decision. *)
let hold_between trace indices decisions =
  let n = Trace.length trace in
  let out = Array.make n false in
  let k = ref 0 and cur = ref false in
  for i = 0 to n - 1 do
    if !k < Array.length indices && indices.(!k) = i then begin
      cur := decisions.(!k);
      incr k
    end;
    out.(i) <- !cur
  done;
  out

let card ?(threshold = 0.0) () =
  let predict (trace : Trace.t) =
    let idx = Trace.per_rtt_indices trace in
    let m = Array.length idx in
    let decisions = Array.make m false in
    for k = 1 to m - 1 do
      let r1 = trace.Trace.rtts.(idx.(k)) and r0 = trace.Trace.rtts.(idx.(k - 1)) in
      let ndg = (r1 -. r0) /. (r1 +. r0) in
      decisions.(k) <- ndg > threshold
    done;
    hold_between trace idx decisions
  in
  { name = "card"; predict }

let tri_s ?(threshold = 0.0) () =
  let predict (trace : Trace.t) =
    let idx = Trace.per_rtt_indices trace in
    let m = Array.length idx in
    let decisions = Array.make m false in
    (* Throughput of epoch k: ACKs between decision points k-1 and k per
       unit time. *)
    let tput k =
      let samples = float_of_int (idx.(k) - idx.(k - 1)) in
      let span = trace.Trace.times.(idx.(k)) -. trace.Trace.times.(idx.(k - 1)) in
      if span <= 0.0 then 0.0 else samples /. span
    in
    for k = 2 to m - 1 do
      let t1 = tput k and t0 = tput (k - 1) in
      if t1 +. t0 > 0.0 then
        let ntg = (t1 -. t0) /. (t1 +. t0) in
        decisions.(k) <- ntg < threshold
    done;
    hold_between trace idx decisions
  in
  { name = "tri-s"; predict }

let dual () =
  let predict (trace : Trace.t) =
    let idx = Trace.per_rtt_indices trace in
    let m = Array.length idx in
    let decisions = Array.make m false in
    let rmin = ref infinity and rmax = ref neg_infinity in
    for k = 0 to m - 1 do
      let r = trace.Trace.rtts.(idx.(k)) in
      if r < !rmin then rmin := r;
      if r > !rmax then rmax := r;
      decisions.(k) <- r > (!rmin +. !rmax) /. 2.0
    done;
    hold_between trace idx decisions
  in
  { name = "dual"; predict }

let vegas ?(beta = 3.0) () =
  let predict (trace : Trace.t) =
    let idx = Trace.per_rtt_indices trace in
    let m = Array.length idx in
    let decisions = Array.make m false in
    let base = ref infinity in
    for k = 0 to m - 1 do
      let i = idx.(k) in
      let r = trace.Trace.rtts.(i) in
      if r < !base then base := r;
      let w = trace.Trace.cwnds.(i) in
      if Float.is_nan w then
        invalid_arg "Predictor.vegas: trace has no cwnd record";
      let diff = w *. (1.0 -. (!base /. r)) in
      decisions.(k) <- diff > beta
    done;
    hold_between trace idx decisions
  in
  { name = "vegas"; predict }

let cim ?(short = 5) ?(long = 50) ?(margin = 0.05) () =
  if short <= 0 || long <= short then invalid_arg "Predictor.cim";
  let predict (trace : Trace.t) =
    let n = Trace.length trace in
    let out = Array.make n false in
    let sum_short = ref 0.0 and sum_long = ref 0.0 in
    for i = 0 to n - 1 do
      let r = trace.Trace.rtts.(i) in
      sum_short := !sum_short +. r;
      sum_long := !sum_long +. r;
      if i >= short then sum_short := !sum_short -. trace.Trace.rtts.(i - short);
      if i >= long then sum_long := !sum_long -. trace.Trace.rtts.(i - long);
      if i >= long - 1 then begin
        let ma_short = !sum_short /. float_of_int short in
        let ma_long = !sum_long /. float_of_int long in
        out.(i) <- ma_short > ma_long *. (1.0 +. margin)
      end
    done;
    out
  in
  { name = "cim"; predict }

let threshold_signal trace signal offset =
  Array.map (fun v -> v > trace.Trace.base_rtt +. offset) signal

let inst_threshold ?(offset = 0.005) () =
  let predict (trace : Trace.t) =
    threshold_signal trace trace.Trace.rtts offset
  in
  { name = "inst-rtt"; predict }

let moving_average ~window ?(offset = 0.005) () =
  if window <= 0 then invalid_arg "Predictor.moving_average";
  let predict (trace : Trace.t) =
    let n = Trace.length trace in
    let smoothed = Array.make n 0.0 in
    let sum = ref 0.0 in
    for i = 0 to n - 1 do
      sum := !sum +. trace.Trace.rtts.(i);
      if i >= window then sum := !sum -. trace.Trace.rtts.(i - window);
      smoothed.(i) <- !sum /. float_of_int (min (i + 1) window)
    done;
    threshold_signal trace smoothed offset
  in
  { name = Printf.sprintf "ma-%d" window; predict }

let ewma ~alpha ?(offset = 0.005) () =
  if alpha < 0.0 || alpha >= 1.0 then invalid_arg "Predictor.ewma";
  let predict (trace : Trace.t) =
    let n = Trace.length trace in
    let smoothed = Array.make n 0.0 in
    let cur = ref 0.0 in
    for i = 0 to n - 1 do
      let r = trace.Trace.rtts.(i) in
      if i = 0 then cur := r else cur := (alpha *. !cur) +. ((1.0 -. alpha) *. r);
      smoothed.(i) <- !cur
    done;
    threshold_signal trace smoothed offset
  in
  { name = Printf.sprintf "ewma-%g" alpha; predict }

let standard_set ~buffer_pkts =
  [
    card ();
    tri_s ();
    dual ();
    vegas ();
    cim ();
    inst_threshold ();
    moving_average ~window:buffer_pkts ();
    ewma ~alpha:0.875 ();
    ewma ~alpha:0.99 ();
  ]
