type counts = {
  a_to_b : int;
  b_to_c : int;
  a_to_c : int;
  b_to_a : int;
  loss_episodes : int;
}

(* Merge loss timestamps closer than [merge] into episode start times. *)
let merge_losses losses merge =
  let n = Array.length losses in
  if n = 0 then [||]
  else begin
    let sorted = Array.copy losses in
    Array.sort compare sorted;
    let acc = ref [ sorted.(0) ] and count = ref 1 in
    for i = 1 to n - 1 do
      match !acc with
      | last :: _ when sorted.(i) -. last >= merge ->
          acc := sorted.(i) :: !acc;
          incr count
      | _ -> ()
    done;
    let out = Array.make !count 0.0 in
    List.iteri (fun k v -> out.(!count - 1 - k) <- v) !acc;
    out
  end

(* Replay the machine, calling [on_transition] with a tag for each
   transition among `AB, `BC, `AC, `BA, at its time. *)
let replay ~times ~states ~losses ~loss_merge on_transition =
  let n = Array.length times in
  if Array.length states <> n then invalid_arg "Transitions: length mismatch";
  let episodes = merge_losses losses loss_merge in
  let n_loss = Array.length episodes in
  let in_b = ref false in
  let li = ref 0 in
  for i = 0 to n - 1 do
    (* Process loss episodes that happened before this sample. *)
    while !li < n_loss && episodes.(!li) <= times.(i) do
      on_transition (if !in_b then `BC else `AC) episodes.(!li);
      in_b := false;
      incr li
    done;
    if states.(i) && not !in_b then begin
      on_transition `AB times.(i);
      in_b := true
    end
    else if (not states.(i)) && !in_b then begin
      on_transition `BA times.(i);
      in_b := false
    end
  done;
  (* Losses after the last sample. *)
  while !li < n_loss do
    on_transition (if !in_b then `BC else `AC) episodes.(!li);
    in_b := false;
    incr li
  done;
  n_loss

let count ~times ~states ~losses ?(loss_merge = 0.2) () =
  let a_to_b = ref 0 and b_to_c = ref 0 and a_to_c = ref 0 and b_to_a = ref 0 in
  let loss_episodes =
    replay ~times ~states ~losses ~loss_merge (fun tag _ ->
        match tag with
        | `AB -> incr a_to_b
        | `BC -> incr b_to_c
        | `AC -> incr a_to_c
        | `BA -> incr b_to_a)
  in
  {
    a_to_b = !a_to_b;
    b_to_c = !b_to_c;
    a_to_c = !a_to_c;
    b_to_a = !b_to_a;
    loss_episodes;
  }

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let efficiency c = ratio c.b_to_c (c.b_to_c + c.b_to_a)
let false_positive_rate c = ratio c.b_to_a (c.b_to_c + c.b_to_a)
let false_negative_rate c = ratio c.a_to_c (c.b_to_c + c.a_to_c)

let false_positive_times ~times ~states ~losses ?(loss_merge = 0.2) () =
  let acc = ref [] and count = ref 0 in
  let _ =
    replay ~times ~states ~losses ~loss_merge (fun tag time ->
        match tag with
        | `BA ->
            acc := time :: !acc;
            incr count
        | `AB | `BC | `AC -> ())
  in
  let out = Array.make !count 0.0 in
  List.iteri (fun k v -> out.(!count - 1 - k) <- v) !acc;
  out
