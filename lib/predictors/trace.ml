type t = {
  times : float array;
  rtts : float array;
  cwnds : float array;
  flow_losses : float array;
  queue_losses : float array;
  queue_occupancy : float -> float;
  base_rtt : float;
}

let make ~times ~rtts ?cwnds ~flow_losses ~queue_losses ?queue_occupancy () =
  let n = Array.length times in
  if Array.length rtts <> n then invalid_arg "Trace.make: length mismatch";
  let cwnds =
    match cwnds with
    | Some c ->
        if Array.length c <> n then invalid_arg "Trace.make: cwnds length";
        c
    | None -> Array.make n Float.nan
  in
  let queue_occupancy =
    match queue_occupancy with Some f -> f | None -> fun _ -> 0.0
  in
  let base_rtt = Array.fold_left Float.min infinity rtts in
  { times; rtts; cwnds; flow_losses; queue_losses; queue_occupancy; base_rtt }

let length t = Array.length t.times

let per_rtt_indices t =
  let n = Array.length t.times in
  let acc = ref [] and count = ref 0 in
  let last = ref neg_infinity in
  for i = 0 to n - 1 do
    if t.times.(i) -. !last >= t.rtts.(i) then begin
      acc := i :: !acc;
      incr count;
      last := t.times.(i)
    end
  done;
  let out = Array.make !count 0 in
  List.iteri (fun k i -> out.(!count - 1 - k) <- i) !acc;
  out
