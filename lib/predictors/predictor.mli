(** End-host congestion predictors of Sections 2.3–2.4.

    A predictor converts a {!Trace.t} into a boolean signal over the
    trace's sample points: [true] = "high congestion predicted" (state B
    of the paper's Fig. 1), [false] = state A. Predictors that sample once
    per RTT hold their last decision between decision points.

    Adaptations from the original schemes (which consume live connection
    state) to offline traces are noted per constructor. *)

type t = { name : string; predict : Trace.t -> bool array }

val card : ?threshold:float -> unit -> t
(** CARD (Jain 1989): once per RTT, the normalised delay gradient
    [(rtt_i - rtt_j) / (rtt_i + rtt_j)] between consecutive per-RTT
    samples; congestion when the gradient exceeds [threshold]
    (default 0): delay rising. *)

val tri_s : ?threshold:float -> unit -> t
(** TRI-S (Wang & Crowcroft 1991): normalised throughput gradient, with
    throughput measured as ACKs per RTT epoch; congestion when the
    gradient falls below [threshold] (default 0): throughput flattened
    while the window kept growing. *)

val dual : unit -> t
(** DUAL (Wang & Crowcroft 1992): congestion when the current per-RTT
    sample exceeds [(rtt_min + rtt_max) / 2], extremes tracked online. *)

val vegas : ?beta:float -> unit -> t
(** Vegas (Brakmo 1994): once per RTT, backlog
    [diff = cwnd * (1 - base_rtt / rtt)]; congestion when
    [diff > beta] (default 3 packets). Requires [cwnds] in the trace. *)

val cim : ?short:int -> ?long:int -> ?margin:float -> unit -> t
(** CIM (Martin et al. 2003): moving average of the last [short]
    (default 5) samples vs the last [long] (default 50); congestion when
    the short average exceeds the long one by [margin] (default 5%). *)

val inst_threshold : ?offset:float -> unit -> t
(** Section 2.4 "instantaneous RTT": per-ACK sample compared against
    [base_rtt + offset] (default 5 ms — the PERT [T_min]). *)

val moving_average : window:int -> ?offset:float -> unit -> t
(** Section 2.4 moving average over the last [window] samples (the paper
    uses the bottleneck buffer size in packets), same threshold. *)

val ewma : alpha:float -> ?offset:float -> unit -> t
(** Section 2.4 smoothed RTT with history weight [alpha] (7/8 or 0.99),
    same threshold. [ewma ~alpha:0.99 ()] is the paper's [srtt_0.99]. *)

val standard_set : buffer_pkts:int -> t list
(** The nine predictors of Fig. 3, in paper order: CARD, TRI-S, DUAL,
    Vegas, CIM, inst-RTT, MA(buffer), EWMA(7/8), EWMA(0.99). *)
