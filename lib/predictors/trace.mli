(** The raw material of the Section 2 study: per-ACK RTT samples of one
    observed flow, the flow's own loss-detection times, the bottleneck
    queue's drop times, and a way to read the (normalised) queue occupancy
    at a given time. *)

type t = {
  times : float array;  (** per-ACK sample times, nondecreasing *)
  rtts : float array;  (** instantaneous RTT samples, same length *)
  cwnds : float array;
      (** sender congestion window at each sample (needed by the Vegas
          predictor), same length *)
  flow_losses : float array;  (** times the observed flow detected a loss *)
  queue_losses : float array;  (** times of drops at the bottleneck queue *)
  queue_occupancy : float -> float;
      (** normalised bottleneck occupancy in [\[0,1\]] at a time *)
  base_rtt : float;  (** minimum RTT over the trace *)
}

val make :
  times:float array -> rtts:float array -> ?cwnds:float array ->
  flow_losses:float array -> queue_losses:float array ->
  ?queue_occupancy:(float -> float) -> unit -> t
(** Validates lengths; [base_rtt] is computed. [cwnds] defaults to all-NaN
    (predictors needing it will raise), [queue_occupancy] to [fun _ -> 0.]. *)

val length : t -> int

val per_rtt_indices : t -> int array
(** Indices of samples spaced roughly one RTT apart — the once-per-RTT
    sampling used by CARD, TRI-S, DUAL and Vegas. *)
