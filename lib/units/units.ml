(* Each wrapper is [private float] (or [private int]) in the interface:
   construction goes through the smart constructors below, reading back is
   a no-op, and every operation compiles to the same instruction the bare
   representation would — the dimension exists only at type-checking
   time. Keep the functions tiny so the non-flambda inliner erases the
   calls in hot paths. *)

module Time = struct
  type t = float

  let zero = 0.0

  let s x =
    if Float.is_nan x then invalid_arg "Units.Time.s: NaN";
    x

  let of_s = s
  let to_s t = t

  let ms x = s (x *. 1e-3)
  let to_ms t = t *. 1e3
  let us x = s (x *. 1e-6)
  let to_us t = t *. 1e6
  let add a b = a +. b
  let sub a b = a -. b
  let scale k t = k *. t
  let ratio a b = a /. b
  let min = Float.min
  let max = Float.max
  let equal = Float.equal
  let compare = Float.compare
  let is_finite = Float.is_finite
  let pp fmt t = Format.fprintf fmt "%gs" t
end

module Rate = struct
  type t = float

  let bps x =
    if Float.is_nan x then invalid_arg "Units.Rate.bps: NaN";
    x

  let to_bps t = t
  let mbps x = bps (x *. 1e6)
  let to_mbps t = t /. 1e6
  let scale k t = k *. t
  let ratio a b = a /. b
  let to_pps t ~pkt_bytes = t /. (8.0 *. float_of_int pkt_bytes)
  let equal = Float.equal
  let compare = Float.compare
  let pp fmt t = Format.fprintf fmt "%gbit/s" t
end

module Size = struct
  type t = int

  let bytes b = b
  let to_bytes t = t
  let zero = 0
  let add a b = a + b
  let sub a b = if a <= b then 0 else a - b
  let min a b = if a <= b then a else b
  let max a b = if a >= b then a else b
  let compare = Int.compare
  let equal = Int.equal
  let bits t = float_of_int (8 * t)
  let tx_time t rate = Time.of_s (float_of_int (8 * t) /. rate)
  let pp fmt t = Format.fprintf fmt "%dB" t
end

module Pkts = struct
  type t = float

  let v x =
    if Float.is_nan x then invalid_arg "Units.Pkts.v: NaN";
    if x < 0.0 then 0.0 else x

  let of_int n = float_of_int n
  let to_float t = t
  let add a b = a +. b
  let scale k t = k *. t
  let ratio a b = a /. b
  let compare = Float.compare
  let pp fmt t = Format.fprintf fmt "%gpkt" t
end

module Prob = struct
  type t = float

  let v x =
    if Float.is_nan x then invalid_arg "Units.Prob.v: NaN";
    if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

  let zero = 0.0
  let one = 1.0
  let to_float t = t
  let is_zero t = Float.equal t 0.0
  let positive t = t > 0.0
  let complement t = 1.0 -. t
  let scale k t = v (k *. t)
  let sample t ~u = u < t
  let equal = Float.equal
  let compare = Float.compare
  let pp fmt t = Format.fprintf fmt "%g" t
end

module Round = struct
  (* The one place bare truncation is allowed (lint rule N3); every other
     lib/ call site must name its rounding through these. *)
  let trunc x = int_of_float x
  let floor x = int_of_float (Float.floor x)
  let ceil x = int_of_float (Float.ceil x)
  let nearest x = int_of_float (Float.round x)
end
