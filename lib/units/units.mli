(** Zero-cost dimensional types for the simulator's unit-sensitive
    arithmetic.

    PERT's behaviour hinges on conversions that are easy to get silently
    wrong: srtt thresholds quoted in milliseconds against an engine clock
    in seconds, link rates in bits per second divided into per-packet
    serialization times, probabilities that must stay inside [0, 1].
    Each dimension below wraps a bare [float] (or [int]) in a [private]
    type, exposes only the arithmetic that is dimensionally legal, and
    compiles to the identical machine operations — the wrappers are
    erased, so hot paths pay nothing.

    Conventions: [Time.t] is seconds, [Rate.t] is bits per second,
    [Size.t] is bytes, [Pkts.t] is a (possibly fractional) packet count,
    [Prob.t] is a probability in [0, 1]. [private] representations allow
    read-only coercion [(x :> float)] for formatted output; constructing
    a value always goes through the smart constructors.

    Lint rules U1–U3/N3 (see README "Static analysis") enforce adoption:
    unit-suffixed names may not flow through lib/ APIs as raw floats, and
    truncation of unit-bearing values must go through {!Round}. *)

(** Durations and instants, in seconds. *)
module Time : sig
  type t = private float

  val zero : t

  val s : float -> t
  (** [s x] is [x] seconds (identity on the representation). Rejects NaN. *)

  val of_s : float -> t
  val to_s : t -> float

  val ms : float -> t
  (** [ms x] is [x] milliseconds, i.e. [x *. 1e-3] seconds. *)

  val to_ms : t -> float

  val us : float -> t
  (** [us x] is [x] microseconds, i.e. [x *. 1e-6] seconds. *)

  val to_us : t -> float

  val add : t -> t -> t
  val sub : t -> t -> t
  (** [sub a b] may be negative; durations are signed. *)

  val scale : float -> t -> t
  val ratio : t -> t -> float
  (** [ratio a b] is the dimensionless quotient [a /. b]. *)

  val min : t -> t -> t
  val max : t -> t -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val is_finite : t -> bool

  (* Every dimension ships the same equal/compare/pp (and arithmetic)
     kit even where a member is currently uncalled, so generic code can
     switch dimensions without discovering holes — hence the pertscan S3
     allowances on the unused members here and in the modules below. *)
  val pp : Format.formatter -> t -> unit [@@lint.allow "S3"]
end

(** Link rates, in bits per second. *)
module Rate : sig
  type t = private float

  val bps : float -> t
  val to_bps : t -> float

  val mbps : float -> t
  (** [mbps x] is [x *. 1e6] bits/s. *)

  val to_mbps : t -> float

  val scale : float -> t -> t
  val ratio : t -> t -> float

  val to_pps : t -> pkt_bytes:int -> float
  (** [to_pps r ~pkt_bytes] is the packet rate [r /. (8 * pkt_bytes)] —
      packets per second at a fixed packet size. *)

  val equal : t -> t -> bool [@@lint.allow "S3"]
  val compare : t -> t -> int [@@lint.allow "S3"]
  val pp : Format.formatter -> t -> unit [@@lint.allow "S3"]
end

(** Data sizes, in bytes (packets are a separate dimension: {!Pkts}). *)
module Size : sig
  type t = private int

  val bytes : int -> t
  val to_bytes : t -> int
  val zero : t
  val add : t -> t -> t

  val sub : t -> t -> t
  (** Saturating difference: [sub a b] is [max 0 (a - b)] — sizes (and in
      particular window headroom) cannot go negative. *)

  val min : t -> t -> t
  val max : t -> t -> t [@@lint.allow "S3"]
  val compare : t -> t -> int
  val equal : t -> t -> bool [@@lint.allow "S3"]
  val pp : Format.formatter -> t -> unit [@@lint.allow "S3"]

  val bits : t -> float
  (** [bits s] is [8 * s] as a float. *)

  val tx_time : t -> Rate.t -> Time.t
  (** Serialization delay: [8 * bytes /. rate] seconds — the
      [Size / Rate -> Time] dimension rule. *)
end

(** Packet counts — averages and thresholds may be fractional, so the
    representation is a float, kept distinct from byte counts. *)
module Pkts : sig
  type t = private float

  val v : float -> t
  (** Rejects NaN; negative counts are clamped to 0. *)

  val of_int : int -> t
  val to_float : t -> float
  val add : t -> t -> t
  val scale : float -> t -> t [@@lint.allow "S3"]
  val ratio : t -> t -> float
  val compare : t -> t -> int [@@lint.allow "S3"]
  val pp : Format.formatter -> t -> unit [@@lint.allow "S3"]
end

(** Probabilities, guaranteed inside [0, 1] and never NaN. *)
module Prob : sig
  type t = private float

  val v : float -> t
  (** Smart constructor: clamps to [0, 1]; raises [Invalid_argument] on
      NaN — a NaN probability silently disables every comparison made
      with it, so it must not be constructible. *)

  val zero : t
  val one : t
  val to_float : t -> float
  val is_zero : t -> bool
  val positive : t -> bool

  val complement : t -> t
  (** [complement p] is [1 - p]. *)

  val scale : float -> t -> t
  (** [scale k p] is [v (k *. p)] — re-clamped. *)

  val sample : t -> u:float -> bool
  (** [sample p ~u] decides a Bernoulli trial from a uniform [0, 1) draw
      [u]: [u < p]. Keeping the comparison here (rather than at call
      sites) is what lint rule U2 enforces. *)

  val equal : t -> t -> bool [@@lint.allow "S3"]
  val compare : t -> t -> int [@@lint.allow "S3"]
  val pp : Format.formatter -> t -> unit [@@lint.allow "S3"]
end

(** The only sanctioned float-to-int conversions (lint rule N3 bans bare
    [int_of_float]/[truncate]/[Float.to_int] elsewhere in lib/): each
    call site names its rounding direction explicitly. *)
module Round : sig
  val trunc : float -> int
  (** Toward zero — the semantics of bare [int_of_float], made explicit. *)

  val floor : float -> int
  val ceil : float -> int

  val nearest : float -> int
  (** Half away from zero. *)
end
