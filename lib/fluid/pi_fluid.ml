type params = {
  c : float;
  n : float;
  r : float;
  gains : Stability.pi_gains;
  tq_ref : float;
}

let make ~c ~n ~r ?r_plus ?(tq_ref = 0.003) () =
  let r_plus = match r_plus with Some v -> v | None -> r in
  { c; n; r; gains = Stability.pert_pi_gains ~c ~n_min:n ~r_plus ~r_star:r; tq_ref }

let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let derivatives p t x hist =
  let w = x.(0) in
  let w_del = hist 0 (t -. p.r) in
  let tq_del = hist 1 (t -. p.r) in
  let integral_del = hist 2 (t -. p.r) in
  let raw =
    p.gains.Stability.k
    *. (tq_del -. p.tq_ref +. (integral_del /. p.gains.Stability.m))
  in
  let prob = clamp01 raw in
  (* Physical constraint: the queue cannot drain below empty. *)
  let tq_dot = (p.n *. w /. (p.r *. p.c)) -. 1.0 in
  let tq_dot = if x.(1) <= 0.0 && tq_dot < 0.0 then 0.0 else tq_dot in
  let err = x.(1) -. p.tq_ref in
  (* Anti-windup: freeze the integrator while the controller output is
     saturated and the error would wind it further into saturation. *)
  let int_dot =
    if (raw >= 1.0 && err > 0.0) || (raw <= 0.0 && err < 0.0) then 0.0 else err
  in
  [|
    (1.0 /. p.r) -. (prob *. w *. w_del /. (2.0 *. p.r));
    tq_dot;
    int_dot;
  |]

let run p ?(init = [| 1.0; 0.05; 0.0 |]) ~horizon ~dt ?record_every () =
  Dde.integrate ~f:(derivatives p) ~init ~t0:0.0 ~t1:horizon ~dt ?record_every
    ()

let equilibrium p =
  let w = p.r *. p.c /. p.n in
  let prob = 2.0 /. (w *. w) in
  (w, p.tq_ref, prob)
