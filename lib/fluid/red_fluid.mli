(** The classic TCP/RED fluid model of Misra, Gong & Towsley (SIGCOMM
    2000) — the router-side counterpart PERT emulates; used for the
    stability comparison of Section 5.4.

    States: [x1] window W (packets), [x2] queue length q (packets),
    [x3] averaged queue length (packets). Unlike PERT, the loss
    probability seen by the sender is delayed by one RTT (the router
    marks, the echo travels back). *)

type params = {
  c : float;  (** capacity, packets/s *)
  n : float;  (** flows *)
  r : float;  (** RTT, s *)
  l_red : float;  (** RED slope [p_max / (max_th - min_th)], 1/packets *)
  min_th : float;  (** packets *)
  k : float;  (** averaging constant [ln (1-wq) / delta], 1/s, negative *)
}

val run :
  params -> ?init:float array -> horizon:float -> dt:float ->
  ?record_every:int -> unit -> float array * float array array

val equilibrium : params -> float * float * float
(** [(w_star, q_star, p_star)]. *)

val matched_to_pert : Pert_fluid.params -> params
(** RED parameters that emulate the same control law at the router
    ([l_red = l_pert /. c], thresholds scaled by [c]) — used to compare
    stability regions (Section 5.4 notes the conditions then coincide). *)
