let k_of ~alpha ~delta =
  if alpha <= 0.0 || alpha >= 1.0 then invalid_arg "Stability.k_of: alpha in (0,1)";
  if delta <= 0.0 then invalid_arg "Stability.k_of: delta must be positive";
  log alpha /. delta

let w_g ~c ~n_min ~r_plus =
  0.1 *. Float.min (2.0 *. n_min /. (r_plus *. r_plus *. c)) (1.0 /. r_plus)

let theorem1_holds ~l_pert ~c ~n_min ~r_plus ~k =
  let wg = w_g ~c ~n_min ~r_plus in
  let lhs = l_pert *. (r_plus ** 3.0) *. c *. c /. ((2.0 *. n_min) ** 2.0) in
  lhs <= sqrt (((wg /. k) ** 2.0) +. 1.0)

let delta_min ~alpha ~l_pert ~c ~n_min ~r_plus =
  let wg = w_g ~c ~n_min ~r_plus in
  let inner =
    (l_pert ** 2.0 *. (r_plus ** 6.0) *. (c ** 4.0)) -. (16.0 *. (n_min ** 4.0))
  in
  if inner <= 0.0 then 0.0
  else -.log alpha /. (4.0 *. n_min *. n_min *. wg) *. sqrt inner

let equilibrium ~c ~n ~r =
  let w = r *. c /. n in
  let p = 2.0 *. n *. n /. (r *. c *. (r *. c)) in
  (w, p)

type pi_gains = { k : float; m : float }

let pert_pi_gains ~c ~n_min ~r_plus ~r_star =
  let m = 2.0 *. n_min /. (r_plus *. r_plus *. c) in
  let plant_gain = (r_plus ** 3.0) *. c *. c /. ((2.0 *. n_min) ** 2.0) in
  let k = m *. sqrt (((r_star *. m) ** 2.0) +. 1.0) /. plant_gain in
  { k; m }

let router_pi_gains ~c ~n_min ~r_plus ~r_star =
  let g = pert_pi_gains ~c ~n_min ~r_plus ~r_star in
  { g with k = g.k /. c }

let red_theorem_holds ~l_red ~c ~n_min ~r_plus ~k =
  let wg = w_g ~c ~n_min ~r_plus in
  let lhs = l_red *. (r_plus ** 3.0) *. (c ** 3.0) /. ((2.0 *. n_min) ** 2.0) in
  lhs <= sqrt (((wg /. k) ** 2.0) +. 1.0)

let pert_k ~alpha ~c ~n = k_of ~alpha ~delta:(n /. c)
let red_k ~wq ~c = k_of ~alpha:(1.0 -. wq) ~delta:(1.0 /. c)

let boundary_r ~holds ?(lo = 0.001) ?(hi = 10.0) () =
  if not (holds lo) then lo
  else begin
    let lo = ref lo and hi = ref hi in
    while !hi -. !lo > 1e-4 do
      let mid = (!lo +. !hi) /. 2.0 in
      if holds mid then lo := mid else hi := mid
    done;
    !lo
  end
