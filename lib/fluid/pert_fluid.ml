type params = {
  c : float;
  n : float;
  r : float;
  l_pert : float;
  t_min : float;
  k : float;
}

let paper_params ?(r = 0.1) () =
  {
    c = 100.0;
    n = 5.0;
    r;
    l_pert = 0.1 /. (0.1 -. 0.05);
    t_min = 0.05;
    k = Stability.k_of ~alpha:0.99 ~delta:1e-4;
  }

let derivatives p t x hist =
  let w = x.(0) in
  let w_del = hist 0 (t -. p.r) in
  let tq_smooth_del = hist 2 (t -. p.r) in
  let prob = p.l_pert *. Float.max 0.0 (tq_smooth_del -. p.t_min) in
  [|
    (1.0 /. p.r) -. (prob *. w *. w_del /. (2.0 *. p.r));
    (p.n *. w /. (p.r *. p.c)) -. 1.0;
    p.k *. (x.(2) -. x.(1));
  |]

let run p ?(init = [| 1.0; 1.0; 1.0 |]) ~horizon ~dt ?record_every () =
  Dde.integrate ~f:(derivatives p) ~init ~t0:0.0 ~t1:horizon ~dt ?record_every
    ()

let equilibrium p =
  let w = p.r *. p.c /. p.n in
  let prob = 2.0 /. (w *. w) in
  let tq = (prob /. p.l_pert) +. p.t_min in
  (w, tq, prob)

let is_stable_trajectory ?(tail_fraction = 0.25) ?(tolerance = 0.05) series =
  let n = Array.length series in
  if n < 4 then invalid_arg "Pert_fluid.is_stable_trajectory: too short";
  let start = n - max 2 (Units.Round.trunc (tail_fraction *. float_of_int n)) in
  let lo = ref infinity and hi = ref neg_infinity and sum = ref 0.0 in
  for i = start to n - 1 do
    let v = series.(i) in
    if v < !lo then lo := v;
    if v > !hi then hi := v;
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int (n - start) in
  let scale = Float.max (Float.abs mean) 1e-9 in
  (!hi -. !lo) /. scale < tolerance
