(** Fixed-step integrator for delay differential equations (DDEs)
    [x'(t) = f(t, x(t), history)], where [history i tau] reads state
    variable [i] at an earlier absolute time [tau] (linear interpolation
    between stored steps; constant initial history before [t0]).

    Classic RK4 with history lookups, valid when every delay is much
    larger than the step — true for the paper's models (delays of 100+ ms,
    steps well below 1 ms). *)

type history = int -> float -> float

val integrate :
  f:(float -> float array -> history -> float array) ->
  init:float array ->
  ?initial_history:history ->
  t0:float ->
  t1:float ->
  dt:float ->
  ?record_every:int ->
  unit ->
  float array * float array array
(** [integrate ~f ~init ~t0 ~t1 ~dt ()] returns [(times, series)] where
    [series.(i)] is the trajectory of variable [i], recorded every
    [record_every] steps (default 1, i.e. every step). [initial_history]
    defaults to the constant [init]. Raises [Invalid_argument] on a
    non-positive [dt], empty [init], [t1 <= t0], or a history lookup
    earlier than [t0 - max_delay_window] (the integrator keeps the whole
    trajectory, so only pre-[t0] constant history plus stored steps are
    addressable). *)

val euler :
  f:(float -> float array -> history -> float array) ->
  init:float array ->
  ?initial_history:history ->
  t0:float ->
  t1:float ->
  dt:float ->
  ?record_every:int ->
  unit ->
  float array * float array array
(** Same interface with forward Euler (used to cross-check RK4 in tests). *)
