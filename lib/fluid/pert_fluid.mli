(** The fluid model of PERT, paper eq. (14):

    - [x1] — window size W (packets),
    - [x2] — instantaneous queueing delay (s),
    - [x3] — smoothed queueing delay (s, the end-host estimate),

    with

    [x1' = 1/R - L x1(t) x1(t-R) max(0, x3(t-R) - t_min) / (2R)],
    [x2' = N x1 / (R C) - 1],
    [x3' = K x3 - K x2],

    where [L] is the response-curve slope, [K = ln alpha / delta]. The
    [max(0, ·)] keeps the emulated drop probability non-negative (the
    paper's linearised model omits the clamp, which only matters far below
    equilibrium). *)

type params = {
  c : float;  (** capacity, packets/s *)
  n : float;  (** number of flows *)
  r : float;  (** round-trip time, s *)
  l_pert : float;  (** response-curve slope, 1/s *)
  t_min : float;  (** queueing-delay threshold, s *)
  k : float;  (** smoothing constant [ln alpha / delta], 1/s (negative) *)
}

val paper_params : ?r:float -> unit -> params
(** The setting of Section 5.3 / Fig. 13(b–d): [c = 100] pkt/s, [n = 5],
    [p_max = 0.1], [t_max = 0.1] s, [t_min = 0.05] s, [alpha = 0.99],
    [delta = 0.1] ms; [r] defaults to 0.1 s. *)

val run :
  params -> ?init:float array -> horizon:float -> dt:float ->
  ?record_every:int -> unit -> float array * float array array
(** Integrate from [init] (default [(1, 1, 1)] as in the paper) to
    [horizon] seconds. *)

val equilibrium : params -> float * float * float
(** [(w_star, tq_star, p_star)]: eq. (9) plus
    [tq_star = p_star / l_pert + t_min] from inverting the response
    curve. *)

val is_stable_trajectory :
  ?tail_fraction:float -> ?tolerance:float -> float array -> bool
(** Heuristic oscillation check used by tests and the Fig. 13 driver: the
    trajectory is "stable" if the last [tail_fraction] (default 0.25) of
    samples has peak-to-peak amplitude below [tolerance] (default 5%)
    relative to its mean. *)
