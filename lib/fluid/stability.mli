(** Closed-form stability machinery of Sections 5–6 (Theorems 1 and 2).

    Notation ([paper eq. 10–13, 21]): [c] link capacity in packets/s,
    [n_min] the lower bound on the number of flows, [r_plus] the upper
    bound on RTT (seconds), [l_pert = p_max /. (t_max - t_min)] the slope
    of the response curve (1/seconds), [alpha] the srtt history weight,
    [delta] the RTT sampling interval. *)

val k_of : alpha:float -> delta:float -> float
(** [K = ln alpha / delta] (eq. 10) — negative for [alpha < 1]. *)

val w_g : c:float -> n_min:float -> r_plus:float -> float
(** Crossover frequency bound (eq. 12):
    [0.1 * min (2 n / (r^2 c)) (1 / r)]. *)

val theorem1_holds :
  l_pert:float -> c:float -> n_min:float -> r_plus:float -> k:float -> bool
(** Sufficient local-stability condition (eq. 11):
    [l R^3 C^2 / (2N)^2 <= sqrt (wg^2 / K^2 + 1)]. *)

val delta_min :
  alpha:float -> l_pert:float -> c:float -> n_min:float -> r_plus:float ->
  float
(** Minimum stable sampling interval (eq. 13); 0 when the condition holds
    for any [delta] (the square root's argument is non-positive). *)

val equilibrium : c:float -> n:float -> r:float -> float * float
(** [(w_star, p_star)] of eq. 9: [w = RC/N], [p = 2 N^2 / (R C)^2]. *)

type pi_gains = { k : float; m : float }

val pert_pi_gains :
  c:float -> n_min:float -> r_plus:float -> r_star:float -> pi_gains
(** Theorem 2 (eq. 21): [m = 2N / (R+^2 C)],
    [k = m |j R* m + 1| / (R+^3 C^2 / (2N)^2)] — the delay-domain PI for
    PERT/PI. *)

val router_pi_gains :
  c:float -> n_min:float -> r_plus:float -> r_star:float -> pi_gains
(** Queue-length-domain PI for the router baseline: the plant gain gets an
    extra factor of [C] ([C^3] in place of [C^2]), so
    [k_router = k_pert /. c]. *)

(** {2 Stability-region comparison (Section 5.4)}

    The paper's analytical claim: with matched control laws
    ([l_red = l_pert / C], thresholds scaled by [C]) the two sufficient
    conditions differ only through the averaging constant [K]; PERT
    samples once per packet {e of the flow} ([delta ~ N/C]) while RED
    samples once per packet {e of the link} ([delta ~ 1/C]), giving PERT
    a slower filter, a larger [wg^2/K^2 + 1] bound and therefore a larger
    stability region. *)

val red_theorem_holds :
  l_red:float -> c:float -> n_min:float -> r_plus:float -> k:float -> bool
(** The TCP/RED counterpart of Theorem 1 (Hollot et al. 2001):
    [l_red R^3 C^3 / (2N)^2 <= sqrt (wg^2/K^2 + 1)]. *)

val pert_k : alpha:float -> c:float -> n:float -> float
(** PERT's effective averaging constant when each of [n] flows samples on
    its own ACKs: [ln alpha / (n /. c)]. *)

val red_k : wq:float -> c:float -> float
(** RED's averaging constant at per-packet sampling: [ln (1-wq) / (1/c)]. *)

val boundary_r : holds:(float -> bool) -> ?lo:float -> ?hi:float -> unit -> float
(** Largest RTT (bisection to 0.1 ms) for which [holds r] is true, assuming
    the condition is monotone in [r]; [lo]/[hi] default to 1 ms / 10 s.
    Returns [lo] if even that is unstable. *)
