(** Fluid model of PERT/PI (Section 6): the window dynamics of eq. (8)
    closed by the continuous PI controller of eq. (16)–(17) acting on the
    end-host's queueing-delay estimate.

    States: [x1] window W, [x2] queueing delay Tq, [x3] the integral
    [∫ (Tq - tq_ref) dt]. The drop probability is
    [p(t) = K ((Tq(t-R) - tq_ref) + x3(t-R) / m)], clamped to [\[0,1\]].
    Two physical guards are applied on top of the paper's linear model:
    the queue cannot drain below empty, and the integrator freezes while
    the controller output is saturated (anti-windup) — without them the
    linearised model wanders into negative queueing delays. *)

type params = {
  c : float;  (** capacity, packets/s *)
  n : float;  (** flows *)
  r : float;  (** RTT, s *)
  gains : Stability.pi_gains;
  tq_ref : float;  (** target queueing delay, s *)
}

val make :
  c:float -> n:float -> r:float -> ?r_plus:float -> ?tq_ref:float -> unit ->
  params
(** Gains from {!Stability.pert_pi_gains} with [r_plus] defaulting to [r]
    and [r_star = r]; [tq_ref] defaults to 3 ms (the paper's target). *)

val run :
  params -> ?init:float array -> horizon:float -> dt:float ->
  ?record_every:int -> unit -> float array * float array array

val equilibrium : params -> float * float * float
(** [(w_star, tq_star, p_star)] — the PI integrator pins
    [tq_star = tq_ref]. *)
