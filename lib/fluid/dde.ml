type history = int -> float -> float

(* Dense storage of the trajectory: step k holds x(t0 + k dt). History
   lookups interpolate linearly; times before t0 use the initial history. *)
type store = {
  dim : int;
  t0 : float;
  dt : float;
  mutable data : float array;  (* row-major: step * dim + var *)
  mutable steps : int;  (* number of stored steps *)
  initial : history;
}

let store_create ~dim ~t0 ~dt ~init ~initial =
  let data = Array.make (1024 * dim) 0.0 in
  Array.blit init 0 data 0 dim;
  { dim; t0; dt; data; steps = 1; initial }

let store_push st x =
  let needed = (st.steps + 1) * st.dim in
  if needed > Array.length st.data then begin
    let data = Array.make (2 * Array.length st.data) 0.0 in
    Array.blit st.data 0 data 0 (st.steps * st.dim);
    st.data <- data
  end;
  Array.blit x 0 st.data (st.steps * st.dim) st.dim;
  st.steps <- st.steps + 1

let store_lookup st i tau =
  if tau <= st.t0 then st.initial i tau
  else begin
    let pos = (tau -. st.t0) /. st.dt in
    let k = Units.Round.trunc pos in
    let k = if k >= st.steps - 1 then st.steps - 1 else k in
    if k >= st.steps - 1 then st.data.((st.steps - 1) * st.dim + i)
    else
      let frac = pos -. float_of_int k in
      let a = st.data.((k * st.dim) + i) and b = st.data.(((k + 1) * st.dim) + i) in
      a +. (frac *. (b -. a))
  end

let validate ~init ~t0 ~t1 ~dt =
  if dt <= 0.0 then invalid_arg "Dde: dt must be positive";
  if Array.length init = 0 then invalid_arg "Dde: empty state";
  if t1 <= t0 then invalid_arg "Dde: t1 must exceed t0"

let run ~stepper ~f ~init ?initial_history ~t0 ~t1 ~dt ?(record_every = 1) () =
  validate ~init ~t0 ~t1 ~dt;
  let dim = Array.length init in
  let initial =
    match initial_history with Some h -> h | None -> fun i _ -> init.(i)
  in
  let st = store_create ~dim ~t0 ~dt ~init ~initial in
  let hist i tau = store_lookup st i tau in
  let nsteps = Units.Round.ceil ((t1 -. t0) /. dt) in
  let nrec = (nsteps / record_every) + 1 in
  let times = Array.make nrec 0.0 in
  let series = Array.init dim (fun _ -> Array.make nrec 0.0) in
  let record k step x =
    times.(k) <- t0 +. (float_of_int step *. dt);
    for i = 0 to dim - 1 do
      series.(i).(k) <- x.(i)
    done
  in
  let x = Array.copy init in
  record 0 0 x;
  let rec_k = ref 1 in
  for step = 1 to nsteps do
    let t = t0 +. (float_of_int (step - 1) *. dt) in
    let x' = stepper f t x dt hist in
    Array.blit x' 0 x 0 dim;
    store_push st x;
    if step mod record_every = 0 && !rec_k < nrec then begin
      record !rec_k step x;
      incr rec_k
    end
  done;
  if !rec_k < nrec then begin
    (* trim unused slots (when nsteps not divisible by record_every) *)
    let times = Array.sub times 0 !rec_k in
    let series = Array.map (fun s -> Array.sub s 0 !rec_k) series in
    (times, series)
  end
  else (times, series)

let axpy x a y =
  (* x + a*y elementwise, fresh array *)
  Array.mapi (fun i xi -> xi +. (a *. y.(i))) x

let rk4_step f t x dt hist =
  let k1 = f t x hist in
  let k2 = f (t +. (dt /. 2.0)) (axpy x (dt /. 2.0) k1) hist in
  let k3 = f (t +. (dt /. 2.0)) (axpy x (dt /. 2.0) k2) hist in
  let k4 = f (t +. dt) (axpy x dt k3) hist in
  Array.mapi
    (fun i xi ->
      xi +. (dt /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))))
    x

let euler_step f t x dt hist = axpy x dt (f t x hist)

let integrate ~f ~init ?initial_history ~t0 ~t1 ~dt ?record_every () =
  run ~stepper:rk4_step ~f ~init ?initial_history ~t0 ~t1 ~dt ?record_every ()

let euler ~f ~init ?initial_history ~t0 ~t1 ~dt ?record_every () =
  run ~stepper:euler_step ~f ~init ?initial_history ~t0 ~t1 ~dt ?record_every ()
