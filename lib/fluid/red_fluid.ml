type params = {
  c : float;
  n : float;
  r : float;
  l_red : float;
  min_th : float;
  k : float;
}

let derivatives p t x hist =
  let w = x.(0) in
  let w_del = hist 0 (t -. p.r) in
  let avg_del = hist 2 (t -. p.r) in
  let prob = Float.min 1.0 (p.l_red *. Float.max 0.0 (avg_del -. p.min_th)) in
  (* The physical queue cannot drain below empty. *)
  let qdot = (p.n *. w /. p.r) -. p.c in
  let qdot = if x.(1) <= 0.0 && qdot < 0.0 then 0.0 else qdot in
  [|
    (1.0 /. p.r) -. (prob *. w *. w_del /. (2.0 *. p.r));
    qdot;
    p.k *. (x.(2) -. x.(1));
  |]

let run p ?(init = [| 1.0; 1.0; 1.0 |]) ~horizon ~dt ?record_every () =
  Dde.integrate ~f:(derivatives p) ~init ~t0:0.0 ~t1:horizon ~dt ?record_every
    ()

let equilibrium p =
  let w = p.r *. p.c /. p.n in
  let prob = 2.0 /. (w *. w) in
  let q = (prob /. p.l_red) +. p.min_th in
  (w, q, prob)

let matched_to_pert (pp : Pert_fluid.params) =
  {
    c = pp.Pert_fluid.c;
    n = pp.Pert_fluid.n;
    r = pp.Pert_fluid.r;
    l_red = pp.Pert_fluid.l_pert /. pp.Pert_fluid.c;
    min_th = pp.Pert_fluid.t_min *. pp.Pert_fluid.c;
    k = pp.Pert_fluid.k;
  }
