module Sim = Sim_engine.Sim
module Rng = Sim_engine.Rng
module Stats = Sim_engine.Stats
module T = Netsim.Topology
module Link = Netsim.Link
module Packet = Netsim.Packet
module Flow = Tcpstack.Flow

(* End-host TCP hardening knobs, applied to every long-lived flow. Plain
   data (Marshal-safe): it participates in the config digest, so cells
   with different TCP profiles never collide in the store. *)
type tcp_profile = {
  rst_validation : bool;  (** RFC 5961 RST handling *)
  persist : bool;  (** zero-window persist probing *)
  wscale : int option;  (** peer's window-scale offer; None = auto *)
  rcv_buffer_pkts : int option;  (** receive buffer; None = effectively unbounded *)
}

let default_tcp =
  { rst_validation = true; persist = true; wscale = None; rcv_buffer_pkts = None }

type config = {
  scheme : Schemes.t;
  bandwidth : float;
  rtt : float;
  flow_rtts : float list;
  reverse_flows : int;
  web_sessions : int;
  buffer_pkts : int option;
  duration : float;
  warmup : float;
  start_window : float * float;
  delay_signal : Tcpstack.Flow.delay_signal;
  fault : Netsim.Fault.spec option;
  adversary : Netsim.Fault.adversary option;
  tcp : tcp_profile;
  audit : bool;
  seed : int;
}

let default =
  {
    scheme = Schemes.Pert;
    bandwidth = 50e6;
    rtt = 0.060;
    flow_rtts = List.init 16 (fun _ -> 0.060);
    reverse_flows = 0;
    web_sessions = 0;
    buffer_pkts = None;
    duration = 60.0;
    warmup = 20.0;
    start_window = (0.0, 5.0);
    delay_signal = `Rtt;
    fault = None;
    adversary = None;
    tcp = default_tcp;
    audit = true;
    seed = 42;
  }

let uniform_flows config ~n =
  { config with flow_rtts = List.init n (fun _ -> config.rtt) }

let bdp_pkts ~bandwidth ~rtt =
  max 1
    (Units.Round.trunc
       (bandwidth *. rtt /. (8.0 *. float_of_int Packet.data_size)))

type built = {
  topo : T.t;
  bottleneck : Link.t;
  reverse_bneck : Link.t;
  forward_flows : Flow.t list;
  reverse : Flow.t list;
  config : config;
  cc_factory : unit -> Tcpstack.Cc.t;
  routers : Netsim.Node.t * Netsim.Node.t;
  fault : Netsim.Fault.t option;
  attack : Netsim.Fault.attack option;
  audit : Sim_engine.Audit.t option;
}

(* Access links are 10x the bottleneck and lightly buffered relative to
   it, so only the bottleneck queue matters — mirroring the paper's
   500 Mbps access links against a 100 Mbps core. *)
let access_bw config = 10.0 *. config.bandwidth
let access_buffer = 10_000

let buffer_size config =
  let nflows = List.length config.flow_rtts in
  match config.buffer_pkts with
  | Some b -> b
  | None ->
      max
        (bdp_pkts ~bandwidth:config.bandwidth ~rtt:config.rtt)
        (max 4 (2 * nflows))

let build config =
  let sim = Sim.create ~seed:config.seed () in
  let topo = T.create sim in
  let r1 = T.add_node topo and r2 = T.add_node topo in
  let capacity_pps =
    config.bandwidth /. (8.0 *. float_of_int Packet.data_size)
  in
  let limit_pkts = buffer_size config in
  let nflows = List.length config.flow_rtts in
  let ctx =
    {
      Schemes.sim;
      capacity_pps;
      limit_pkts;
      rtt = config.rtt;
      nflows;
    }
  in
  (* The bottleneck one-way propagation takes a third of the smallest
     flow RTT; access links supply the rest per flow. *)
  let min_rtt =
    List.fold_left Float.min config.rtt config.flow_rtts
  in
  let bneck_delay = min_rtt /. 6.0 in
  let bottleneck =
    T.add_link topo ~src:r1 ~dst:r2
      ~bandwidth:(Units.Rate.bps config.bandwidth)
      ~delay:(Units.Time.s bneck_delay)
      ~disc:(Schemes.bottleneck_disc config.scheme ctx)
  in
  let reverse_bneck =
    T.add_link topo ~src:r2 ~dst:r1
      ~bandwidth:(Units.Rate.bps config.bandwidth)
      ~delay:(Units.Time.s bneck_delay)
      ~disc:(Schemes.bottleneck_disc config.scheme ctx)
  in
  (* Impairments apply to the forward bottleneck: that is the wire the
     delay signal crosses. Attach before any flow is built so the rng
     split order — and thus unimpaired runs — is unchanged when
     [config.fault] is [None]. *)
  let fault = Option.map (fun spec -> Netsim.Fault.attach spec bottleneck) config.fault in
  (* The adversary wiretaps both bottleneck directions and injects its
     forgeries upstream of the queues. Armed right after the fault layer
     (before any flow) for the same reason: [None] must leave the rng
     split order — and every existing seeded run — untouched. *)
  let attack =
    Option.map
      (fun adv -> Netsim.Fault.attack adv ~data:bottleneck ~ack:reverse_bneck)
      config.adversary
  in
  let attach_host router rtt_target =
    (* Each direction of the access pair contributes
       (rtt_target/2 - bneck_delay)/2 one-way delay. *)
    let d = Float.max 1e-5 (((rtt_target /. 2.0) -. bneck_delay) /. 2.0) in
    let host = T.add_node topo in
    let disc () = Netsim.Droptail.create ~limit_pkts:access_buffer in
    ignore
      (T.add_duplex topo ~a:host ~b:router
         ~bandwidth:(Units.Rate.bps (access_bw config))
         ~delay:(Units.Time.s d) ~disc_ab:(disc ()) ~disc_ba:(disc ()));
    host
  in
  let cc_factory = Schemes.cc_factory config.scheme ctx in
  let ecn = Schemes.uses_ecn config.scheme in
  let rng = Rng.split (Sim.rng sim) in
  let lo, hi = config.start_window in
  let mk_flow ~src ~dst =
    let start =
      Units.Time.s (if hi > lo then Rng.uniform rng lo hi else lo)
    in
    let tcp = config.tcp in
    let rcv_buffer =
      Option.map
        (fun pkts -> Units.Size.bytes (pkts * Packet.mss))
        tcp.rcv_buffer_pkts
    in
    Flow.create topo ~src ~dst ~cc:(cc_factory ()) ~ecn ~start
      ~delay_signal:config.delay_signal ?rcv_buffer ?wscale:tcp.wscale
      ~persist:tcp.persist ~rst_validation:tcp.rst_validation ()
  in
  (* Forward long-lived flows with their individual RTTs. *)
  let endpoints =
    List.map
      (fun rtt -> (attach_host r1 rtt, attach_host r2 rtt))
      config.flow_rtts
  in
  (* Reverse flows load the ACK path, as in the paper's test cases. *)
  let rev_endpoints =
    List.init config.reverse_flows (fun _ ->
        (attach_host r2 config.rtt, attach_host r1 config.rtt))
  in
  (* Web hosts: a small pool on each side. *)
  let web_pool router =
    Array.init
      (min 8 (max 1 config.web_sessions))
      (fun _ -> attach_host router config.rtt)
  in
  let web_src = web_pool r1 and web_dst = web_pool r2 in
  T.compute_routes topo;
  let forward_flows = List.map (fun (s, d) -> mk_flow ~src:s ~dst:d) endpoints in
  let reverse = List.map (fun (s, d) -> mk_flow ~src:s ~dst:d) rev_endpoints in
  if config.web_sessions > 0 then
    ignore
      (Traffic.Web.start_sessions topo ~n:config.web_sessions ~src_pool:web_src
         ~dst_pool:web_dst ~cc_factory ~ecn ());
  let audit =
    if not config.audit then None
    else begin
      let a = Sim_engine.Audit.create ~interval:(Units.Time.s 0.1) sim in
      Sim_engine.Audit.enable_watchdog a;
      List.iter
        (fun l ->
          Sim_engine.Audit.add_check a ~subject:(Link.name l) (fun ~now:_ ->
              Link.conservation_error l))
        (T.links topo);
      List.iter
        (fun f ->
          let subject = Printf.sprintf "flow-%d" (Flow.id f) in
          Sim_engine.Audit.add_check a ~subject (fun ~now:_ ->
              Flow.audit_check f);
          (* Deadlock tripwire: an active flow whose progress counter
             pins for this long (≫ any RTO here, ≪ the run) has stalled
             — e.g. a zero-window state nobody is probing. Scaled with
             the duration so short smoke runs can still catch one. *)
          Sim_engine.Audit.add_stall_check a ~subject
            ~stall_after:(Units.Time.s (Float.min 5.0 (config.duration /. 4.0)))
            (fun () -> Flow.liveness f))
        (forward_flows @ reverse);
      Some a
    end
  in
  {
    topo;
    bottleneck;
    reverse_bneck;
    forward_flows;
    reverse;
    config;
    cc_factory;
    routers = (r1, r2);
    fault;
    attack;
    audit;
  }

let reset built =
  Link.reset_stats built.bottleneck;
  Link.reset_stats built.reverse_bneck;
  List.iter Flow.reset_stats built.forward_flows;
  List.iter Flow.reset_stats built.reverse

type result = {
  avg_queue_pkts : Units.Pkts.t;
  avg_queue_norm : float;
  drop_rate : float;
  utilization : float;
  jain : float;
  per_flow_goodput : Units.Rate.t array;
  buffer_pkts : int;
  marks : int;
  early_responses : int;
  loss_events : int;
  audit_violations : int;
}

let measure built =
  let sim = T.sim built.topo in
  let now = Sim.now sim in
  let link = built.bottleneck in
  let goodputs =
    built.forward_flows
    |> List.map (fun f -> Flow.goodput_bps f ~now)
    |> Array.of_list
  in
  let buffer = (Link.disc link).Netsim.Queue_disc.capacity_pkts in
  {
    avg_queue_pkts = Link.avg_queue_pkts link;
    avg_queue_norm =
      Units.Pkts.to_float (Link.avg_queue_pkts link) /. float_of_int buffer;
    drop_rate = Link.drop_rate link;
    utilization = Link.utilization link;
    jain = Stats.jain_index (Array.map Units.Rate.to_bps goodputs);
    per_flow_goodput = goodputs;
    buffer_pkts = buffer;
    marks = Link.marks link;
    early_responses =
      List.fold_left (fun a f -> a + Flow.early_responses f) 0
        built.forward_flows;
    loss_events =
      List.fold_left (fun a f -> a + Flow.loss_events f) 0 built.forward_flows;
    audit_violations =
      (match built.audit with
      | Some a -> Sim_engine.Audit.violation_count a
      | None -> 0);
  }

let arm_budget sim ?max_events ?max_wall () =
  match (max_events, max_wall) with
  | None, None -> ()
  | _ -> Sim.set_budget sim ?max_events ?max_wall ()

let run ?max_events ?max_wall config =
  let built = build config in
  let sim = T.sim built.topo in
  arm_budget sim ?max_events ?max_wall ();
  Sim.run ~until:(Units.Time.s config.warmup) sim;
  reset built;
  Sim.run ~until:(Units.Time.s config.duration) sim;
  measure built

(* Each config builds its own Sim.t, so the runs share nothing (pertlint
   D1–D3) and can execute on separate domains. Results come back in
   config order: output is bit-identical for every [jobs]. *)

(* The config record is plain data (no closures), so its Marshal bytes
   are a stable fingerprint: two cells agree on the digest iff they are
   the same simulation. *)
let config_digest config = Digest.to_hex (Digest.string (Marshal.to_string config []))

let cell_key ~experiment (point, config) =
  Store.key ~experiment
    ~scheme:(Schemes.name config.scheme)
    ~seed:config.seed ~point
    ~extra:(config_digest config)
    ()

let run_cells ~ctx ~experiment cells =
  Runner.map ctx
    ~key:(cell_key ~experiment)
    (fun (_, config) ->
      run ?max_events:ctx.Runner.max_events ?max_wall:ctx.Runner.deadline
        config)
    cells
