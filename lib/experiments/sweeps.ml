module D = Dumbbell

let result_cells (r : D.result) =
  [
    Output.cell_f ~digits:1 (Units.Pkts.to_float r.D.avg_queue_pkts);
    Output.cell_f r.D.avg_queue_norm;
    Output.cell_e r.D.drop_rate;
    Output.cell_f r.D.utilization;
    Output.cell_f r.D.jain;
  ]

let result_header = [ "Q(pkts)"; "Q(norm)"; "droprate"; "util"; "jain" ]
let result_width = List.length result_header

(* Every (point, scheme) cell of a sweep is an independent simulation;
   run the whole grid through the supervised/checkpointed runner and
   render in grid order, degrading failed cells to explicit markers. *)
let sweep ~ctx ~experiment ~title ~xlabel ~points ~configure scale =
  let cells =
    List.concat_map
      (fun x -> List.map (fun scheme -> (x, scheme)) Schemes.all_fig4_schemes)
      points
  in
  let results =
    D.run_cells ~ctx ~experiment
      (List.map (fun (x, scheme) -> (x, configure scale scheme x)) cells)
  in
  {
    Output.title;
    header = (xlabel :: "scheme" :: result_header);
    rows =
      List.map2
        (fun (x, scheme) cell ->
          x :: Schemes.name scheme
          ::
          (match cell with
          | Ok r -> result_cells r
          | Error f -> Runner.failure_cells ~width:result_width f))
        cells results;
  }

(* --- Fig 5 -------------------------------------------------------------- *)

let fig5 =
  let curve = Pert_core.Response_curve.default in
  let rows =
    List.init 26 (fun i ->
        let qd = float_of_int i *. 0.001 in
        [
          Output.cell_f ~digits:3 qd;
          Output.cell_f ~digits:4
            (Units.Prob.to_float
               (Pert_core.Response_curve.probability curve (Units.Time.s qd)));
        ])
  in
  {
    Output.title = "Fig 5: PERT probabilistic response curve (queueing delay -> p)";
    header = [ "qdelay(s)"; "p" ];
    rows;
  }

(* --- Fig 6: bandwidth sweep --------------------------------------------- *)

let fig6 ?(ctx = Runner.default) scale =
  let points =
    Scale.pick scale
      ~quick:[ 5.0; 20.0 ]
      ~default:[ 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0 ]
      ~full:[ 1.0; 10.0; 50.0; 100.0; 250.0; 500.0; 1000.0 ]
  in
  let duration = Scale.pick scale ~quick:25.0 ~default:80.0 ~full:400.0 in
  let configure scale' scheme mbps =
    ignore scale';
    let bandwidth = mbps *. 1e6 in
    (* Enough flows to keep large pipes busy, few enough that small pipes
       are not squeezed to sub-packet windows. *)
    let n = max 2 (min 64 (Units.Round.trunc (0.6 *. mbps))) in
    let cfg =
      {
        D.default with
        scheme;
        bandwidth;
        duration;
        warmup = duration /. 3.0;
        seed = 42 + Units.Round.trunc mbps;
      }
    in
    D.uniform_flows cfg ~n
  in
  sweep ~ctx ~experiment:"fig6" ~title:"Fig 6: impact of bottleneck bandwidth"
    ~xlabel:"Mbps"
    ~points:(List.map string_of_float points |> List.map (fun s -> s))
    ~configure:(fun s sch x -> configure s sch (float_of_string x))
    scale

(* --- Fig 7: RTT sweep ---------------------------------------------------- *)

let fig7_schemes_points scale =
  Scale.pick scale
    ~quick:[ 0.020; 0.100 ]
    ~default:[ 0.010; 0.020; 0.050; 0.100; 0.200; 0.500; 1.0 ]
    ~full:[ 0.010; 0.020; 0.050; 0.100; 0.200; 0.500; 1.0 ]

let fig7 ?(ctx = Runner.default) scale =
  let points = fig7_schemes_points scale in
  let bandwidth = Scale.pick scale ~quick:10e6 ~default:40e6 ~full:150e6 in
  let nflows = Scale.pick scale ~quick:8 ~default:16 ~full:50 in
  let configure _ scheme rtt_s =
    let rtt = float_of_string rtt_s in
    let duration = Float.max 40.0 (150.0 *. rtt) in
    let cfg =
      {
        D.default with
        scheme;
        bandwidth;
        rtt;
        duration;
        warmup = duration /. 3.0;
        seed = 42 + Units.Round.trunc (rtt *. 1000.0);
      }
    in
    D.uniform_flows cfg ~n:nflows
  in
  sweep ~ctx ~experiment:"fig7" ~title:"Fig 7: impact of end-to-end RTT"
    ~xlabel:"rtt(s)"
    ~points:(List.map string_of_float points)
    ~configure scale

(* --- Fig 8: number of long-lived flows ----------------------------------- *)

let fig8 ?(ctx = Runner.default) scale =
  let points =
    Scale.pick scale
      ~quick:[ 4; 16 ]
      ~default:[ 1; 2; 5; 10; 25; 50; 100 ]
      ~full:[ 1; 10; 50; 100; 250; 500; 1000 ]
  in
  let bandwidth = Scale.pick scale ~quick:10e6 ~default:40e6 ~full:500e6 in
  let duration = Scale.pick scale ~quick:25.0 ~default:80.0 ~full:400.0 in
  let configure _ scheme n_s =
    let n = int_of_string n_s in
    let cfg =
      {
        D.default with
        scheme;
        bandwidth;
        duration;
        warmup = duration /. 3.0;
        seed = 42 + n;
      }
    in
    D.uniform_flows cfg ~n
  in
  sweep ~ctx ~experiment:"fig8"
    ~title:"Fig 8: impact of the number of long-lived flows"
    ~xlabel:"flows"
    ~points:(List.map string_of_int points)
    ~configure scale

(* --- Fig 9: web sessions -------------------------------------------------- *)

let fig9 ?(ctx = Runner.default) scale =
  let points =
    Scale.pick scale
      ~quick:[ 10; 50 ]
      ~default:[ 10; 25; 50; 100; 250 ]
      ~full:[ 10; 100; 250; 500; 1000 ]
  in
  let bandwidth = Scale.pick scale ~quick:10e6 ~default:40e6 ~full:150e6 in
  let nflows = Scale.pick scale ~quick:6 ~default:12 ~full:50 in
  let duration = Scale.pick scale ~quick:25.0 ~default:80.0 ~full:400.0 in
  let configure _ scheme w_s =
    let web = int_of_string w_s in
    let cfg =
      {
        D.default with
        scheme;
        bandwidth;
        web_sessions = web;
        duration;
        warmup = duration /. 3.0;
        seed = 42 + web;
      }
    in
    D.uniform_flows cfg ~n:nflows
  in
  sweep ~ctx ~experiment:"fig9" ~title:"Fig 9: impact of web traffic"
    ~xlabel:"sessions"
    ~points:(List.map string_of_int points)
    ~configure scale

(* --- Table 1: heterogeneous RTTs ------------------------------------------ *)

let table1 ?(ctx = Runner.default) scale =
  let bandwidth = Scale.pick scale ~quick:10e6 ~default:40e6 ~full:150e6 in
  let web = Scale.pick scale ~quick:20 ~default:100 ~full:100 in
  let duration = Scale.pick scale ~quick:25.0 ~default:80.0 ~full:400.0 in
  let flow_rtts = List.init 10 (fun i -> 0.012 *. float_of_int (i + 1)) in
  let results =
    D.run_cells ~ctx ~experiment:"table1"
      (List.map
         (fun scheme ->
           ( Schemes.name scheme,
             {
               D.default with
               scheme;
               bandwidth;
               rtt = 0.060;
               flow_rtts;
               web_sessions = web;
               duration;
               warmup = duration /. 3.0;
               seed = 42;
             } ))
         Schemes.all_fig4_schemes)
  in
  let rows =
    List.map2
      (fun scheme cell ->
        Schemes.name scheme
        ::
        (match cell with
        | Ok r -> result_cells r
        | Error f -> Runner.failure_cells ~width:result_width f))
      Schemes.all_fig4_schemes results
  in
  {
    Output.title =
      "Table 1: flows with different RTTs (12..120 ms) + web background";
    header = ("scheme" :: result_header);
    rows;
  }
