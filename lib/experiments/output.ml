type table = {
  title : string;
  header : string list;
  rows : string list list;
}

let cell_f ?(digits = 3) v = Printf.sprintf "%.*f" digits v
let cell_e v = Printf.sprintf "%.2e" v
let cell_i v = string_of_int v

(* Failure markers survive every renderer unmangled: no commas (CSV), no
   whitespace (gnuplot columns), no newlines. *)
let timeout_cell = "TIMEOUT"

let max_reason = 48

let failed_cell ~reason =
  let sanitized =
    String.map
      (function
        | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ':') as c
          ->
            c
        | _ -> '_')
      reason
  in
  let sanitized =
    if String.length sanitized > max_reason then
      String.sub sanitized 0 max_reason
    else sanitized
  in
  "FAILED(" ^ sanitized ^ ")"

let is_failure_cell c =
  String.equal c timeout_cell
  || String.length c >= 7
     && String.equal (String.sub c 0 7) "FAILED("

let failure_count t =
  List.fold_left
    (fun acc row ->
      List.fold_left
        (fun acc c -> if is_failure_cell c then acc + 1 else acc)
        acc row)
    0 t.rows

let widths t =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.header)
      t.rows
  in
  let w = Array.make ncols 0 in
  let feed row =
    List.iteri (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c) row
  in
  feed t.header;
  List.iter feed t.rows;
  w

let print fmt t =
  let w = widths t in
  Format.fprintf fmt "== %s ==@." t.title;
  let line row =
    List.iteri
      (fun i c -> Format.fprintf fmt "%s%*s" (if i = 0 then "" else "  ") w.(i) c)
      row;
    Format.fprintf fmt "@."
  in
  line t.header;
  List.iter line t.rows

let to_csv t =
  let buf = Buffer.create 256 in
  let line row =
    Buffer.add_string buf (String.concat "," row);
    Buffer.add_char buf '\n'
  in
  line t.header;
  List.iter line t.rows;
  Buffer.contents buf

let to_gnuplot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("# " ^ t.title ^ "\n");
  Buffer.add_string buf ("# " ^ String.concat " " t.header ^ "\n");
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat " " row);
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let print_all fmt tables =
  List.iter
    (fun t ->
      print fmt t;
      Format.fprintf fmt "@.")
    tables
