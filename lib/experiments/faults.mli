(** The PERT-under-impairment suite (registry id ["faults"]): PERT vs
    SACK/DropTail vs PERT+ECN on a dumbbell whose bottleneck misbehaves —
    random non-congestive loss, link flapping with recovery, and ECN
    bleaching. Every run executes with the {!Sim_engine.Audit} invariant
    checks enabled and reports the violation count in its last column
    (expected 0). Graceful-degradation bar: PERT's aggregate goodput must
    not fall below plain SACK's under a polluted delay signal. *)

val lossy : ?jobs:int -> Scale.t -> Output.table
(** 0.1–5% seeded random wire loss on the bottleneck. The (rate, scheme)
    grid runs on a {!Parallel} pool of [jobs] domains (default 1);
    rows are bit-identical for every [jobs]. *)

val flapping : ?jobs:int -> Scale.t -> Output.table
(** Memoryless link up/down flapping; exercises RTO backoff + recovery. *)

val bleached : ?jobs:int -> Scale.t -> Output.table
(** CE marks cleared in flight with probability 0–100%. *)

val all : ?jobs:int -> Scale.t -> Output.table list
(** [lossy; flapping; bleached]. *)
