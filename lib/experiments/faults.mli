(** The PERT-under-impairment suite (registry id ["faults"]): PERT vs
    SACK/DropTail vs PERT+ECN on a dumbbell whose bottleneck misbehaves —
    random non-congestive loss, link flapping with recovery, and ECN
    bleaching. Every run executes with the {!Sim_engine.Audit} invariant
    checks enabled and reports the violation count in its last column
    (expected 0). Graceful-degradation bar: PERT's aggregate goodput must
    not fall below plain SACK's under a polluted delay signal.

    Every table takes a {!Runner.ctx} (default {!Runner.default}):
    cells run supervised and checkpointed, rows are bit-identical for
    every [ctx.jobs], and a failed or budget-exhausted cell renders as
    a [FAILED]/[TIMEOUT] marker row instead of aborting the table. *)

val all : ?ctx:Runner.ctx -> Scale.t -> Output.table list
(** [lossy; flapping; bleached]. *)
