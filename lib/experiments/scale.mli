(** Experiment sizing. The paper's parameters (up to 1 Gbps, 1000 flows,
    400 s) are far beyond what a packet-level simulation can sweep in an
    interactive session, so each experiment defines up to four sizes:

    - [Smoke]: sub-second sanity runs for CI — experiments without an
      explicit smoke size fall back to their quick parameters;
    - [Quick]: seconds per experiment — used by the benchmark harness and
      smoke tests;
    - [Default]: minutes for the full suite — preserves every qualitative
      relationship the paper reports;
    - [Full]: the paper's published parameters (hours of CPU). *)

type t = Smoke | Quick | Default | Full

val of_string : string -> (t, string) result
val to_string : t -> string

val pick : ?smoke:'a -> t -> quick:'a -> default:'a -> full:'a -> 'a
(** [pick ?smoke t ~quick ~default ~full] selects the parameter for [t];
    [Smoke] uses [smoke] when given and falls back to [quick]. *)
