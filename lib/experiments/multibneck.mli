(** Section 4.6 — Figures 10/11: a chain of six routers, each with a cloud
    of hosts; every cloud sends to the next cloud downstream, and the
    first cloud also sends to the last, so each inter-router link is a
    potential bottleneck and the long-haul flows cross all of them. *)

type config = {
  scheme : Schemes.t;
  n_routers : int;
  cloud_size : int;  (** hosts per cloud = flows per hop *)
  link_bandwidth : float;
  link_delay : float;
  duration : float;
  warmup : float;
  seed : int;
}

val default : Scale.t -> Schemes.t -> config

type link_report = {
  hop : string;  (** e.g. "R1-R2" *)
  avg_queue_norm : float;
  drop_rate : float;
  utilization : float;
  jain : float;  (** fairness among the flows entering at this hop *)
}

val run :
  ?max_events:int -> ?max_wall:Units.Time.t -> config ->
  link_report list * float
(** Per-hop reports plus the Jain index of the long-haul (cloud 1 → last
    cloud) flows. When either budget is set it is armed on the chain's
    simulator ({!Sim_engine.Sim.set_budget}). *)

val fig11 : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** One chain per scheme, run supervised and checkpointed per [ctx]
    (default {!Runner.default}); rows are bit-identical for every
    [ctx.jobs], and a failed scheme degrades to one marker row. *)
