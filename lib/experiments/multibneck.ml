module Sim = Sim_engine.Sim
module Rng = Sim_engine.Rng
module Stats = Sim_engine.Stats
module T = Netsim.Topology
module Link = Netsim.Link
module Flow = Tcpstack.Flow
module Packet = Netsim.Packet

type config = {
  scheme : Schemes.t;
  n_routers : int;
  cloud_size : int;
  link_bandwidth : float;
  link_delay : float;
  duration : float;
  warmup : float;
  seed : int;
}

let default scale scheme =
  {
    scheme;
    n_routers = 6;
    cloud_size = Scale.pick scale ~quick:4 ~default:8 ~full:20;
    link_bandwidth = Scale.pick scale ~quick:10e6 ~default:30e6 ~full:150e6;
    link_delay = 0.005;
    duration = Scale.pick scale ~quick:25.0 ~default:80.0 ~full:400.0;
    warmup = Scale.pick scale ~quick:10.0 ~default:25.0 ~full:100.0;
    seed = 42;
  }

type link_report = {
  hop : string;
  avg_queue_norm : float;
  drop_rate : float;
  utilization : float;
  jain : float;
}

let run ?max_events ?max_wall config =
  let sim = Sim.create ~seed:config.seed () in
  (match (max_events, max_wall) with
  | None, None -> ()
  | _ -> Sim.set_budget sim ?max_events ?max_wall ());
  let topo = T.create sim in
  let routers = Array.init config.n_routers (fun _ -> T.add_node topo) in
  let capacity_pps =
    config.link_bandwidth /. (8.0 *. float_of_int Packet.data_size)
  in
  (* Longest path RTT estimate: all hops both ways plus access links. *)
  let est_rtt =
    2.0
    *. ((float_of_int (config.n_routers - 1) *. config.link_delay) +. 0.010)
  in
  let limit_pkts =
    max
      (2 * config.cloud_size)
      (Dumbbell.bdp_pkts ~bandwidth:config.link_bandwidth ~rtt:est_rtt)
  in
  let ctx =
    {
      Schemes.sim;
      capacity_pps;
      limit_pkts;
      rtt = est_rtt;
      nflows = config.cloud_size;
    }
  in
  (* Inter-router links, both directions, AQM per scheme. *)
  let hop_links =
    Array.init
      (config.n_routers - 1)
      (fun i ->
        let fwd =
          T.add_link topo ~src:routers.(i) ~dst:routers.(i + 1)
            ~bandwidth:(Units.Rate.bps config.link_bandwidth)
            ~delay:(Units.Time.s config.link_delay)
            ~disc:(Schemes.bottleneck_disc config.scheme ctx)
        in
        let _bwd =
          T.add_link topo
            ~src:routers.(i + 1)
            ~dst:routers.(i)
            ~bandwidth:(Units.Rate.bps config.link_bandwidth)
            ~delay:(Units.Time.s config.link_delay)
            ~disc:(Schemes.bottleneck_disc config.scheme ctx)
        in
        fwd)
  in
  (* Clouds: [cloud_size] hosts per router on fast access links. *)
  let clouds =
    Array.map
      (fun router ->
        Array.init config.cloud_size (fun _ ->
            let host = T.add_node topo in
            let disc () = Netsim.Droptail.create ~limit_pkts:10_000 in
            ignore
              (T.add_duplex topo ~a:host ~b:router
                 ~bandwidth:(Units.Rate.bps (10.0 *. config.link_bandwidth))
                 ~delay:(Units.Time.s 0.005) ~disc_ab:(disc ())
                 ~disc_ba:(disc ()));
            host))
      routers
  in
  T.compute_routes topo;
  let cc_factory = Schemes.cc_factory config.scheme ctx in
  let ecn = Schemes.uses_ecn config.scheme in
  let rng = Rng.split (Sim.rng sim) in
  let mk_flow src dst =
    Flow.create topo ~src ~dst ~cc:(cc_factory ()) ~ecn
      ~start:(Units.Time.s (Rng.uniform rng 0.0 5.0)) ()
  in
  (* Hop flows: cloud i -> cloud i+1, pairwise. *)
  let hop_flows =
    Array.init
      (config.n_routers - 1)
      (fun i ->
        Array.init config.cloud_size (fun j ->
            mk_flow clouds.(i).(j) clouds.(i + 1).(j)))
  in
  (* Long-haul flows: cloud 1 -> last cloud. *)
  let long_flows =
    Array.init config.cloud_size (fun j ->
        mk_flow clouds.(0).(j) clouds.(config.n_routers - 1).(j))
  in
  Sim.run ~until:(Units.Time.s config.warmup) sim;
  Array.iter Link.reset_stats hop_links;
  Array.iter (Array.iter Flow.reset_stats) hop_flows;
  Array.iter Flow.reset_stats long_flows;
  Sim.run ~until:(Units.Time.s config.duration) sim;
  let now = Sim.now sim in
  let reports =
    Array.to_list
      (Array.mapi
         (fun i link ->
           let goodputs =
             Array.map
               (fun f -> Units.Rate.to_bps (Flow.goodput_bps f ~now))
               hop_flows.(i)
           in
           {
             hop = Printf.sprintf "R%d-R%d" (i + 1) (i + 2);
             avg_queue_norm =
               Units.Pkts.to_float (Link.avg_queue_pkts link)
               /. float_of_int limit_pkts;
             drop_rate = Link.drop_rate link;
             utilization = Link.utilization link;
             jain = Stats.jain_index goodputs;
           })
         hop_links)
  in
  let long_jain =
    Stats.jain_index
      (Array.map
         (fun f -> Units.Rate.to_bps (Flow.goodput_bps f ~now))
         long_flows)
  in
  (reports, long_jain)

let fig11 ?(ctx = Runner.default) scale =
  (* One six-router chain per scheme; each owns its simulator, so the
     four runs parallelise cleanly. The config record is plain data, so
     its Marshal bytes key the store cell. *)
  let cells =
    Runner.map ctx
      ~key:(fun scheme ->
        let config = default scale scheme in
        Store.key ~experiment:"fig11"
          ~scheme:(Schemes.name config.scheme)
          ~seed:config.seed
          ~extra:
            (Digest.to_hex (Digest.string (Marshal.to_string config [])))
          ())
      (fun scheme ->
        run ?max_events:ctx.Runner.max_events ?max_wall:ctx.Runner.deadline
          (default scale scheme))
      Schemes.all_fig4_schemes
  in
  let rows =
    List.concat
      (List.map2
         (fun scheme cell ->
           match cell with
           | Ok (reports, long_jain) ->
               List.map
                 (fun r ->
                   [
                     Schemes.name scheme;
                     r.hop;
                     Output.cell_f r.avg_queue_norm;
                     Output.cell_e r.drop_rate;
                     Output.cell_f r.utilization;
                     Output.cell_f r.jain;
                     Output.cell_f long_jain;
                   ])
                 reports
           | Error f ->
               [ Schemes.name scheme :: Runner.failure_cells ~width:6 f ])
         Schemes.all_fig4_schemes cells)
  in
  {
    Output.title = "Fig 11: multiple bottlenecks (6-router chain)";
    header =
      [ "scheme"; "hop"; "Q(norm)"; "droprate"; "util"; "jain"; "jain-e2e" ];
    rows;
  }
