(* The fault suite: how gracefully does PERT degrade when the network
   misbehaves in ways its delay signal cannot anticipate?

   Section 7 of the paper argues PERT's early response is safe because it
   never responds to less information than SACK does — losses still
   trigger the standard response. The suite stresses that claim on three
   impaired bottlenecks: random non-congestive loss (wireless-style),
   link flapping with recovery, and ECN-bleaching middleboxes. The bar is
   graceful degradation: PERT must keep >= plain SACK's goodput when the
   signal is polluted, and every run must pass the invariant audit. *)

module Sim = Sim_engine.Sim
module Audit = Sim_engine.Audit
module T = Netsim.Topology
module Fault = Netsim.Fault
module Link = Netsim.Link
module Flow = Tcpstack.Flow
module D = Dumbbell

let schemes = [ Schemes.Pert; Schemes.Sack_droptail; Schemes.Pert_ecn ]

let base scale =
  let bandwidth =
    Scale.pick scale ~smoke:5e6 ~quick:10e6 ~default:40e6 ~full:100e6
  in
  let nflows = Scale.pick scale ~smoke:4 ~quick:6 ~default:16 ~full:40 in
  let duration =
    Scale.pick scale ~smoke:8.0 ~quick:30.0 ~default:60.0 ~full:240.0
  in
  D.uniform_flows
    {
      D.default with
      D.bandwidth;
      duration;
      warmup = duration /. 4.0;
      seed = 11;
    }
    ~n:nflows

(* Per-run summary beyond Dumbbell.result: aggregate goodput, flow-level
   timeout counts and the fault layer's own accounting. *)
type run = {
  result : D.result;
  goodput_bps : Units.Rate.t;
  timeouts : int;
  fstats : Fault.stats option;
}

let run_config ?max_events ?max_wall config =
  let built = D.build config in
  let sim = T.sim built.D.topo in
  (match (max_events, max_wall) with
  | None, None -> ()
  | _ -> Sim.set_budget sim ?max_events ?max_wall ());
  Sim.run ~until:(Units.Time.s config.D.warmup) sim;
  D.reset built;
  Sim.run ~until:(Units.Time.s config.D.duration) sim;
  let result = D.measure built in
  {
    result;
    goodput_bps =
      Units.Rate.bps
        (Array.fold_left
           (fun a r -> a +. Units.Rate.to_bps r)
           0.0 result.D.per_flow_goodput);
    timeouts =
      List.fold_left (fun a f -> a + Flow.timeouts f) 0 built.D.forward_flows;
    fstats = Option.map Fault.stats built.D.fault;
  }

let mbps v = Output.cell_f ~digits:2 (Units.Rate.to_mbps v)

let fstat f get = match f.fstats with Some s -> get s | None -> 0

(* Labelled (point, config) cells through the supervised/checkpointed
   runner — same contract as [Dumbbell.run_cells] but for this suite's
   richer per-run record. *)
let run_cells ~ctx ~experiment specs =
  Runner.map ctx
    ~key:(D.cell_key ~experiment)
    (fun ((_ : string), config) ->
      run_config ?max_events:ctx.Runner.max_events
        ?max_wall:ctx.Runner.deadline config)
    specs

(* --- non-congestive loss ------------------------------------------------- *)

let loss_rates scale =
  Scale.pick scale ~smoke:[ 0.01 ] ~quick:[ 0.01 ]
    ~default:[ 0.001; 0.01; 0.05 ]
    ~full:[ 0.001; 0.005; 0.01; 0.02; 0.05 ]

let lossy ?(ctx = Runner.default) scale =
  let config = base scale in
  let cells =
    List.concat_map
      (fun p -> List.map (fun scheme -> (p, scheme)) schemes)
      (loss_rates scale)
  in
  let runs =
    run_cells ~ctx ~experiment:"faults-lossy"
      (List.map
         (fun (p, scheme) ->
           ( Printf.sprintf "%.4f" p,
             {
               config with
               D.scheme;
               fault = Some (Fault.lossy (Units.Prob.v p));
             } ))
         cells)
  in
  let rows =
    List.map2
      (fun (p, scheme) cell ->
        Printf.sprintf "%.1f%%" (100.0 *. p)
        :: Schemes.name scheme
        ::
        (match cell with
        | Ok r ->
            [
              mbps r.goodput_bps;
              Output.cell_f r.result.D.utilization;
              Output.cell_f ~digits:1
                (Units.Pkts.to_float r.result.D.avg_queue_pkts);
              Output.cell_e r.result.D.drop_rate;
              Output.cell_i (fstat r (fun s -> s.Fault.wire_drops));
              Output.cell_i r.result.D.loss_events;
              Output.cell_i r.timeouts;
              Output.cell_i r.result.D.audit_violations;
            ]
        | Error f -> Runner.failure_cells ~width:8 f))
      cells runs
  in
  {
    Output.title =
      "Fault suite: random non-congestive loss on the bottleneck (Section \
       7 robustness; PERT should track SACK, not collapse)";
    header =
      [
        "loss";
        "scheme";
        "goodput(Mb/s)";
        "util";
        "Q(pkts)";
        "qdrop";
        "wire-drops";
        "loss-ev";
        "RTOs";
        "audit";
      ];
    rows;
  }

(* --- link flapping -------------------------------------------------------- *)

let flapping ?(ctx = Runner.default) scale =
  let config = base scale in
  let mean_up = Float.max 2.0 (config.D.duration /. 12.0) in
  let mean_down = Scale.pick scale ~smoke:0.3 ~quick:0.4 ~default:0.5 ~full:1.0 in
  let spec =
    {
      Fault.none with
      Fault.outages =
        Fault.Flapping
          {
            mean_up = Units.Time.s mean_up;
            mean_down = Units.Time.s mean_down;
          };
    }
  in
  let runs =
    run_cells ~ctx ~experiment:"faults-flapping"
      (List.map
         (fun scheme ->
           (Schemes.name scheme, { config with D.scheme; fault = Some spec }))
         schemes)
  in
  let rows =
    List.map2
      (fun scheme cell ->
        Schemes.name scheme
        ::
        (match cell with
        | Ok r ->
            [
              Output.cell_f ~digits:1
                (match r.fstats with
                | Some s -> s.Fault.downtime
                | None -> 0.0);
              Output.cell_i (fstat r (fun s -> s.Fault.transitions));
              Output.cell_i (fstat r (fun s -> s.Fault.outage_drops));
              mbps r.goodput_bps;
              Output.cell_f r.result.D.utilization;
              Output.cell_i r.timeouts;
              Output.cell_i r.result.D.audit_violations;
            ]
        | Error f -> Runner.failure_cells ~width:7 f))
      schemes runs
  in
  {
    Output.title =
      Printf.sprintf
        "Fault suite: bottleneck flapping (exp up %.1fs / down %.1fs) — \
         recovery via RTO backoff, no livelock"
        mean_up mean_down;
    header =
      [
        "scheme"; "down(s)"; "flaps"; "outage-drops"; "goodput(Mb/s)";
        "util"; "RTOs"; "audit";
      ];
    rows;
  }

(* --- ECN bleaching -------------------------------------------------------- *)

let bleached ?(ctx = Runner.default) scale =
  let config = base scale in
  let levels =
    Scale.pick scale ~smoke:[ 1.0 ] ~quick:[ 1.0 ] ~default:[ 0.0; 0.5; 1.0 ]
      ~full:[ 0.0; 0.25; 0.5; 0.75; 1.0 ]
  in
  let cells =
    List.concat_map
      (fun bleach ->
        List.map
          (fun scheme -> (bleach, scheme))
          [ Schemes.Pert_ecn; Schemes.Sack_red_ecn ])
      levels
  in
  let runs =
    run_cells ~ctx ~experiment:"faults-bleached"
      (List.map
         (fun (bleach, scheme) ->
           let spec =
             { Fault.none with Fault.bleach_prob = Units.Prob.v bleach }
           in
           ( Printf.sprintf "%.4f" bleach,
             { config with D.scheme; fault = Some spec } ))
         cells)
  in
  let rows =
    List.map2
      (fun (bleach, scheme) cell ->
        Printf.sprintf "%.0f%%" (100.0 *. bleach)
        :: Schemes.name scheme
        ::
        (match cell with
        | Ok r ->
            [
              Output.cell_i r.result.D.marks;
              Output.cell_i (fstat r (fun s -> s.Fault.bleached));
              mbps r.goodput_bps;
              Output.cell_f r.result.D.utilization;
              Output.cell_f ~digits:1
                (Units.Pkts.to_float r.result.D.avg_queue_pkts);
              Output.cell_e r.result.D.drop_rate;
              Output.cell_i r.result.D.audit_violations;
            ]
        | Error f -> Runner.failure_cells ~width:7 f))
      cells runs
  in
  {
    Output.title =
      "Fault suite: ECN bleaching middlebox — PERT+ECN falls back to its \
       delay signal, SACK/RED-ECN falls back to drops";
    header =
      [
        "bleach"; "scheme"; "marks"; "bleached"; "goodput(Mb/s)"; "util";
        "Q(pkts)"; "qdrop"; "audit";
      ];
    rows;
  }

let all ?(ctx = Runner.default) scale =
  [ lossy ~ctx scale; flapping ~ctx scale; bleached ~ctx scale ]
