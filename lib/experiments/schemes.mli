(** The protocol/queue combinations the paper compares:

    - PERT over DropTail (the contribution),
    - SACK over DropTail,
    - ECN-enabled SACK over (adaptive, gentle) RED,
    - TCP Vegas over DropTail,
    - PERT/PI over DropTail and ECN-enabled SACK over a router PI queue
      (Section 6). *)

type t =
  | Pert
  | Pert_tuned of {
      curve : Pert_core.Response_curve.t;
      alpha : float;
      decrease_factor : float;
      limit_per_rtt : bool;
    }  (** PERT with non-default knobs — used by the ablation study *)
  | Pert_ecn
      (** PERT flows that are additionally ECN-capable, over a marking
          RED bottleneck — used by the fault suite to study ECN
          bleaching: with marks bleached it degrades to plain PERT *)
  | Sack_droptail
  | Sack_red_ecn
  | Vegas
  | Pert_pi of { target_delay : Units.Time.t }
  | Sack_pi_ecn of { target_delay : Units.Time.t }
  | Pert_rem  (** end-host REM emulation (paper's future-work direction) *)
  | Pert_avq  (** end-host AVQ emulation (paper's future-work direction) *)
  | Sack_rem_ecn  (** router REM with ECN *)
  | Sack_avq_ecn  (** router AVQ with ECN *)

val name : t -> string
val all_fig4_schemes : t list
(** The four schemes of Sections 4.1–4.7, in paper order:
    PERT, SACK/DropTail, SACK/RED-ECN, Vegas. *)

val uses_ecn : t -> bool

(** Everything the scheme needs to know about the scenario to configure
    its queue and controller. *)
type ctx = {
  sim : Sim_engine.Sim.t;
  capacity_pps : float;  (** bottleneck capacity in data packets/s *)
  limit_pkts : int;  (** bottleneck buffer *)
  rtt : float;  (** representative RTT, s (for PI gain design) *)
  nflows : int;  (** representative long-flow count (PI gain design) *)
}

val bottleneck_disc : t -> ctx -> Netsim.Queue_disc.t
(** Queue discipline for a bottleneck link under this scheme. *)

val cc_factory : t -> ctx -> unit -> Tcpstack.Cc.t
(** Congestion controller for each flow under this scheme. *)
