(** Ablation studies for the design choices DESIGN.md calls out, plus the
    Section 7 reverse-traffic discussion.

    These go beyond the paper's published figures: they quantify how much
    each knob of the PERT design contributes on a fixed reference dumbbell
    (queue, drops, utilisation, fairness, early-response count).

    Every table takes a {!Runner.ctx} (default {!Runner.default}): its
    independent dumbbell runs execute supervised and checkpointed, rows
    are bit-identical for every [ctx.jobs], and a failed or
    budget-exhausted cell renders as a [FAILED]/[TIMEOUT] marker row
    instead of aborting the table. *)

val decrease_factor : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** Early multiplicative decrease f in {0.20, 0.35, 0.50}: the paper
    derives 0.35 from the buffer-sizing rule; smaller responses leave
    standing queues, larger ones under-utilise. *)

val ewma_weight : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** History weight alpha in {0.875, 0.99, 0.999}: Section 2.4's accuracy
    argument, replayed in closed loop. *)

val curve_shape : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** Response-curve variants: paper thresholds vs tighter/looser bands and
    a higher p_max. *)

val rtt_limiter : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** The once-per-RTT response limiter on vs off. *)

val reverse_traffic : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** Section 7 "impact of reverse traffic": forward PERT flows against
    increasing reverse-path congestion, with the RTT signal vs the
    one-way-delay signal. The RTT variant sacrifices forward throughput
    to reverse congestion; the OWD variant does not. *)

val seed_sensitivity : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** The reference dumbbell re-run under five seeds per scheme: mean and
    standard deviation of queue, utilisation and fairness — the evidence
    behind "robust across seeds" in EXPERIMENTS.md. A failed seed
    degrades its scheme's whole row (a partial mean would be biased). *)

val all : ?ctx:Runner.ctx -> Scale.t -> Output.table list
