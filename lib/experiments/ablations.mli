(** Ablation studies for the design choices DESIGN.md calls out, plus the
    Section 7 reverse-traffic discussion.

    These go beyond the paper's published figures: they quantify how much
    each knob of the PERT design contributes on a fixed reference dumbbell
    (queue, drops, utilisation, fairness, early-response count).

    Every table takes [?jobs] (default 1): its independent dumbbell runs
    execute on a {!Parallel} pool of that many domains, and rows are
    bit-identical for every [jobs]. *)

val decrease_factor : ?jobs:int -> Scale.t -> Output.table
(** Early multiplicative decrease f in {0.20, 0.35, 0.50}: the paper
    derives 0.35 from the buffer-sizing rule; smaller responses leave
    standing queues, larger ones under-utilise. *)

val ewma_weight : ?jobs:int -> Scale.t -> Output.table
(** History weight alpha in {0.875, 0.99, 0.999}: Section 2.4's accuracy
    argument, replayed in closed loop. *)

val curve_shape : ?jobs:int -> Scale.t -> Output.table
(** Response-curve variants: paper thresholds vs tighter/looser bands and
    a higher p_max. *)

val rtt_limiter : ?jobs:int -> Scale.t -> Output.table
(** The once-per-RTT response limiter on vs off. *)

val reverse_traffic : ?jobs:int -> Scale.t -> Output.table
(** Section 7 "impact of reverse traffic": forward PERT flows against
    increasing reverse-path congestion, with the RTT signal vs the
    one-way-delay signal. The RTT variant sacrifices forward throughput
    to reverse congestion; the OWD variant does not. *)

val seed_sensitivity : ?jobs:int -> Scale.t -> Output.table
(** The reference dumbbell re-run under five seeds per scheme: mean and
    standard deviation of queue, utilisation and fairness — the evidence
    behind "robust across seeds" in EXPERIMENTS.md. *)

val all : ?jobs:int -> Scale.t -> Output.table list
