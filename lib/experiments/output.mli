(** Row-oriented result tables: pretty terminal rendering and CSV. *)

type table = {
  title : string;
  header : string list;
  rows : string list list;
}

val cell_f : ?digits:int -> float -> string
(** Fixed-point cell, default 3 digits. *)

val cell_e : float -> string
(** Scientific-notation cell (drop rates). *)

val cell_i : int -> string

(** {1 Failure markers}

    Graceful degradation: a sweep cell whose simulation failed or timed
    out renders as an explicit marker instead of aborting the whole
    table. Markers contain no comma, whitespace or newline, so they pass
    through {!to_csv} and {!to_gnuplot} unmangled. *)

val failed_cell : reason:string -> string
(** ["FAILED(<reason>)"], with [reason] sanitised to marker-safe
    characters and truncated to a few dozen bytes. *)

val timeout_cell : string
(** ["TIMEOUT"] — the cell's run exceeded its deadline/budget. *)

val is_failure_cell : string -> bool

val failure_count : table -> int
(** Number of failure-marker cells in the table's rows — the basis of the
    CLI's non-zero exit on partial results. *)

val to_csv : table -> string

val to_gnuplot : table -> string
(** Whitespace-separated data block with a ['#']-commented header —
    feedable straight to gnuplot's [plot "file" using 1:2]. *)

val print_all : Format.formatter -> table list -> unit
