(** Row-oriented result tables: pretty terminal rendering and CSV. *)

type table = {
  title : string;
  header : string list;
  rows : string list list;
}

val cell_f : ?digits:int -> float -> string
(** Fixed-point cell, default 3 digits. *)

val cell_e : float -> string
(** Scientific-notation cell (drop rates). *)

val cell_i : int -> string

val print : Format.formatter -> table -> unit
(** Aligned columns with a title line. *)

val to_csv : table -> string

val to_gnuplot : table -> string
(** Whitespace-separated data block with a ['#']-commented header —
    feedable straight to gnuplot's [plot "file" using 1:2]. *)

val print_all : Format.formatter -> table list -> unit
