(** Section 2 experiments — Figures 2, 3 and 4.

    Six traffic cases (combinations of long-lived flow counts and web
    session counts) run standard TCP over a DropTail dumbbell; one
    forward flow with a 60 ms path is the "observed" flow whose per-ACK
    RTT samples feed the predictors. *)

type case = {
  id : int;
  ftp_fwd : int;  (** forward long-lived flows *)
  ftp_rev : int;  (** reverse long-lived flows *)
  web_sessions : int;
}

val fig2 : Scale.t -> Output.table
(** Fraction of high-RTT→loss transitions, flow-level vs queue-level
    losses, per case. *)

val fig3 : Scale.t -> Output.table
(** Prediction efficiency / false positives / false negatives for each
    predictor of {!Predictors.Predictor.standard_set}, averaged over the
    six cases (queue-level losses). *)

val fig4 : Scale.t -> Output.table
(** PDF of the normalised queue occupancy at srtt_0.99 false positives,
    10 bins, pooled over the six cases. *)

