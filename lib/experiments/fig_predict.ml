module Sim = Sim_engine.Sim
module Stats = Sim_engine.Stats
module Link = Netsim.Link
module Flow = Tcpstack.Flow
module Trace = Predictors.Trace
module Predictor = Predictors.Predictor
module Transitions = Predictors.Transitions

type case = { id : int; ftp_fwd : int; ftp_rev : int; web_sessions : int }

(* Long-flow counts are kept low relative to capacity so the bottleneck
   queue actually oscillates (and occasionally drains): that is where the
   false positives the paper studies live. The full scale restores the
   paper's {50,100} flows x {100,500,1000} sessions. *)
let cases scale =
  let ftp, webs =
    Scale.pick scale
      ~quick:([ 2 ], [ 25; 50 ])
      ~default:([ 2; 3; 4 ], [ 50; 100 ])
      ~full:([ 25; 50 ], [ 100; 500; 1000 ])
  in
  let id = ref 0 in
  List.concat_map
    (fun f ->
      List.map
        (fun w ->
          incr id;
          { id = !id; ftp_fwd = f; ftp_rev = (f + 1) / 2; web_sessions = w })
        webs)
    ftp

let bandwidth scale = Scale.pick scale ~quick:10e6 ~default:20e6 ~full:100e6
let buffer_pkts scale = Scale.pick scale ~quick:60 ~default:100 ~full:750
let duration scale = Scale.pick scale ~quick:60.0 ~default:200.0 ~full:1000.0

(* The observed flow has a 60 ms path (threshold 65 ms in the paper);
   the rest spread between 20 and 120 ms. *)
let flow_rtts n =
  0.060
  :: List.init (max 0 (n - 1)) (fun i ->
         0.020 +. (0.100 *. float_of_int i /. float_of_int (max 1 (n - 1))))

(* Memoises the expensive SACK/droptail trace collection shared by
   fig2/fig3/fig4. Safe despite being toplevel state: keys fully determine
   the deterministic simulation that fills them, so a hit returns exactly
   what a fresh run would produce. Guarded because Registry.run_many fans
   figures out across domains (pertscan S1), so lookups and inserts can
   race; a duplicate miss merely recomputes the same trace. *)
let[@lint.allow "D3"] cache : (Scale.t * int, Trace.t) Hashtbl.t Parallel.Guard.t
    =
  Parallel.Guard.create (Hashtbl.create 16)

let collect_uncached scale case =
  let config =
    {
      Dumbbell.scheme = Schemes.Sack_droptail;
      bandwidth = bandwidth scale;
      rtt = 0.060;
      flow_rtts = flow_rtts case.ftp_fwd;
      reverse_flows = case.ftp_rev;
      web_sessions = case.web_sessions;
      buffer_pkts = Some (buffer_pkts scale);
      duration = duration scale;
      warmup = 0.0;
      start_window = (0.0, 5.0);
      delay_signal = `Rtt;
      fault = None;
      adversary = None;
      tcp = Dumbbell.default_tcp;
      audit = true;
      seed = 1000 + case.id;
    }
  in
  let built = Dumbbell.build config in
  let observed =
    match built.Dumbbell.forward_flows with
    | f :: _ -> f
    | [] -> invalid_arg "Fig_predict.collect: no flows"
  in
  Flow.enable_rtt_trace observed;
  Flow.enable_loss_trace observed;
  Link.enable_drop_trace built.Dumbbell.bottleneck;
  Link.enable_queue_trace built.Dumbbell.bottleneck ();
  let sim = Netsim.Topology.sim built.Dumbbell.topo in
  Sim.run ~until:(Units.Time.s config.Dumbbell.duration) sim;
  let times, rtts, cwnds = Flow.rtt_trace observed in
  let limit =
    float_of_int
      (Link.disc built.Dumbbell.bottleneck).Netsim.Queue_disc.capacity_pkts
  in
  Trace.make ~times ~rtts ~cwnds
    ~flow_losses:(Flow.loss_times observed)
    ~queue_losses:(Link.drop_times built.Dumbbell.bottleneck)
    ~queue_occupancy:(fun t ->
      Link.queue_at built.Dumbbell.bottleneck (Units.Time.s t) /. limit)
    ()

(* The lock is never held across a simulation: look up, run unlocked on a
   miss, insert. Two domains missing the same key both simulate and the
   later [replace] wins — identical payloads, so the cache stays
   deterministic. *)
let collect scale case =
  match
    Parallel.Guard.with_ cache (fun tbl -> Hashtbl.find_opt tbl (scale, case.id))
  with
  | Some trace -> trace
  | None ->
      let trace = collect_uncached scale case in
      Parallel.Guard.with_ cache (fun tbl ->
          Hashtbl.replace tbl (scale, case.id) trace);
      trace

let observed_threshold = 0.005 (* 65 ms on a 60 ms path *)

let fig2 scale =
  let predictor = Predictor.inst_threshold ~offset:observed_threshold () in
  let rows =
    List.map
      (fun case ->
        let trace = collect scale case in
        let states = predictor.Predictor.predict trace in
        let frac losses =
          Transitions.efficiency
            (Transitions.count ~times:trace.Trace.times ~states ~losses ())
        in
        [
          Printf.sprintf "case%d" case.id;
          Output.cell_i (case.ftp_fwd + case.ftp_rev);
          Output.cell_i case.web_sessions;
          Output.cell_f (frac trace.Trace.flow_losses);
          Output.cell_f (frac trace.Trace.queue_losses);
        ])
      (cases scale)
  in
  {
    Output.title =
      "Fig 2: P(high-RTT -> loss), losses measured in-flow vs at the queue";
    header = [ "case"; "ftp"; "web"; "flow-level"; "queue-level" ];
    rows;
  }

let fig3 scale =
  let predictors = Predictor.standard_set ~buffer_pkts:(buffer_pkts scale) in
  let traces = List.map (collect scale) (cases scale) in
  let rows =
    List.map
      (fun p ->
        let eff = Stats.Acc.create ()
        and fp = Stats.Acc.create ()
        and fn = Stats.Acc.create () in
        List.iter
          (fun trace ->
            let states = p.Predictor.predict trace in
            let c =
              Transitions.count ~times:trace.Trace.times ~states
                ~losses:trace.Trace.queue_losses ()
            in
            Stats.Acc.add eff (Transitions.efficiency c);
            Stats.Acc.add fp (Transitions.false_positive_rate c);
            Stats.Acc.add fn (Transitions.false_negative_rate c))
          traces;
        [
          p.Predictor.name;
          Output.cell_f (Stats.Acc.mean eff);
          Output.cell_f (Stats.Acc.mean fp);
          Output.cell_f (Stats.Acc.mean fn);
        ])
      predictors
  in
  {
    Output.title =
      "Fig 3: prediction efficiency / false positives / false negatives \
       (queue-level losses, mean over cases)";
    header = [ "predictor"; "efficiency"; "false-pos"; "false-neg" ];
    rows;
  }

let fig4 scale =
  let predictor = Predictor.ewma ~alpha:0.99 ~offset:observed_threshold () in
  let hist = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:10 in
  List.iter
    (fun case ->
      let trace = collect scale case in
      let states = predictor.Predictor.predict trace in
      let fp_times =
        Transitions.false_positive_times ~times:trace.Trace.times ~states
          ~losses:trace.Trace.queue_losses ()
      in
      Array.iter
        (fun t -> Stats.Histogram.add hist (trace.Trace.queue_occupancy t))
        fp_times)
    (cases scale);
  let pdf = Stats.Histogram.pdf hist in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i p ->
           [
             Output.cell_f ~digits:2 (Stats.Histogram.bin_center hist i);
             Output.cell_f p;
           ])
         pdf)
  in
  {
    Output.title =
      "Fig 4: PDF of normalised queue length at srtt_0.99 false positives";
    header = [ "queue-frac"; "pdf" ];
    rows;
  }
