(** Name → experiment mapping shared by the CLI and the benchmark
    harness. *)

type experiment = {
  id : string;  (** e.g. "fig6" *)
  paper_ref : string;  (** the table/figure it regenerates *)
  summary : string;
  run : jobs:int -> Scale.t -> Output.table list;
      (** [jobs] is the {!Parallel} pool width used for the experiment's
          independent simulation runs. Tables are bit-identical for every
          [jobs]; [~jobs:1] runs fully sequentially. *)
}

val all : experiment list
(** Every reproducible table/figure: fig2–fig14 and table1. *)

val find : string -> experiment option
val ids : unit -> string list

val run_many :
  jobs:int -> Scale.t -> experiment list -> (experiment * Output.table list) list
(** Run several experiments, fanning the list itself out across [jobs]
    domains (each experiment then runs its own simulations sequentially —
    coarse tasks keep the pool saturated without nesting domains). Results
    are returned in input order, and are bit-identical to running each
    experiment alone. *)
