(** Name → experiment mapping shared by the CLI and the benchmark
    harness. *)

type experiment = {
  id : string;  (** e.g. "fig6" *)
  paper_ref : string;  (** the table/figure it regenerates *)
  summary : string;
  run : ctx:Runner.ctx -> Scale.t -> Output.table list;
      (** [ctx] carries the pool width, result store and task budgets
          for the experiment's independent simulation runs. Tables are
          bit-identical for every [ctx.jobs]; {!Runner.default} runs
          fully sequentially with no store. *)
}

val all : experiment list
(** Every reproducible table/figure: fig2–fig14 and table1. *)

val find : string -> experiment option
val ids : unit -> string list

val run_many :
  ctx:Runner.ctx -> Scale.t -> experiment list ->
  (experiment * Output.table list) list
(** Run several experiments, fanning the list itself out across
    [ctx.jobs] domains (each experiment then runs its own simulations
    sequentially — coarse tasks keep the pool saturated without nesting
    domains; the store, budgets and retry policy are kept). Results are
    returned in input order, and are bit-identical to running each
    experiment alone. *)
