(** Name → experiment mapping shared by the CLI and the benchmark
    harness. *)

type experiment = {
  id : string;  (** e.g. "fig6" *)
  paper_ref : string;  (** the table/figure it regenerates *)
  summary : string;
  run : Scale.t -> Output.table list;
}

val all : experiment list
(** Every reproducible table/figure: fig2–fig14 and table1. *)

val find : string -> experiment option
val ids : unit -> string list
