(** The steady-state evaluation of Section 4: parameter sweeps over the
    dumbbell, comparing PERT, SACK/DropTail, SACK/RED-ECN and Vegas on
    average queue, drop rate, utilisation and Jain fairness. *)

val fig5 : Output.table
(** The PERT response curve itself (analytic; paper Fig. 5). *)

val fig6 : ?jobs:int -> Scale.t -> Output.table
(** Bottleneck-bandwidth sweep (Section 4.1). Every sweep runs its
    (point, scheme) grid on a {!Parallel} pool of [jobs] domains
    (default 1 = sequential); rows are bit-identical for every [jobs]. *)

val fig7 : ?jobs:int -> Scale.t -> Output.table
(** End-to-end RTT sweep (Section 4.2). *)

val fig8 : ?jobs:int -> Scale.t -> Output.table
(** Long-lived flow count sweep (Section 4.3). *)

val fig9 : ?jobs:int -> Scale.t -> Output.table
(** Web-session sweep (Section 4.4). *)

val table1 : ?jobs:int -> Scale.t -> Output.table
(** Heterogeneous RTTs, 10 flows at 12–120 ms plus web background
    (Section 4.5). *)
