(** The steady-state evaluation of Section 4: parameter sweeps over the
    dumbbell, comparing PERT, SACK/DropTail, SACK/RED-ECN and Vegas on
    average queue, drop rate, utilisation and Jain fairness.

    Every sweep takes a {!Runner.ctx} (default {!Runner.default}:
    sequential, no store): its (point, scheme) grid runs supervised and
    checkpointed, rows are bit-identical for every [ctx.jobs], and a
    failed or budget-exhausted cell renders as a [FAILED]/[TIMEOUT]
    marker row instead of aborting the table. *)

val fig5 : Output.table
(** The PERT response curve itself (analytic; paper Fig. 5). *)

val fig6 : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** Bottleneck-bandwidth sweep (Section 4.1). *)

val fig7 : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** End-to-end RTT sweep (Section 4.2). *)

val fig8 : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** Long-lived flow count sweep (Section 4.3). *)

val fig9 : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** Web-session sweep (Section 4.4). *)

val table1 : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** Heterogeneous RTTs, 10 flows at 12–120 ms plus web background
    (Section 4.5). *)
