(** Checkpointed result store: crash-safe memoisation of experiment
    cells, keyed by (experiment, scheme, seed, parameter point).

    Each cell is one file named by the MD5 of its canonical key, holding

    {v pert-store/1 <md5 of payload> <md5 of canonical key>\n<payload> v}

    written via a same-directory temp file and an atomic [Sys.rename].
    A process killed mid-sweep therefore loses at most its in-flight
    cells; everything committed before the kill is replayed byte-for-byte
    by [--resume]. A cell that fails its checksum (corruption, torn
    write by some other tool, key collision) reads as a miss and is
    recomputed — the store is a cache, never an oracle.

    Payloads are opaque bytes; {!Runner} stores [Marshal]-encoded result
    records, so a store directory must be deleted when the compiler or a
    result type changes — the checksum guards integrity, not schema. *)

type t

val open_ : dir:string -> t
(** Open (creating the directory, and its parents, if needed). *)

type key

val key :
  experiment:string ->
  ?scheme:string ->
  ?seed:int ->
  ?point:string ->
  ?extra:string ->
  unit ->
  key
(** Canonical cell identity. [point] is the sweep coordinate ("20.",
    "0.01", a row label); [extra] disambiguates everything the other
    fields do not capture — callers pass a digest of the full config, so
    the same (experiment, scheme, seed, point) at a different scale maps
    to a different cell. Free-text fields are sanitised; defaults stand
    in for fields without a natural value. *)

val canonical : key -> string
(** The canonical string (for diagnostics and tests). *)

val path : t -> key -> string
(** The cell file the key maps to (for diagnostics and tests); the file
    need not exist. *)

val find : t -> key -> string option
(** The stored payload, or [None] when absent, torn, corrupt or written
    under a different key. Never raises on a damaged cell file. *)

val put : t -> key -> payload:string -> unit
(** Commit a payload atomically (temp file + rename). Last writer wins;
    concurrent writers of the {e same} key are benign because both write
    identical content. *)

val write_atomic : path:string -> string -> unit
(** The store's writer, exposed for other emitters (CSV, bench JSON):
    write to [path ^ ".tmp"] in the same directory, then [Sys.rename]
    into place, so readers never observe a truncated file. *)
