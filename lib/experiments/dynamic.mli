(** Section 4.7 — Figure 12: responsiveness to sudden traffic changes.
    Cohorts of flows join the dumbbell at fixed epochs, then leave in
    arrival order; the harness reports each cohort's aggregate throughput
    per time bin, from t = 0 (no warm-up discard — the transients are the
    point). *)

type config = {
  scheme : Schemes.t;
  bandwidth : float;
  rtt : float;
  cohort_size : int;
  n_cohorts : int;  (** cohorts joining (paper: 4, at 0/100/200/300 s) *)
  epoch : float;  (** seconds between arrival (and departure) events *)
  bin : float;  (** reporting bin width *)
  seed : int;
}

val default : Scale.t -> Schemes.t -> config

val run :
  ?max_events:int -> ?max_wall:Units.Time.t -> config ->
  float array * float array array
(** [(bin_times, per_cohort_throughput)] — [per_cohort.(k).(i)] is cohort
    [k]'s aggregate goodput (bits/s) during bin [i]. When either budget
    is set it is armed on the scenario's simulator
    ({!Sim_engine.Sim.set_budget}). *)

val fig12 : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** One table row per bin and scheme: the per-cohort series for every
    scheme of the paper's comparison. Per-scheme scenarios run supervised
    and checkpointed per [ctx] (default {!Runner.default}); rows are
    bit-identical for every [ctx.jobs], and a failed scheme degrades to
    one marker row instead of aborting the table. *)

val run_cbr :
  ?max_events:int -> ?max_wall:Units.Time.t -> config ->
  cbr_share:float -> float array * float array * float array
(** Section 4.7's companion experiment (results relegated to the thesis):
    one cohort of flows, with a non-responsive CBR stream consuming
    [cbr_share] of the bottleneck during the middle third of the run.
    Returns [(bin_times, tcp_aggregate_bps, cbr_received_bps)]. *)

val dynamic_cbr : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** The CBR on/off transient for every scheme of the comparison. *)
