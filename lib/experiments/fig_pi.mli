(** Section 6 — Figure 14: emulating PI from end hosts. The RTT sweep of
    Fig. 7 rerun with PERT/PI against router-based PI with ECN, both
    targeting a 3 ms queueing delay. *)

val fig14 : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** The (rtt, scheme) grid runs supervised and checkpointed per [ctx]
    (default {!Runner.default}); rows are bit-identical for every
    [ctx.jobs], and failed cells degrade to [FAILED]/[TIMEOUT] marker
    rows. *)

val other_aqm : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** The paper's closing direction ("other AQM schemes can be potentially
    emulated"): the same sweep with end-host REM against router REM/ECN
    and router AVQ/ECN. *)
