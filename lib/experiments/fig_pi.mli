(** Section 6 — Figure 14: emulating PI from end hosts. The RTT sweep of
    Fig. 7 rerun with PERT/PI against router-based PI with ECN, both
    targeting a 3 ms queueing delay. *)

val fig14 : ?jobs:int -> Scale.t -> Output.table
(** The (rtt, scheme) grid runs on a {!Parallel} pool of [jobs] domains
    (default 1); rows are bit-identical for every [jobs]. *)

val other_aqm : ?jobs:int -> Scale.t -> Output.table
(** The paper's closing direction ("other AQM schemes can be potentially
    emulated"): the same sweep with end-host REM against router REM/ECN
    and router AVQ/ECN. *)
