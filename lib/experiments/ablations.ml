module D = Dumbbell
module Curve = Pert_core.Response_curve

(* Shared reference scenario: a moderately loaded dumbbell where both the
   standing queue and the utilisation cost of over-responding are visible. *)
let base scale =
  let bandwidth = Scale.pick scale ~quick:10e6 ~default:40e6 ~full:150e6 in
  let nflows = Scale.pick scale ~quick:6 ~default:16 ~full:50 in
  let duration = Scale.pick scale ~quick:30.0 ~default:80.0 ~full:400.0 in
  ( D.uniform_flows
      {
        D.default with
        D.bandwidth;
        duration;
        warmup = duration /. 3.0;
        seed = 7;
      }
      ~n:nflows,
    nflows )

let tuned ?(curve = Curve.default) ?(alpha = 0.99) ?(decrease_factor = 0.35)
    ?(limit_per_rtt = true) () =
  Schemes.Pert_tuned { curve; alpha; decrease_factor; limit_per_rtt }

let run_row label scale scheme extra_cells =
  let config, _ = base scale in
  let r = D.run { config with D.scheme } in
  label :: extra_cells
  @ [
      Output.cell_f ~digits:1 (Units.Pkts.to_float r.D.avg_queue_pkts);
      Output.cell_e r.D.drop_rate;
      Output.cell_f r.D.utilization;
      Output.cell_f r.D.jain;
      Output.cell_i r.D.early_responses;
    ]

let metric_header = [ "Q(pkts)"; "droprate"; "util"; "jain"; "early" ]

let decrease_factor scale =
  let rows =
    List.map
      (fun f ->
        run_row (Printf.sprintf "f=%.2f" f) scale
          (tuned ~decrease_factor:f ())
          [])
      [ 0.20; 0.35; 0.50 ]
  in
  {
    Output.title =
      "Ablation: early decrease factor (paper picks 0.35 from B = BDP/2)";
    header = ("factor" :: metric_header);
    rows;
  }

let ewma_weight scale =
  let rows =
    List.map
      (fun a ->
        run_row (Printf.sprintf "alpha=%.3f" a) scale (tuned ~alpha:a ()) [])
      [ 0.875; 0.99; 0.999 ]
  in
  {
    Output.title = "Ablation: srtt history weight (paper picks 0.99)";
    header = ("alpha" :: metric_header);
    rows;
  }

let curve_shape scale =
  let variants =
    [
      ("paper 5-10ms p.05", Curve.default);
      ( "tight 2.5-5ms p.05",
        Curve.make ~t_min:(Units.Time.s 0.0025) ~t_max:(Units.Time.s 0.005)
          ~p_max:(Units.Prob.v 0.05) );
      ( "loose 10-20ms p.05",
        Curve.make ~t_min:(Units.Time.s 0.010) ~t_max:(Units.Time.s 0.020)
          ~p_max:(Units.Prob.v 0.05) );
      ( "hot 5-10ms p.20",
        Curve.make ~t_min:(Units.Time.s 0.005) ~t_max:(Units.Time.s 0.010)
          ~p_max:(Units.Prob.v 0.20) );
    ]
  in
  let rows =
    List.map (fun (label, curve) -> run_row label scale (tuned ~curve ()) [])
      variants
  in
  {
    Output.title = "Ablation: response-curve thresholds and p_max";
    header = ("curve" :: metric_header);
    rows;
  }

let rtt_limiter scale =
  let rows =
    [
      run_row "once-per-rtt" scale (tuned ~limit_per_rtt:true ()) [];
      run_row "unlimited" scale (tuned ~limit_per_rtt:false ()) [];
    ]
  in
  {
    Output.title =
      "Ablation: the at-most-one-early-response-per-RTT limiter";
    header = ("limiter" :: metric_header);
    rows;
  }

let reverse_traffic scale =
  let config, nflows = base scale in
  let reverse_levels =
    [ 0; nflows / 2; nflows ]
  in
  let rows =
    List.concat_map
      (fun reverse_flows ->
        List.map
          (fun (label, delay_signal) ->
            let r =
              D.run { config with D.reverse_flows; delay_signal }
            in
            [
              Output.cell_i reverse_flows;
              label;
              Output.cell_f r.D.utilization;
              Output.cell_f ~digits:1 (Units.Pkts.to_float r.D.avg_queue_pkts);
              Output.cell_e r.D.drop_rate;
              Output.cell_i r.D.early_responses;
            ])
          [ ("pert-rtt", `Rtt); ("pert-owd", `Owd) ])
      reverse_levels
  in
  {
    Output.title =
      "Section 7: reverse-path congestion vs PERT's delay signal";
    header = [ "rev-flows"; "signal"; "fwd-util"; "Q(pkts)"; "droprate"; "early" ];
    rows;
  }

let seed_sensitivity scale =
  let config, _ = base scale in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let rows =
    List.map
      (fun scheme ->
        let q = Sim_engine.Stats.Acc.create ()
        and u = Sim_engine.Stats.Acc.create ()
        and j = Sim_engine.Stats.Acc.create () in
        List.iter
          (fun seed ->
            let r = D.run { config with D.scheme; seed } in
            Sim_engine.Stats.Acc.add q (Units.Pkts.to_float r.D.avg_queue_pkts);
            Sim_engine.Stats.Acc.add u r.D.utilization;
            Sim_engine.Stats.Acc.add j r.D.jain)
          seeds;
        let pm acc digits =
          Printf.sprintf "%.*f+-%.*f" digits (Sim_engine.Stats.Acc.mean acc)
            digits
            (Sim_engine.Stats.Acc.stddev acc)
        in
        [ Schemes.name scheme; pm q 1; pm u 3; pm j 3 ])
      Schemes.all_fig4_schemes
  in
  {
    Output.title = "Seed sensitivity: mean +- sd over five seeds";
    header = [ "scheme"; "Q(pkts)"; "util"; "jain" ];
    rows;
  }

let all scale =
  [
    decrease_factor scale;
    ewma_weight scale;
    curve_shape scale;
    rtt_limiter scale;
    reverse_traffic scale;
    seed_sensitivity scale;
  ]
