module D = Dumbbell
module Curve = Pert_core.Response_curve

(* Shared reference scenario: a moderately loaded dumbbell where both the
   standing queue and the utilisation cost of over-responding are visible. *)
let base scale =
  let bandwidth = Scale.pick scale ~quick:10e6 ~default:40e6 ~full:150e6 in
  let nflows = Scale.pick scale ~quick:6 ~default:16 ~full:50 in
  let duration = Scale.pick scale ~quick:30.0 ~default:80.0 ~full:400.0 in
  ( D.uniform_flows
      {
        D.default with
        D.bandwidth;
        duration;
        warmup = duration /. 3.0;
        seed = 7;
      }
      ~n:nflows,
    nflows )

let tuned ?(curve = Curve.default) ?(alpha = 0.99) ?(decrease_factor = 0.35)
    ?(limit_per_rtt = true) () =
  Schemes.Pert_tuned { curve; alpha; decrease_factor; limit_per_rtt }

let metric_cells (r : D.result) =
  [
    Output.cell_f ~digits:1 (Units.Pkts.to_float r.D.avg_queue_pkts);
    Output.cell_e r.D.drop_rate;
    Output.cell_f r.D.utilization;
    Output.cell_f r.D.jain;
    Output.cell_i r.D.early_responses;
  ]

let metric_header = [ "Q(pkts)"; "droprate"; "util"; "jain"; "early" ]
let metric_width = List.length metric_header

(* Each spec is (label, scheme): one independent dumbbell per row, run
   through the supervised/checkpointed runner and rendered in spec order,
   with failed cells degraded to explicit marker rows. *)
let run_rows ~ctx ~experiment scale specs =
  let config, _ = base scale in
  let cells =
    D.run_cells ~ctx ~experiment
      (List.map
         (fun (label, scheme) -> (label, { config with D.scheme }))
         specs)
  in
  List.map2
    (fun (label, _) cell ->
      label
      ::
      (match cell with
      | Ok r -> metric_cells r
      | Error f -> Runner.failure_cells ~width:metric_width f))
    specs cells

let decrease_factor ?(ctx = Runner.default) scale =
  let rows =
    run_rows ~ctx ~experiment:"ablation-decrease" scale
      (List.map
         (fun f -> (Printf.sprintf "f=%.2f" f, tuned ~decrease_factor:f ()))
         [ 0.20; 0.35; 0.50 ])
  in
  {
    Output.title =
      "Ablation: early decrease factor (paper picks 0.35 from B = BDP/2)";
    header = ("factor" :: metric_header);
    rows;
  }

let ewma_weight ?(ctx = Runner.default) scale =
  let rows =
    run_rows ~ctx ~experiment:"ablation-ewma" scale
      (List.map
         (fun a -> (Printf.sprintf "alpha=%.3f" a, tuned ~alpha:a ()))
         [ 0.875; 0.99; 0.999 ])
  in
  {
    Output.title = "Ablation: srtt history weight (paper picks 0.99)";
    header = ("alpha" :: metric_header);
    rows;
  }

let curve_shape ?(ctx = Runner.default) scale =
  let variants =
    [
      ("paper 5-10ms p.05", Curve.default);
      ( "tight 2.5-5ms p.05",
        Curve.make ~t_min:(Units.Time.s 0.0025) ~t_max:(Units.Time.s 0.005)
          ~p_max:(Units.Prob.v 0.05) );
      ( "loose 10-20ms p.05",
        Curve.make ~t_min:(Units.Time.s 0.010) ~t_max:(Units.Time.s 0.020)
          ~p_max:(Units.Prob.v 0.05) );
      ( "hot 5-10ms p.20",
        Curve.make ~t_min:(Units.Time.s 0.005) ~t_max:(Units.Time.s 0.010)
          ~p_max:(Units.Prob.v 0.20) );
    ]
  in
  let rows =
    run_rows ~ctx ~experiment:"ablation-curve" scale
      (List.map (fun (label, curve) -> (label, tuned ~curve ())) variants)
  in
  {
    Output.title = "Ablation: response-curve thresholds and p_max";
    header = ("curve" :: metric_header);
    rows;
  }

let rtt_limiter ?(ctx = Runner.default) scale =
  let rows =
    run_rows ~ctx ~experiment:"ablation-limiter" scale
      [
        ("once-per-rtt", tuned ~limit_per_rtt:true ());
        ("unlimited", tuned ~limit_per_rtt:false ());
      ]
  in
  {
    Output.title =
      "Ablation: the at-most-one-early-response-per-RTT limiter";
    header = ("limiter" :: metric_header);
    rows;
  }

let reverse_traffic ?(ctx = Runner.default) scale =
  let config, nflows = base scale in
  let reverse_levels =
    [ 0; nflows / 2; nflows ]
  in
  let cells =
    List.concat_map
      (fun reverse_flows ->
        List.map
          (fun (label, delay_signal) -> (reverse_flows, label, delay_signal))
          [ ("pert-rtt", `Rtt); ("pert-owd", `Owd) ])
      reverse_levels
  in
  let results =
    D.run_cells ~ctx ~experiment:"reverse"
      (List.map
         (fun (reverse_flows, label, delay_signal) ->
           ( Printf.sprintf "%d-%s" reverse_flows label,
             { config with D.reverse_flows; delay_signal } ))
         cells)
  in
  let rows =
    List.map2
      (fun (reverse_flows, label, _) cell ->
        Output.cell_i reverse_flows
        :: label
        ::
        (match cell with
        | Ok r ->
            [
              Output.cell_f r.D.utilization;
              Output.cell_f ~digits:1
                (Units.Pkts.to_float r.D.avg_queue_pkts);
              Output.cell_e r.D.drop_rate;
              Output.cell_i r.D.early_responses;
            ]
        | Error f -> Runner.failure_cells ~width:4 f))
      cells results
  in
  {
    Output.title =
      "Section 7: reverse-path congestion vs PERT's delay signal";
    header = [ "rev-flows"; "signal"; "fwd-util"; "Q(pkts)"; "droprate"; "early" ];
    rows;
  }

let seed_sensitivity ?(ctx = Runner.default) scale =
  let config, _ = base scale in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let nseeds = List.length seeds in
  (* The (scheme, seed) grid is one flat task list; results come back in
     submission order, so seeds for scheme [i] occupy the contiguous slice
     starting at [i * nseeds]. *)
  let cells =
    List.concat_map
      (fun scheme -> List.map (fun seed -> (scheme, seed)) seeds)
      Schemes.all_fig4_schemes
  in
  let results =
    Array.of_list
      (D.run_cells ~ctx ~experiment:"seeds"
         (List.map
            (fun (scheme, seed) ->
              (string_of_int seed, { config with D.scheme; seed }))
            cells))
  in
  let rows =
    List.mapi
      (fun i scheme ->
        (* A mean over a partial seed set would be silently biased, so one
           bad seed degrades the scheme's whole row to a marker. *)
        let slice = Array.to_list (Array.sub results (i * nseeds) nseeds) in
        match
          List.find_map
            (function Error f -> Some f | Ok _ -> None)
            slice
        with
        | Some f -> Schemes.name scheme :: Runner.failure_cells ~width:3 f
        | None ->
            let q = Sim_engine.Stats.Acc.create ()
            and u = Sim_engine.Stats.Acc.create ()
            and j = Sim_engine.Stats.Acc.create () in
            List.iter
              (function
                | Error _ -> ()
                | Ok r ->
                    Sim_engine.Stats.Acc.add q
                      (Units.Pkts.to_float r.D.avg_queue_pkts);
                    Sim_engine.Stats.Acc.add u r.D.utilization;
                    Sim_engine.Stats.Acc.add j r.D.jain)
              slice;
            let pm acc digits =
              Printf.sprintf "%.*f+-%.*f" digits
                (Sim_engine.Stats.Acc.mean acc)
                digits
                (Sim_engine.Stats.Acc.stddev acc)
            in
            [ Schemes.name scheme; pm q 1; pm u 3; pm j 3 ])
      Schemes.all_fig4_schemes
  in
  {
    Output.title = "Seed sensitivity: mean +- sd over five seeds";
    header = [ "scheme"; "Q(pkts)"; "util"; "jain" ];
    rows;
  }

let all ?(ctx = Runner.default) scale =
  [
    decrease_factor ~ctx scale;
    ewma_weight ~ctx scale;
    curve_shape ~ctx scale;
    rtt_limiter ~ctx scale;
    reverse_traffic ~ctx scale;
    seed_sensitivity ~ctx scale;
  ]
