(** Section 5 — Figure 13: stability of the PERT fluid model.

    (a) the minimum stable sampling interval δ as a function of the flow
    lower bound N⁻ (eq. 13, at the paper's 10 Mbps / 200 ms setting);
    (b)–(d) trajectories of the DDE (14) at R = 100, 160 and 171 ms. *)

val fig13a : Output.table

val fig13_trajectories : Scale.t -> Output.table
(** Sampled window trajectories for the three delays, plus the stability
    verdict of {!Fluid.Pert_fluid.is_stable_trajectory} and the
    Theorem 1 prediction. *)

val stability_region : Output.table
(** Section 5.4's two analytical claims, by bisection on the closed-form
    conditions: (a) with matched control laws PERT's maximum stable RTT
    exceeds router RED's at every capacity; (b) holding [C/N] constant
    (eq. 15) PERT's boundary is independent of capacity while RED's is
    not. *)
