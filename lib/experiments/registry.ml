type experiment = {
  id : string;
  paper_ref : string;
  summary : string;
  run : ctx:Runner.ctx -> Scale.t -> Output.table list;
}

let one f ~ctx scale = [ f ?ctx:(Some ctx) scale ]

(* Single-run or closed-form tables: no independent tasks to spread. *)
let seq f ~ctx:_ scale = [ f scale ]

let all =
  [
    {
      id = "fig2";
      paper_ref = "Figure 2";
      summary = "high-RTT->loss correlation, flow-level vs queue-level";
      run = seq Fig_predict.fig2;
    };
    {
      id = "fig3";
      paper_ref = "Figure 3";
      summary = "efficiency/false-pos/false-neg of nine predictors";
      run = seq Fig_predict.fig3;
    };
    {
      id = "fig4";
      paper_ref = "Figure 4";
      summary = "queue-occupancy PDF at srtt_0.99 false positives";
      run = seq Fig_predict.fig4;
    };
    {
      id = "fig5";
      paper_ref = "Figure 5";
      summary = "PERT probabilistic response curve";
      run = (fun ~ctx:_ _ -> [ Sweeps.fig5 ]);
    };
    {
      id = "fig6";
      paper_ref = "Figure 6";
      summary = "bottleneck bandwidth sweep, four schemes";
      run = one Sweeps.fig6;
    };
    {
      id = "fig7";
      paper_ref = "Figure 7";
      summary = "end-to-end RTT sweep, four schemes";
      run = one Sweeps.fig7;
    };
    {
      id = "fig8";
      paper_ref = "Figure 8";
      summary = "long-lived flow count sweep, four schemes";
      run = one Sweeps.fig8;
    };
    {
      id = "fig9";
      paper_ref = "Figure 9";
      summary = "web-session sweep, four schemes";
      run = one Sweeps.fig9;
    };
    {
      id = "table1";
      paper_ref = "Table 1";
      summary = "heterogeneous RTTs with web background";
      run = one Sweeps.table1;
    };
    {
      id = "fig11";
      paper_ref = "Figures 10-11";
      summary = "six-router multiple-bottleneck chain";
      run = one Multibneck.fig11;
    };
    {
      id = "fig12";
      paper_ref = "Figure 12";
      summary = "cohort arrivals/departures, per-cohort throughput";
      run = one Dynamic.fig12;
    };
    {
      id = "fig13a";
      paper_ref = "Figure 13(a)";
      summary = "minimum stable sampling interval vs flow count";
      run = (fun ~ctx:_ _ -> [ Fig_fluid.fig13a ]);
    };
    {
      id = "fig13";
      paper_ref = "Figure 13(b-d)";
      summary = "fluid-model trajectories across the stability boundary";
      run = seq Fig_fluid.fig13_trajectories;
    };
    {
      id = "fig14";
      paper_ref = "Figure 14";
      summary = "PERT/PI vs router PI with ECN, RTT sweep";
      run = one Fig_pi.fig14;
    };
    {
      id = "other-aqm";
      paper_ref = "Section 8 direction";
      summary = "end-host REM vs router REM/AVQ with ECN, RTT sweep";
      run = one Fig_pi.other_aqm;
    };
    {
      id = "stability";
      paper_ref = "Section 5.4";
      summary = "PERT vs router-RED stability boundaries (closed form)";
      run = (fun ~ctx:_ _ -> [ Fig_fluid.stability_region ]);
    };
    {
      id = "dynamic-cbr";
      paper_ref = "Section 4.7 (companion)";
      summary = "non-responsive CBR on/off transient, four schemes";
      run = one Dynamic.dynamic_cbr;
    };
    {
      id = "ablations";
      paper_ref = "DESIGN.md (beyond the paper)";
      summary = "decrease factor / EWMA weight / curve shape / RTT limiter";
      run =
        (fun ~ctx scale ->
          [
            Ablations.decrease_factor ~ctx scale;
            Ablations.ewma_weight ~ctx scale;
            Ablations.curve_shape ~ctx scale;
            Ablations.rtt_limiter ~ctx scale;
          ]);
    };
    {
      id = "seeds";
      paper_ref = "methodology";
      summary = "five-seed mean +- sd of the reference comparison";
      run = (fun ~ctx scale -> [ Ablations.seed_sensitivity ~ctx scale ]);
    };
    {
      id = "reverse";
      paper_ref = "Section 7 discussion";
      summary = "reverse-path congestion: RTT vs one-way-delay signal";
      run = (fun ~ctx scale -> [ Ablations.reverse_traffic ~ctx scale ]);
    };
    {
      id = "faults";
      paper_ref = "Sections 5.3/7 (beyond the paper)";
      summary = "PERT vs SACK vs PERT+ECN under loss, flapping, ECN bleaching";
      run = (fun ~ctx scale -> Faults.all ~ctx scale);
    };
    {
      id = "adversarial";
      paper_ref = "Section 7 (beyond the paper)";
      summary = "hardened TCP vs on-path attacker: RST/ACK storms, window clamping";
      run = (fun ~ctx scale -> Adversarial.all ~ctx scale);
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all

let run_many ~ctx scale exps =
  match exps with
  | [] -> []
  | [ e ] -> [ (e, e.run ~ctx scale) ]
  | _ :: _ when ctx.Runner.jobs <= 1 ->
      List.map (fun e -> (e, e.run ~ctx scale)) exps
  | _ :: _ ->
      (* Registry-level fan-out: one task per experiment, each run
         sequentially inside (coarse granularity beats nested pools).
         The child ctx keeps the store, budgets and retry policy. *)
      let inner = Runner.sequential ctx in
      Parallel.map ~jobs:ctx.Runner.jobs
        (fun e -> (e, e.run ~ctx:inner scale))
        exps
