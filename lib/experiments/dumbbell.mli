(** The single-bottleneck ("dumbbell") scenario used by Sections 2 and
    4.1–4.5: per-flow source and sink nodes hang off two routers joined by
    the bottleneck link; forward and reverse long-lived flows plus web
    sessions share it.

    Fast access links carry per-flow delay so flows can have heterogeneous
    RTTs; the bottleneck buffer defaults to the paper's rule (one BDP,
    floored at twice the number of flows). *)

(** End-host TCP hardening profile for every long-lived flow (plain
    data; part of the config digest). *)
type tcp_profile = {
  rst_validation : bool;  (** RFC 5961 RST handling (default true) *)
  persist : bool;  (** zero-window persist probing (default true) *)
  wscale : int option;
      (** peer's window-scale offer at SYN time; [None] negotiates what
          the buffer needs, [Some 0] caps the window at 64 KB *)
  rcv_buffer_pkts : int option;
      (** receive buffer in packets; [None] = effectively unbounded *)
}

val default_tcp : tcp_profile

type config = {
  scheme : Schemes.t;
  bandwidth : float;  (** bottleneck, bits/s *)
  rtt : float;  (** default two-way propagation delay, s *)
  flow_rtts : float list;
      (** RTT per forward long-lived flow; length = flow count *)
  reverse_flows : int;
  web_sessions : int;
  buffer_pkts : int option;  (** [None]: BDP rule *)
  duration : float;  (** total simulated seconds *)
  warmup : float;  (** stats collected on [\[warmup, duration\]] *)
  start_window : float * float;  (** random flow start times *)
  delay_signal : Tcpstack.Flow.delay_signal;
      (** [`Rtt] (default) or [`Owd] for the Section 7 one-way-delay
          variant of the long-lived flows *)
  fault : Netsim.Fault.spec option;
      (** impairments applied to the forward bottleneck link (default
          [None]; attaching a fault consumes extra rng splits, so faulty
          and fault-free runs are separate random universes) *)
  adversary : Netsim.Fault.adversary option;
      (** on-path attacker armed across both bottleneck directions
          (default [None]; like [fault], arming consumes an rng split) *)
  tcp : tcp_profile;  (** end-host hardening knobs (default {!default_tcp}) *)
  audit : bool;
      (** run the {!Sim_engine.Audit} invariant checks — per-link packet
          conservation, per-flow sanity, clock monotonicity, livelock
          watchdog — every 100 ms of simulated time (default [true];
          pure observation, does not perturb the simulation) *)
  seed : int;
}

val default : config
(** PERT scheme, 50 Mbps, 60 ms, 16 forward flows, no reverse flows, no
    web, BDP buffer, 60 s with 20 s warm-up, starts in [(0, 5)] s, no
    fault, auditing on. *)

val uniform_flows : config -> n:int -> config
(** Set [flow_rtts] to [n] copies of [config.rtt]. *)

val bdp_pkts : bandwidth:float -> rtt:float -> int
(** Bandwidth-delay product in data packets. *)

type result = {
  avg_queue_pkts : Units.Pkts.t;
  avg_queue_norm : float;  (** normalised by the buffer size *)
  drop_rate : float;
  utilization : float;
  jain : float;  (** over forward long-lived flows *)
  per_flow_goodput : Units.Rate.t array;
      (** forward long-lived flows *)
  buffer_pkts : int;
  marks : int;
  early_responses : int;  (** summed over forward flows *)
  loss_events : int;  (** summed over forward flows *)
  audit_violations : int;
      (** total invariant violations observed (0 when auditing is off) *)
}

val run : ?max_events:int -> ?max_wall:Units.Time.t -> config -> result
(** Build, warm up, measure, and summarise. When either budget is set it
    is armed on the scenario's simulator ({!Sim_engine.Sim.set_budget}),
    so a pathological configuration raises
    {!Sim_engine.Sim.Budget_exceeded} instead of hanging. *)

val cell_key : experiment:string -> string * config -> Store.key
(** Store identity of one [(point, config)] sweep cell. *)

val run_cells :
  ctx:Runner.ctx -> experiment:string -> (string * config) list ->
  result Runner.cell list
(** {!Runner.map} over labelled configs: store-checkpointed, supervised,
    budgeted per [ctx] — the building block of every dumbbell sweep. *)

(** Handles for custom experiments that need mid-run access. *)
type built = {
  topo : Netsim.Topology.t;
  bottleneck : Netsim.Link.t;  (** forward-direction bottleneck *)
  reverse_bneck : Netsim.Link.t;
  forward_flows : Tcpstack.Flow.t list;
  reverse : Tcpstack.Flow.t list;
  config : config;
  cc_factory : unit -> Tcpstack.Cc.t;
  routers : Netsim.Node.t * Netsim.Node.t;
  fault : Netsim.Fault.t option;  (** fault handle when [config.fault] set *)
  attack : Netsim.Fault.attack option;
      (** adversary handle when [config.adversary] set *)
  audit : Sim_engine.Audit.t option;  (** audit handle when enabled *)
}

val build : config -> built
(** Construct the scenario without running it (web sessions are started,
    long flows scheduled). *)

val measure : built -> result
(** Collect the summary from a [built] whose simulation has been advanced
    past [config.warmup] (call {!reset} at warm-up first). *)

val reset : built -> unit
(** Zero the measurement windows of the bottleneck links and flows. *)
