(** The hostile-network suite (registry id ["adversarial"]): a seeded
    on-path attacker ({!Netsim.Fault.attack}) against the hardened TCP
    stack — blind RST storms validated per RFC 5961, forged
    duplicate-ACK storms, and window-clamp episodes ridden out by
    zero-window persist probing. Each table carries a deliberately
    unhardened contrast row (no-5961 / no-persist) showing the failure
    the hardening prevents; for hardened rows the audit column is
    expected to read 0.

    The base scenario seed comes from [ctx.seed], so [--seed] sweeps the
    whole attack schedule; tables are bit-identical for every
    [ctx.jobs]. *)

val all : ?ctx:Runner.ctx -> Scale.t -> Output.table list
(** [rst_storm; ack_storm; clamp]. *)
