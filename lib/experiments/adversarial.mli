(** The hostile-network suite (registry id ["adversarial"]): a seeded
    on-path attacker ({!Netsim.Fault.attack}) against the hardened TCP
    stack — blind RST storms validated per RFC 5961, forged
    duplicate-ACK storms, and window-clamp episodes ridden out by
    zero-window persist probing. Each table carries a deliberately
    unhardened contrast row (no-5961 / no-persist) showing the failure
    the hardening prevents; for hardened rows the audit column is
    expected to read 0.

    The base scenario seed comes from [ctx.seed], so [--seed] sweeps the
    whole attack schedule; tables are bit-identical for every
    [ctx.jobs]. *)

val rst_storm : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** Poisson blind-RST injection at the swept rate, sequence guesses
    around the snooped high-water mark. *)

val ack_storm : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** Poisson bursts of forged duplicate ACKs toward the senders. *)

val clamp : ?ctx:Runner.ctx -> Scale.t -> Output.table
(** Three episodes during which every ACK's window advertisement is
    rewritten to zero in flight. *)

val all : ?ctx:Runner.ctx -> Scale.t -> Output.table list
(** [rst_storm; ack_storm; clamp]. *)
