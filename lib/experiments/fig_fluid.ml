module Pert_fluid = Fluid.Pert_fluid
module Stability = Fluid.Stability

(* Fig 13(a) setting: C = 10 Mbps with 1250-byte packets = 1000 pkt/s,
   R+ = 200 ms, p_max = 0.1, T_max = 100 ms, T_min = 50 ms, alpha = 0.99. *)
let fig13a =
  let c = 1000.0 and r_plus = 0.2 and alpha = 0.99 in
  let l_pert = 0.1 /. (0.1 -. 0.05) in
  let rows =
    List.init 50 (fun i ->
        let n_min = float_of_int (i + 1) in
        let d = Stability.delta_min ~alpha ~l_pert ~c ~n_min ~r_plus in
        [ Output.cell_i (i + 1); Output.cell_f ~digits:4 d ])
  in
  {
    Output.title =
      "Fig 13a: minimum stable sampling interval vs minimum flow count";
    header = [ "N-"; "delta_min(s)" ];
    rows;
  }

let fig13_trajectories scale =
  let horizon = Scale.pick scale ~quick:40.0 ~default:100.0 ~full:200.0 in
  let delays = [ 0.100; 0.160; 0.171 ] in
  let rows =
    List.concat_map
      (fun r ->
        let p = Pert_fluid.paper_params ~r () in
        let times, series = Pert_fluid.run p ~horizon ~dt:0.001 ~record_every:1000 () in
        let w = series.(0) in
        let stable = Pert_fluid.is_stable_trajectory w in
        let theorem =
          Stability.theorem1_holds ~l_pert:p.Pert_fluid.l_pert
            ~c:p.Pert_fluid.c ~n_min:p.Pert_fluid.n ~r_plus:r
            ~k:p.Pert_fluid.k
        in
        let n = Array.length times in
        let picks = [ n / 4; n / 2; (3 * n) / 4; n - 1 ] in
        List.map
          (fun i ->
            [
              Output.cell_f ~digits:3 r;
              Output.cell_f ~digits:1 times.(i);
              Output.cell_f w.(i);
              (if stable then "stable" else "oscillating");
              (if theorem then "thm1:stable" else "thm1:outside");
            ])
          picks)
      delays
  in
  {
    Output.title = "Fig 13b-d: PERT fluid-model trajectories W(t)";
    header = [ "R(s)"; "t"; "W"; "verdict"; "theorem1" ];
    rows;
  }

(* Matched setting: per-ACK alpha = 0.99 for PERT vs per-packet wq = 0.01
   for RED, identical loss curves (l_red = l_pert / C). *)
let stability_region =
  let l_pert = 2.0 in
  let row ~c ~n =
    let kp = Stability.pert_k ~alpha:0.99 ~c ~n in
    let kr = Stability.red_k ~wq:0.01 ~c in
    let bp =
      Stability.boundary_r
        ~holds:(fun r ->
          Stability.theorem1_holds ~l_pert ~c ~n_min:n ~r_plus:r ~k:kp)
        ()
    in
    let br =
      Stability.boundary_r
        ~holds:(fun r ->
          Stability.red_theorem_holds ~l_red:(l_pert /. c) ~c ~n_min:n
            ~r_plus:r ~k:kr)
        ()
    in
    [
      Output.cell_f ~digits:0 c;
      Output.cell_f ~digits:0 n;
      Output.cell_f ~digits:4 bp;
      Output.cell_f ~digits:4 br;
      Output.cell_f ~digits:2 (bp /. br);
    ]
  in
  let fixed_n = List.map (fun c -> row ~c ~n:10.0) [ 100.0; 500.0; 1000.0 ] in
  let fixed_ratio =
    List.map (fun c -> row ~c ~n:(c /. 10.0)) [ 100.0; 1000.0; 10000.0 ]
  in
  {
    Output.title =
      "Section 5.4: stability boundaries R_max (N = 10 rows, then C/N = 10 \
       rows showing PERT's scale-invariance per eq. 15)";
    header = [ "C(pkt/s)"; "N"; "Rmax-pert(s)"; "Rmax-red(s)"; "ratio" ];
    rows = fixed_n @ fixed_ratio;
  }
