module D = Dumbbell

let schemes =
  [
    Schemes.Pert_pi { target_delay = Units.Time.s 0.003 };
    Schemes.Sack_pi_ecn { target_delay = Units.Time.s 0.003 };
  ]

let sweep_schemes ~title ~experiment schemes ?(ctx = Runner.default) scale =
  let points =
    Scale.pick scale
      ~quick:[ 0.020; 0.100 ]
      ~default:[ 0.010; 0.020; 0.050; 0.100; 0.200; 0.500 ]
      ~full:[ 0.010; 0.020; 0.050; 0.100; 0.200; 0.500; 1.0 ]
  in
  let bandwidth = Scale.pick scale ~quick:10e6 ~default:40e6 ~full:150e6 in
  let nflows = Scale.pick scale ~quick:8 ~default:16 ~full:50 in
  let cells =
    List.concat_map
      (fun rtt -> List.map (fun (scheme : Schemes.t) -> (rtt, scheme)) schemes)
      points
  in
  let results =
    D.run_cells ~ctx ~experiment
      (List.map
         (fun (rtt, scheme) ->
           let duration = Float.max 40.0 (150.0 *. rtt) in
           ( Printf.sprintf "%.3f" rtt,
             D.uniform_flows
               {
                 D.default with
                 scheme;
                 bandwidth;
                 rtt;
                 duration;
                 warmup = duration /. 3.0;
                 seed = 42 + Units.Round.trunc (rtt *. 1000.0);
               }
               ~n:nflows ))
         cells)
  in
  let rows =
    List.map2
      (fun (rtt, scheme) cell ->
        Output.cell_f ~digits:3 rtt
        :: Schemes.name scheme
        ::
        (match cell with
        | Ok r ->
            [
              Output.cell_f ~digits:1
                (Units.Pkts.to_float r.D.avg_queue_pkts);
              Output.cell_f r.D.avg_queue_norm;
              Output.cell_e r.D.drop_rate;
              Output.cell_f r.D.utilization;
              Output.cell_f r.D.jain;
            ]
        | Error f -> Runner.failure_cells ~width:5 f))
      cells results
  in
  {
    Output.title = title;
    header =
      [ "rtt(s)"; "scheme"; "Q(pkts)"; "Q(norm)"; "droprate"; "util"; "jain" ];
    rows;
  }

let fig14 =
  sweep_schemes ~title:"Fig 14: emulating PI at end hosts (RTT sweep)"
    ~experiment:"fig14" schemes

let other_aqm =
  sweep_schemes
    ~title:"Beyond the paper: emulating REM at end hosts, vs router REM and AVQ"
    ~experiment:"other-aqm"
    [ Schemes.Pert_rem; Schemes.Sack_rem_ecn; Schemes.Pert_avq;
      Schemes.Sack_avq_ecn ]
