(* Crash-safe execution context for experiment cells. See the .mli. *)

type ctx = {
  jobs : int;
  store : Store.t option;
  retries : int;
  backoff : Units.Time.t;
  deadline : Units.Time.t option;
  max_events : int option;
  seed : int;
}

let ctx ?(jobs = 1) ?store ?(retries = 0) ?(backoff = Units.Time.ms 20.0)
    ?deadline ?max_events ?(seed = 2007) () =
  { jobs = max 1 jobs; store; retries; backoff; deadline; max_events; seed }

let default = ctx ()
let sequential c = { c with jobs = 1 }

type failure =
  | Failed of { attempts : int; reason : string }
  | Timed_out of string

type 'a cell = ('a, failure) result

let is_timeout_exn = function
  | Sim_engine.Sim.Budget_exceeded _ -> true
  | _ -> false

let failure_cell = function
  | Failed { reason; _ } -> Output.failed_cell ~reason
  | Timed_out _ -> Output.timeout_cell

let failure_cells ~width f =
  if width < 1 then invalid_arg "Runner.failure_cells: width must be >= 1";
  failure_cell f :: List.init (width - 1) (fun _ -> "-")

let encode v = Marshal.to_string v []

let cached ctx k =
  match ctx.store with
  | None -> None
  | Some store ->
      Option.map (fun payload -> Marshal.from_string payload 0)
        (Store.find store k)

let commit ctx k v =
  match ctx.store with
  | None -> ()
  | Some store -> Store.put store k ~payload:(encode v)

let outcome_to_cell = function
  | Parallel.Ok v -> Ok v
  | Parallel.Failed attempts ->
      let reason =
        match List.rev attempts with
        | a :: _ -> a.Parallel.error
        | [] -> "unknown"
      in
      Error (Failed { attempts = List.length attempts; reason })
  | Parallel.Timed_out { reason; _ } -> Error (Timed_out reason)

let map ctx ~key f xs =
  match xs with
  | [] -> []
  | xs ->
      let keys = List.map key xs in
      let hits = List.map (cached ctx) keys in
      let n_uncached =
        List.length (List.filter Option.is_none hits)
      in
      if n_uncached = 0 then List.map (fun h -> Ok (Option.get h)) hits
      else begin
        let pool = Parallel.create ~jobs:(min ctx.jobs n_uncached) in
        Fun.protect
          ~finally:(fun () -> Parallel.shutdown pool)
          (fun () ->
            (* Submit the misses in input order (the pool queue is FIFO,
               so execution order — and thus jobs=1 behaviour — matches
               a sequential run over the misses); the supervision seed is
               the cell's position in the *full* list, so a task's retry
               trace does not depend on which other cells were cached. *)
            let slots =
              List.mapi
                (fun i (x, hit) ->
                  match hit with
                  | Some v -> Either.Left v
                  | None ->
                      Either.Right
                        (Parallel.submit_supervised pool
                           ?deadline:ctx.deadline ~retries:ctx.retries
                           ~backoff:ctx.backoff ~is_timeout:is_timeout_exn
                           ~seed:(ctx.seed + i)
                           (fun ~deadline:_ -> f x)))
                (List.combine xs hits)
            in
            List.map2
              (fun k slot ->
                match slot with
                | Either.Left v -> Ok v
                | Either.Right fut -> (
                    match Parallel.await fut with
                    | Error (exn, bt) ->
                        (* supervision caught task exceptions, so this is
                           a harness bug — surface it loudly *)
                        Printexc.raise_with_backtrace exn bt
                    | Ok outcome ->
                        let cell = outcome_to_cell outcome in
                        (match cell with
                        | Ok v -> commit ctx k v
                        | Error _ ->
                            (* failures are never cached: a rerun (or
                               --resume) retries them *)
                            ());
                        cell))
              keys slots)
      end
