(** Crash-safe experiment execution: every independent simulation cell
    runs as a supervised {!Parallel} task (deadline classification,
    bounded deterministic retries), its result is checkpointed in an
    optional {!Store}, and failures degrade to explicit table markers
    instead of aborting the sweep.

    Determinism contract: for a fixed context, {!map}'s successful cells
    are byte-identical at any [jobs] and whether they were computed or
    replayed from the store ([Marshal] round-trips floats exactly). *)

type ctx = {
  jobs : int;  (** {!Parallel} pool width, >= 1 *)
  store : Store.t option;  (** checkpoint store ([None]: recompute all) *)
  retries : int;  (** extra attempts per failing cell *)
  backoff : Units.Time.t;  (** base retry backoff (seeded-deterministic) *)
  deadline : Units.Time.t option;
      (** wall budget per cell, enforced cooperatively via
          {!Sim_engine.Sim.set_budget} *)
  max_events : int option;  (** event budget per cell (deterministic) *)
  seed : int;  (** base seed for per-task backoff jitter *)
}

val ctx :
  ?jobs:int ->
  ?store:Store.t ->
  ?retries:int ->
  ?backoff:Units.Time.t ->
  ?deadline:Units.Time.t ->
  ?max_events:int ->
  ?seed:int ->
  unit ->
  ctx
(** Defaults: sequential, no store, no retries, 20 ms backoff, no
    budgets. *)

val default : ctx

val sequential : ctx -> ctx
(** Same context at [jobs = 1] — used by the registry's coarse-grained
    fan-out so nested pools never spawn domains inside domains. *)

(** {1 Cells} *)

type failure =
  | Failed of { attempts : int; reason : string }
      (** every attempt raised; [reason] is the last error *)
  | Timed_out of string  (** deadline or event budget exhausted *)

type 'a cell = ('a, failure) result

val failure_cell : failure -> string
(** The {!Output} marker: [FAILED(reason)] or [TIMEOUT]. *)

val failure_cells : width:int -> failure -> string list
(** A row fragment of [width] metric columns: the marker followed by
    ["-"] placeholders. *)

val map : ctx -> key:('a -> Store.key) -> ('a -> 'b) -> 'a list -> 'b cell list
(** [map ctx ~key f xs] runs [f] over [xs] with results in input order:
    cells found in [ctx.store] (checksum-verified) are replayed without
    running anything; the rest run as supervised tasks on a transient
    pool of [min ctx.jobs misses] domains, retried per [ctx.retries] /
    [ctx.backoff], and committed to the store on success. Failures and
    timeouts come back as [Error] cells — and are deliberately never
    cached, so a rerun retries them. Exceptions escaping the supervision
    machinery itself (harness bugs) are re-raised. *)
