module Sim = Sim_engine.Sim
module Flow = Tcpstack.Flow

type config = {
  scheme : Schemes.t;
  bandwidth : float;
  rtt : float;
  cohort_size : int;
  n_cohorts : int;
  epoch : float;
  bin : float;
  seed : int;
}

let default scale scheme =
  {
    scheme;
    bandwidth = Scale.pick scale ~quick:10e6 ~default:40e6 ~full:100e6;
    rtt = 0.060;
    cohort_size = Scale.pick scale ~quick:4 ~default:8 ~full:25;
    n_cohorts = 4;
    epoch = Scale.pick scale ~quick:10.0 ~default:30.0 ~full:100.0;
    bin = Scale.pick scale ~quick:2.0 ~default:5.0 ~full:10.0;
    seed = 42;
  }

(* The config record is plain data, so its Marshal bytes are a stable
   fingerprint for store keys (same convention as [Dumbbell.cell_key]). *)
let scheme_key ~experiment ?point config =
  Store.key ~experiment
    ~scheme:(Schemes.name config.scheme)
    ~seed:config.seed ?point
    ~extra:(Digest.to_hex (Digest.string (Marshal.to_string config [])))
    ()

let run ?max_events ?max_wall config =
  (* Total timeline: cohorts join at 0, e, 2e, ... then leave in arrival
     order at n*e, (n+1)*e, ...; simulation ends when one cohort is left
     for a final epoch, mirroring the paper's 0..700 s staircase. *)
  let dumbbell_cfg =
    Dumbbell.uniform_flows
      {
        Dumbbell.default with
        scheme = config.scheme;
        bandwidth = config.bandwidth;
        rtt = config.rtt;
        reverse_flows = 0;
        web_sessions = 0;
        duration = 1.0 (* unused: we drive the clock ourselves *);
        warmup = 0.0;
        start_window = (0.0, 0.0);
        seed = config.seed;
      }
      ~n:config.cohort_size
  in
  let built = Dumbbell.build dumbbell_cfg in
  let sim = Netsim.Topology.sim built.Dumbbell.topo in
  (match (max_events, max_wall) with
  | None, None -> ()
  | _ -> Sim.set_budget sim ?max_events ?max_wall ());
  let r1, r2 = built.Dumbbell.routers in
  ignore r2;
  let total_epochs = (2 * config.n_cohorts) - 1 in
  let horizon = float_of_int total_epochs *. config.epoch in
  let nbins = Units.Round.ceil (horizon /. config.bin) in
  let times = Array.init nbins (fun i -> float_of_int (i + 1) *. config.bin) in
  let series = Array.make_matrix config.n_cohorts nbins 0.0 in
  (* Cohort 0 is the flows Dumbbell.build created; later cohorts attach
     fresh hosts at join time (hosts are created up front so routes exist). *)
  let cohorts = Array.make config.n_cohorts [||] in
  cohorts.(0) <- Array.of_list built.Dumbbell.forward_flows;
  ignore r1;
  let extra_endpoints =
    Array.init (config.n_cohorts - 1) (fun _ ->
        Array.init config.cohort_size (fun _ ->
            let attach router =
              let host = Netsim.Topology.add_node built.Dumbbell.topo in
              let disc () = Netsim.Droptail.create ~limit_pkts:10_000 in
              ignore
                (Netsim.Topology.add_duplex built.Dumbbell.topo ~a:host
                   ~b:router
                   ~bandwidth:(Units.Rate.bps (10.0 *. config.bandwidth))
                   ~delay:(Units.Time.s (config.rtt /. 6.0))
                   ~disc_ab:(disc ()) ~disc_ba:(disc ()));
              host
            in
            let r1, r2 = built.Dumbbell.routers in
            (attach r1, attach r2)))
  in
  Netsim.Topology.compute_routes built.Dumbbell.topo;
  (* Join events. *)
  for k = 1 to config.n_cohorts - 1 do
    let join_at = Units.Time.s (float_of_int k *. config.epoch) in
    Sim.at sim join_at (fun () ->
        cohorts.(k) <-
          Array.map
            (fun (src, dst) ->
              Flow.create built.Dumbbell.topo ~src ~dst
                ~cc:(built.Dumbbell.cc_factory ())
                ~ecn:(Schemes.uses_ecn config.scheme)
                ())
            extra_endpoints.(k - 1))
  done;
  (* Departure events: cohorts leave in arrival order. *)
  for k = 0 to config.n_cohorts - 2 do
    let leave_at =
      Units.Time.s (float_of_int (config.n_cohorts + k) *. config.epoch)
    in
    Sim.at sim leave_at (fun () -> Array.iter Flow.stop cohorts.(k))
  done;
  (* Binned accounting via acked-packet deltas. *)
  let last_acked = Array.make config.n_cohorts 0 in
  let bin_idx = ref 0 in
  Sim.every sim ~start:(Units.Time.s config.bin) (Units.Time.s config.bin)
    (fun () ->
      if !bin_idx < nbins then begin
        for k = 0 to config.n_cohorts - 1 do
          let acked =
            Array.fold_left (fun a f -> a + Flow.acked_pkts f) 0 cohorts.(k)
          in
          let delta = acked - last_acked.(k) in
          last_acked.(k) <- acked;
          series.(k).(!bin_idx) <-
            float_of_int (delta * 8 * Netsim.Packet.mss) /. config.bin
        done;
        incr bin_idx
      end);
  Sim.run ~until:(Units.Time.s horizon) sim;
  (times, series)

let fig12 ?(ctx = Runner.default) scale =
  let n_cohorts = 4 in
  (* One staircase scenario per scheme, each on its own simulator. *)
  let cells =
    Runner.map ctx
      ~key:(fun scheme -> scheme_key ~experiment:"fig12" (default scale scheme))
      (fun scheme ->
        run ?max_events:ctx.Runner.max_events ?max_wall:ctx.Runner.deadline
          (default scale scheme))
      Schemes.all_fig4_schemes
  in
  let rows =
    List.concat
      (List.map2
         (fun scheme cell ->
           match cell with
           | Ok (times, series) ->
               Array.to_list
                 (Array.mapi
                    (fun i t ->
                      Schemes.name scheme
                      :: Output.cell_f ~digits:1 t
                      :: Array.to_list
                           (Array.map
                              (fun cohort ->
                                Output.cell_f ~digits:2 (cohort.(i) /. 1e6))
                              series))
                    times)
           | Error f ->
               [
                 Schemes.name scheme
                 :: Runner.failure_cells ~width:(1 + n_cohorts) f;
               ])
         Schemes.all_fig4_schemes cells)
  in
  {
    Output.title =
      "Fig 12: response to flow arrivals/departures (per-cohort Mbps)";
    header =
      "scheme" :: "t(s)"
      :: List.init n_cohorts (fun k -> Printf.sprintf "cohort%d" (k + 1));
    rows;
  }

let run_cbr ?max_events ?max_wall config ~cbr_share =
  let dumbbell_cfg =
    Dumbbell.uniform_flows
      {
        Dumbbell.default with
        Dumbbell.scheme = config.scheme;
        bandwidth = config.bandwidth;
        rtt = config.rtt;
        duration = 1.0;
        warmup = 0.0;
        start_window = (0.0, 1.0);
        seed = config.seed;
      }
      ~n:config.cohort_size
  in
  let built = Dumbbell.build dumbbell_cfg in
  let sim = Netsim.Topology.sim built.Dumbbell.topo in
  (match (max_events, max_wall) with
  | None, None -> ()
  | _ -> Sim.set_budget sim ?max_events ?max_wall ());
  let horizon = 3.0 *. config.epoch in
  let nbins = Units.Round.ceil (horizon /. config.bin) in
  let times = Array.init nbins (fun i -> float_of_int (i + 1) *. config.bin) in
  let tcp_series = Array.make nbins 0.0 in
  let cbr_series = Array.make nbins 0.0 in
  let r1, r2 = built.Dumbbell.routers in
  (* CBR endpoints on their own access links. *)
  let attach router =
    let host = Netsim.Topology.add_node built.Dumbbell.topo in
    let disc () = Netsim.Droptail.create ~limit_pkts:10_000 in
    ignore
      (Netsim.Topology.add_duplex built.Dumbbell.topo ~a:host ~b:router
         ~bandwidth:(Units.Rate.bps (10.0 *. config.bandwidth))
         ~delay:(Units.Time.s (config.rtt /. 6.0))
         ~disc_ab:(disc ()) ~disc_ba:(disc ()));
    host
  in
  let cbr_src = attach r1 and cbr_dst = attach r2 in
  Netsim.Topology.compute_routes built.Dumbbell.topo;
  let cbr =
    Traffic.Cbr.start built.Dumbbell.topo ~src:cbr_src ~dst:cbr_dst
      ~rate:(Units.Rate.bps (cbr_share *. config.bandwidth))
      ~start:(Units.Time.s config.epoch)
      ~stop:(Units.Time.s (2.0 *. config.epoch)) ()
  in
  let flows = Array.of_list built.Dumbbell.forward_flows in
  let last_tcp = ref 0 and last_cbr = ref 0 in
  let bin_idx = ref 0 in
  Sim.every sim ~start:(Units.Time.s config.bin) (Units.Time.s config.bin)
    (fun () ->
      if !bin_idx < nbins then begin
        let tcp = Array.fold_left (fun a f -> a + Flow.acked_pkts f) 0 flows in
        let got = Traffic.Cbr.received cbr in
        tcp_series.(!bin_idx) <-
          float_of_int ((tcp - !last_tcp) * 8 * Netsim.Packet.mss) /. config.bin;
        cbr_series.(!bin_idx) <-
          float_of_int ((got - !last_cbr) * 8 * Netsim.Packet.data_size)
          /. config.bin;
        last_tcp := tcp;
        last_cbr := got;
        incr bin_idx
      end);
  Sim.run ~until:(Units.Time.s horizon) sim;
  (times, tcp_series, cbr_series)

let dynamic_cbr ?(ctx = Runner.default) scale =
  let cbr_share = 0.5 in
  let cells =
    Runner.map ctx
      ~key:(fun scheme ->
        scheme_key ~experiment:"dynamic-cbr"
          ~point:(Printf.sprintf "cbr%.2f" cbr_share)
          (default scale scheme))
      (fun scheme ->
        run_cbr ?max_events:ctx.Runner.max_events
          ?max_wall:ctx.Runner.deadline (default scale scheme) ~cbr_share)
      Schemes.all_fig4_schemes
  in
  let rows =
    List.concat
      (List.map2
         (fun scheme cell ->
           match cell with
           | Ok (times, tcp, cbr) ->
               Array.to_list
                 (Array.mapi
                    (fun i t ->
                      [
                        Schemes.name scheme;
                        Output.cell_f ~digits:1 t;
                        Output.cell_f ~digits:2 (tcp.(i) /. 1e6);
                        Output.cell_f ~digits:2 (cbr.(i) /. 1e6);
                      ])
                    times)
           | Error f ->
               [ Schemes.name scheme :: Runner.failure_cells ~width:3 f ])
         Schemes.all_fig4_schemes cells)
  in
  {
    Output.title =
      "Section 4.7 companion: non-responsive CBR at 50% of the bottleneck, \
       on during the middle third";
    header = [ "scheme"; "t(s)"; "tcp(Mbps)"; "cbr(Mbps)" ];
    rows;
  }
