(* The hostile-network suite: what the fault suite is to passive
   impairment, this is to an active on-path attacker ({!Fault.attack}).
   Three attack classes, each a table:

   - blind RST storms (RFC 5961's threat model): with validation, a
     forged RST must hit the exact sequence to kill a connection, so
     flows survive and goodput holds; a no-validation contrast row shows
     the collapse the RFC prevents;
   - forged duplicate-ACK storms: trigger spurious fast retransmits and
     window cuts — the damage shows up as inflated fast-recovery and
     retransmission counts;
   - window-clamp episodes: advertisements rewritten to zero in flight.
     Persist probing rides the episode out; a no-persist contrast row
     deadlocks and is caught by the audit stall watchdog (the violation
     count in the last column is the point of the row).

   Every run executes with the invariant audit on; for the hardened
   configurations the expected violation count is 0. *)

module Sim = Sim_engine.Sim
module T = Netsim.Topology
module Fault = Netsim.Fault
module Flow = Tcpstack.Flow
module D = Dumbbell

let schemes = [ Schemes.Pert; Schemes.Sack_droptail ]

let base ~seed scale =
  let bandwidth =
    Scale.pick scale ~smoke:5e6 ~quick:10e6 ~default:40e6 ~full:100e6
  in
  let nflows = Scale.pick scale ~smoke:4 ~quick:6 ~default:16 ~full:40 in
  let duration =
    Scale.pick scale ~smoke:8.0 ~quick:30.0 ~default:60.0 ~full:240.0
  in
  D.uniform_flows
    { D.default with D.bandwidth; duration; warmup = duration /. 4.0; seed }
    ~n:nflows

(* Per-run summary: survival and the hardening counters, summed over the
   forward long-lived flows, plus the adversary's own accounting. *)
type run = {
  result : D.result;
  goodput_bps : Units.Rate.t;
  survivors : int;
  total : int;
  rsts_received : int;
  rsts_ignored : int;
  challenges : int;
  probes : int;
  zero_wnd : int;
  retransmissions : int;
  fast_recoveries : int;
  timeouts : int;
  astats : Fault.attack_stats option;
}

let sum flows get = List.fold_left (fun a f -> a + get f) 0 flows

let run_config ?max_events ?max_wall config =
  let built = D.build config in
  let sim = T.sim built.D.topo in
  (match (max_events, max_wall) with
  | None, None -> ()
  | _ -> Sim.set_budget sim ?max_events ?max_wall ());
  Sim.run ~until:(Units.Time.s config.D.warmup) sim;
  D.reset built;
  Sim.run ~until:(Units.Time.s config.D.duration) sim;
  let result = D.measure built in
  let flows = built.D.forward_flows in
  {
    result;
    goodput_bps =
      Units.Rate.bps
        (Array.fold_left
           (fun a r -> a +. Units.Rate.to_bps r)
           0.0 result.D.per_flow_goodput);
    survivors = List.length (List.filter (fun f -> not (Flow.aborted f)) flows);
    total = List.length flows;
    rsts_received = sum flows Flow.rsts_received;
    rsts_ignored = sum flows Flow.rsts_ignored;
    challenges = sum flows Flow.challenge_acks;
    probes = sum flows Flow.persist_probes;
    zero_wnd = sum flows Flow.zero_window_episodes;
    retransmissions = sum flows Flow.retransmissions;
    fast_recoveries = sum flows Flow.fast_recoveries;
    timeouts = sum flows Flow.timeouts;
    astats = Option.map Fault.attack_stats built.D.attack;
  }

let mbps v = Output.cell_f ~digits:2 (Units.Rate.to_mbps v)
let astat r get = match r.astats with Some s -> get s | None -> 0

let run_cells ~ctx ~experiment specs =
  Runner.map ctx
    ~key:(D.cell_key ~experiment)
    (fun ((_ : string), config) ->
      run_config ?max_events:ctx.Runner.max_events
        ?max_wall:ctx.Runner.deadline config)
    specs

(* --- blind RST storms ----------------------------------------------------- *)

let rst_rates scale =
  Scale.pick scale ~smoke:[ 50.0 ] ~quick:[ 50.0 ]
    ~default:[ 10.0; 50.0; 200.0 ]
    ~full:[ 5.0; 20.0; 50.0; 200.0; 500.0 ]

let rst_storm ?(ctx = Runner.default) scale =
  let config = base ~seed:ctx.Runner.seed scale in
  (* The hardened schemes, plus one row with RFC 5961 validation off:
     the storm then kills connections at will. *)
  let variants =
    List.map (fun s -> (s, true)) schemes @ [ (Schemes.Pert, false) ]
  in
  let label (scheme, validated) =
    Schemes.name scheme ^ if validated then "" else "(no-5961)"
  in
  let cells =
    List.concat_map
      (fun rate -> List.map (fun v -> (rate, v)) variants)
      (rst_rates scale)
  in
  let runs =
    run_cells ~ctx ~experiment:"adversarial-rst"
      (List.map
         (fun (rate, ((scheme, validated) as v)) ->
           ( Printf.sprintf "%.0f-%s" rate (label v),
             {
               config with
               D.scheme;
               tcp = { D.default_tcp with D.rst_validation = validated };
               adversary = Some { Fault.passive with Fault.rst_rate = rate };
             } ))
         cells)
  in
  let rows =
    List.map2
      (fun (rate, v) cell ->
        Printf.sprintf "%.0f/s" rate
        :: label v
        ::
        (match cell with
        | Ok r ->
            [
              mbps r.goodput_bps;
              Printf.sprintf "%d/%d" r.survivors r.total;
              Output.cell_i (astat r (fun s -> s.Fault.forged_rsts));
              Output.cell_i r.rsts_ignored;
              Output.cell_i r.challenges;
              Output.cell_i r.timeouts;
              Output.cell_i r.result.D.audit_violations;
            ]
        | Error f -> Runner.failure_cells ~width:7 f))
      cells runs
  in
  {
    Output.title =
      "Adversarial suite: blind RST storm (RFC 5961) — validated stacks \
       drop out-of-window forgeries and survive; the no-5961 row shows \
       the collapse";
    header =
      [
        "rate"; "scheme"; "goodput(Mb/s)"; "surv"; "forged"; "ignored";
        "challenged"; "RTOs"; "audit";
      ];
    rows;
  }

(* --- forged duplicate-ACK storms ------------------------------------------ *)

let ack_rates scale =
  Scale.pick scale ~smoke:[ 20.0 ] ~quick:[ 20.0 ]
    ~default:[ 5.0; 20.0; 100.0 ]
    ~full:[ 2.0; 10.0; 50.0; 200.0 ]

let ack_storm ?(ctx = Runner.default) scale =
  let config = base ~seed:ctx.Runner.seed scale in
  let cells =
    List.concat_map
      (fun rate -> List.map (fun scheme -> (rate, scheme)) schemes)
      (ack_rates scale)
  in
  let runs =
    run_cells ~ctx ~experiment:"adversarial-ack"
      (List.map
         (fun (rate, scheme) ->
           ( Printf.sprintf "%.0f" rate,
             {
               config with
               D.scheme;
               adversary = Some { Fault.passive with Fault.ack_rate = rate };
             } ))
         cells)
  in
  let rows =
    List.map2
      (fun (rate, scheme) cell ->
        Printf.sprintf "%.0f/s" rate
        :: Schemes.name scheme
        ::
        (match cell with
        | Ok r ->
            [
              mbps r.goodput_bps;
              Output.cell_i (astat r (fun s -> s.Fault.forged_acks));
              Output.cell_i r.fast_recoveries;
              Output.cell_i r.retransmissions;
              Output.cell_i r.timeouts;
              Output.cell_i r.result.D.audit_violations;
            ]
        | Error f -> Runner.failure_cells ~width:6 f))
      cells runs
  in
  {
    Output.title =
      "Adversarial suite: forged duplicate-ACK storm — spurious fast \
       retransmits cut the window; goodput degrades but connections hold";
    header =
      [
        "rate"; "scheme"; "goodput(Mb/s)"; "forged-acks"; "fast-rec";
        "retx"; "RTOs"; "audit";
      ];
    rows;
  }

(* --- window-clamp episodes ------------------------------------------------ *)

let clamp ?(ctx = Runner.default) scale =
  let config = base ~seed:ctx.Runner.seed scale in
  (* Episodes must be short relative to their spacing: the persist
     backoff needs a clear post-episode gap in which a probe can land
     and re-elicit an honest advertisement. *)
  let episode_len =
    Scale.pick scale ~smoke:0.5 ~quick:0.8 ~default:1.0 ~full:2.0
  in
  let span = config.D.duration -. config.D.warmup in
  let episodes =
    List.init 3 (fun k ->
        let from_t = config.D.warmup +. (float_of_int (k + 1) *. span /. 4.0) in
        (Units.Time.s from_t, Units.Time.s (from_t +. episode_len)))
  in
  let adversary =
    Some
      { Fault.passive with Fault.clamp_episodes = episodes; clamp_to = 0 }
  in
  (* Persist probing on for the hardened schemes; the no-persist contrast
     row deadlocks after the first episode — the nonzero audit column is
     the stall watchdog catching it. *)
  let variants =
    List.map (fun s -> (s, true)) schemes @ [ (Schemes.Pert, false) ]
  in
  let label (scheme, persist) =
    Schemes.name scheme ^ if persist then "" else "(no-persist)"
  in
  let runs =
    run_cells ~ctx ~experiment:"adversarial-clamp"
      (List.map
         (fun ((scheme, persist) as v) ->
           ( label v,
             {
               config with
               D.scheme;
               tcp = { D.default_tcp with D.persist };
               adversary;
             } ))
         variants)
  in
  let rows =
    List.map2
      (fun v cell ->
        label v
        ::
        (match cell with
        | Ok r ->
            [
              Output.cell_i (astat r (fun s -> s.Fault.clamped_acks));
              Output.cell_i r.zero_wnd;
              Output.cell_i r.probes;
              mbps r.goodput_bps;
              Output.cell_i r.timeouts;
              Output.cell_i r.result.D.audit_violations;
            ]
        | Error f -> Runner.failure_cells ~width:6 f))
      variants runs
  in
  {
    Output.title =
      Printf.sprintf
        "Adversarial suite: window-clamp episodes (3 x %.1fs, advertised \
         window forced to 0 in flight) — persist probes reopen the flow; \
         without them it deadlocks and the stall watchdog fires"
        episode_len;
    header =
      [
        "scheme"; "clamped"; "zero-wnd"; "probes"; "goodput(Mb/s)"; "RTOs";
        "audit";
      ];
    rows;
  }

let all ?(ctx = Runner.default) scale =
  [ rst_storm ~ctx scale; ack_storm ~ctx scale; clamp ~ctx scale ]
