module Sim = Sim_engine.Sim
module Rng = Sim_engine.Rng

type t =
  | Pert
  | Pert_tuned of {
      curve : Pert_core.Response_curve.t;
      alpha : float;
      decrease_factor : float;
      limit_per_rtt : bool;
    }
  | Pert_ecn
  | Sack_droptail
  | Sack_red_ecn
  | Vegas
  | Pert_pi of { target_delay : Units.Time.t }
  | Sack_pi_ecn of { target_delay : Units.Time.t }
  | Pert_rem
  | Pert_avq
  | Sack_rem_ecn
  | Sack_avq_ecn

let name = function
  | Pert -> "pert"
  | Pert_ecn -> "pert-ecn"
  | Pert_tuned _ -> "pert-tuned"
  | Sack_droptail -> "sack-droptail"
  | Sack_red_ecn -> "sack-red-ecn"
  | Vegas -> "vegas"
  | Pert_pi _ -> "pert-pi"
  | Sack_pi_ecn _ -> "sack-pi-ecn"
  | Pert_rem -> "pert-rem"
  | Pert_avq -> "pert-avq"
  | Sack_rem_ecn -> "sack-rem-ecn"
  | Sack_avq_ecn -> "sack-avq-ecn"

let all_fig4_schemes = [ Pert; Sack_droptail; Sack_red_ecn; Vegas ]

let uses_ecn = function
  | Pert_ecn | Sack_red_ecn | Sack_pi_ecn _ | Sack_rem_ecn | Sack_avq_ecn ->
      true
  | Pert | Pert_tuned _ | Sack_droptail | Vegas | Pert_pi _ | Pert_rem
  | Pert_avq ->
      false

type ctx = {
  sim : Sim_engine.Sim.t;
  capacity_pps : float;
  limit_pkts : int;
  rtt : float;
  nflows : int;
}

let router_pi_params ctx ~target_delay =
  let gains =
    Fluid.Stability.router_pi_gains ~c:ctx.capacity_pps
      ~n_min:(float_of_int (max 1 ctx.nflows))
      ~r_plus:ctx.rtt ~r_star:ctx.rtt
  in
  let sample_interval = ctx.rtt /. 10.0 in
  let d =
    Pert_core.Pert_pi.gains_of_pi ~k:gains.Fluid.Stability.k
      ~m:gains.Fluid.Stability.m ~delta:sample_interval
  in
  {
    Netsim.Pi_queue.a = d.Pert_core.Pert_pi.gamma;
    b = d.Pert_core.Pert_pi.beta;
    q_ref = Units.Time.to_s target_delay *. ctx.capacity_pps;
    sample_interval = Units.Time.s sample_interval;
    ecn = true;
  }

let bottleneck_disc t ctx =
  match t with
  | Pert | Pert_tuned _ | Vegas | Sack_droptail | Pert_pi _ | Pert_rem
  | Pert_avq ->
      Netsim.Droptail.create ~limit_pkts:ctx.limit_pkts
  | Sack_rem_ecn ->
      Netsim.Rem.create
        ~rng:(Rng.split (Sim.rng ctx.sim))
        ~params:(Netsim.Rem.default_params ~capacity_pps:ctx.capacity_pps)
        ~capacity_pps:ctx.capacity_pps ~limit_pkts:ctx.limit_pkts
  | Sack_avq_ecn ->
      Netsim.Avq.create
        ~params:(Netsim.Avq.default_params ())
        ~capacity_pps:ctx.capacity_pps ~limit_pkts:ctx.limit_pkts
  | Pert_ecn | Sack_red_ecn ->
      let params =
        Netsim.Red.auto_params ~capacity_pps:ctx.capacity_pps
          ~limit_pkts:ctx.limit_pkts ()
      in
      Netsim.Red.create
        ~rng:(Rng.split (Sim.rng ctx.sim))
        ~params ~capacity_pps:ctx.capacity_pps ~limit_pkts:ctx.limit_pkts
  | Sack_pi_ecn { target_delay } ->
      Netsim.Pi_queue.create
        ~rng:(Rng.split (Sim.rng ctx.sim))
        ~params:(router_pi_params ctx ~target_delay)
        ~limit_pkts:ctx.limit_pkts

let cc_factory t ctx () =
  match t with
  | Sack_droptail | Sack_red_ecn | Sack_pi_ecn _ | Sack_rem_ecn | Sack_avq_ecn
    ->
      Tcpstack.Cc.newreno ()
  | Vegas -> Tcpstack.Vegas.create ()
  | Pert | Pert_ecn ->
      Tcpstack.Pert_cc.create ~rng:(Rng.split (Sim.rng ctx.sim)) ()
  | Pert_rem -> Tcpstack.Pert_rem_cc.create ~rng:(Rng.split (Sim.rng ctx.sim)) ()
  | Pert_avq -> Tcpstack.Pert_avq_cc.create ~rng:(Rng.split (Sim.rng ctx.sim)) ()
  | Pert_tuned { curve; alpha; decrease_factor; limit_per_rtt } ->
      Tcpstack.Pert_cc.create
        ~rng:(Rng.split (Sim.rng ctx.sim))
        ~curve ~alpha ~decrease_factor ~limit_per_rtt ()
  | Pert_pi { target_delay } ->
      let gains =
        Fluid.Stability.pert_pi_gains ~c:ctx.capacity_pps
          ~n_min:(float_of_int (max 1 ctx.nflows))
          ~r_plus:ctx.rtt ~r_star:ctx.rtt
      in
      let sample_interval = ctx.rtt /. 10.0 in
      let d =
        Pert_core.Pert_pi.gains_of_pi ~k:gains.Fluid.Stability.k
          ~m:gains.Fluid.Stability.m ~delta:sample_interval
      in
      Tcpstack.Pert_pi_cc.create
        ~rng:(Rng.split (Sim.rng ctx.sim))
        ~gains:d ~target_delay
        ~sample_interval:(Units.Time.s sample_interval) ()
