type t = Quick | Default | Full

let of_string = function
  | "quick" -> Ok Quick
  | "default" -> Ok Default
  | "full" -> Ok Full
  | s -> Error (Printf.sprintf "unknown scale %S (quick|default|full)" s)

let to_string = function Quick -> "quick" | Default -> "default" | Full -> "full"
let pick t ~quick ~default ~full =
  match t with Quick -> quick | Default -> default | Full -> full
