type t = Smoke | Quick | Default | Full

let of_string = function
  | "smoke" -> Ok Smoke
  | "quick" -> Ok Quick
  | "default" -> Ok Default
  | "full" -> Ok Full
  | s -> Error (Printf.sprintf "unknown scale %S (smoke|quick|default|full)" s)

let to_string = function
  | Smoke -> "smoke"
  | Quick -> "quick"
  | Default -> "default"
  | Full -> "full"

let pick ?smoke t ~quick ~default ~full =
  match t with
  | Smoke -> ( match smoke with Some v -> v | None -> quick)
  | Quick -> quick
  | Default -> default
  | Full -> full
