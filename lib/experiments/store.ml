(* Content-addressed checkpoint store. See the .mli for the format.

   Writes are crash-safe by construction: the payload lands in a
   same-directory temp file first and is moved into place with the
   atomic [Sys.rename], so a SIGKILL at any instant leaves either the
   previous cell or the complete new one — never a torn file. Reads
   verify an MD5 checksum line before trusting anything, so a corrupt or
   truncated cell degrades to a cache miss and is simply recomputed. *)

let magic = "pert-store/1"

type t = { dir : string }


type key = { canon : string }

let canonical k = k.canon

(* The canonical key string is the unit of content addressing; '|' is the
   field separator, so strip it (and newlines) from the free-text
   fields. Collisions after sanitisation only matter if they disagree on
   the [extra] digest, which is itself collision-resistant. *)
let sanitize s =
  String.map (function '|' | '\n' | '\r' -> '_' | c -> c) s

let key ~experiment ?(scheme = "-") ?(seed = 0) ?(point = "-") ?(extra = "-")
    () =
  {
    canon =
      String.concat "|"
        [
          magic;
          sanitize experiment;
          sanitize scheme;
          string_of_int seed;
          sanitize point;
          sanitize extra;
        ];
  }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    match Sys.mkdir dir 0o755 with
    | () -> ()
    | exception Sys_error _ when Sys.file_exists dir ->
        (* lost a creation race; the directory is there, which is all we
           wanted *)
        ()
  end

let open_ ~dir =
  mkdir_p dir;
  { dir }

let path t k =
  Filename.concat t.dir (Digest.to_hex (Digest.string k.canon) ^ ".cell")

let write_atomic ~path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc data;
      close_out oc);
  Sys.rename tmp path

let header ~payload k =
  Printf.sprintf "%s %s %s\n" magic
    (Digest.to_hex (Digest.string payload))
    (Digest.to_hex (Digest.string k.canon))

let put t k ~payload =
  write_atomic ~path:(path t k) (header ~payload k ^ payload)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> Some data
  | exception Sys_error _ -> None

let find t k =
  let file = path t k in
  if not (Sys.file_exists file) then None
  else
    match read_file file with
    | None -> None
    | Some data -> (
        match String.index_opt data '\n' with
        | None -> None
        | Some i ->
            let payload =
              String.sub data (i + 1) (String.length data - i - 1)
            in
            if String.equal (String.sub data 0 (i + 1)) (header ~payload k)
            then Some payload
            else None)
