type t = { mutable data : float array; mutable size : int }

let create ?(capacity = 64) () = { data = Array.make (max 1 capacity) 0.0; size = 0 }
let length t = t.size

let push t x =
  if t.size = Array.length t.data then begin
    let data = Array.make (2 * t.size) 0.0 in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Fvec.get: index out of bounds";
  t.data.(i)

let to_array t = Array.sub t.data 0 t.size

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let clear t = t.size <- 0

let lower_bound t x =
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.data.(mid) < x then search (mid + 1) hi else search lo mid
  in
  search 0 t.size
