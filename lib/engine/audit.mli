(** Opt-in runtime invariant auditing for simulations.

    An [Audit.t] runs a set of registered checks on a periodic simulated
    clock (piggybacking on {!Sim.every}), records any violations with the
    simulation time at which they were observed, and can arm the
    {!Sim.set_watchdog} livelock detector. It never throws: the point is to
    surface silent corruption (NaN propagation, packet-accounting drift,
    stalled event loops) with context instead of poisoning downstream
    results — callers decide whether a violation is fatal.

    Typical wiring (see {!Experiments.Dumbbell}): one audit per simulation,
    a packet-conservation check per link and a sanity check per flow. *)

type violation = { time : float; subject : string; message : string }

type t

val create : ?interval:Units.Time.t -> ?max_kept:int -> Sim.t -> t
(** [create ?interval ?max_kept sim] starts auditing [sim], running every
    registered check every [interval] (default 100 ms) of simulated time and
    keeping the first [max_kept] (default 100) violations verbatim (the
    total count is always exact). Checks can be registered after creation.

    The periodic tick also verifies clock monotonicity. Note the recurring
    tick keeps the event heap non-empty: run audited simulations with
    [Sim.run ~until], not to heap exhaustion. *)

val add_check : t -> subject:string -> (now:float -> string option) -> unit
(** [add_check t ~subject check] registers an invariant: [check ~now]
    returns [Some message] when violated, [None] when it holds. *)

val add_stall_check :
  t ->
  subject:string ->
  stall_after:Units.Time.t ->
  (unit -> int option) ->
  unit
(** [add_stall_check t ~subject ~stall_after probe] watches a progress
    counter. The probe returns [None] while no progress is expected
    (which resets the stall clock) and [Some counter] while the subject
    claims to be actively working. If the counter stays pinned for
    [stall_after] of simulated time, one violation is recorded; the
    check re-arms when the counter moves again. This is the deadlock
    tripwire for flows: {!Tcpstack.Flow.liveness} is the canonical
    probe. *)

val enable_watchdog : ?max_events_per_instant:int -> t -> unit
(** Arm {!Sim.set_watchdog} (default budget 1,000,000 events per instant);
    a trip is recorded as a violation on subject ["sim"] and stops the
    simulation instead of hanging forever. *)

(* Kept with no current caller: the documented extension point for
   event-driven guards; the periodic checks above are built on it. *)
val report : t -> now:float -> subject:string -> string -> unit
  [@@lint.allow "S3"]
(** Record a violation directly (for event-driven guards that don't fit
    the periodic-check shape). *)

val check_finite :
  t -> now:float -> subject:string -> what:string -> float -> bool
(** [check_finite t ~now ~subject ~what v] records a violation and returns
    [false] when [v] is NaN or infinite; returns [true] otherwise. *)

val violations : t -> violation list
(** The recorded violations, oldest first (capped at [max_kept]). *)

val violation_count : t -> int
(** Exact total number of violations observed, including dropped ones. *)

val ok : t -> bool
(** [violation_count t = 0]. *)

val summary : t -> string
(** One-line human-readable verdict, naming the first violation if any. *)
