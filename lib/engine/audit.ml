type violation = { time : float; subject : string; message : string }

type t = {
  sim : Sim.t;
  interval : float;
  max_kept : int;
  mutable checks : (string * (now:float -> string option)) list;  (* newest first *)
  mutable kept : violation list;  (* newest first *)
  mutable count : int;
  mutable last_tick : float;
}

let report t ~now ~subject message =
  t.count <- t.count + 1;
  if t.count <= t.max_kept then
    t.kept <- { time = now; subject; message } :: t.kept

let tick t () =
  let now = Sim.now t.sim in
  if now < t.last_tick then
    report t ~now ~subject:"sim"
      (Printf.sprintf "clock went backwards: %g after %g" now t.last_tick);
  t.last_tick <- now;
  List.iter
    (fun (subject, check) ->
      match check ~now with
      | Some message -> report t ~now ~subject message
      | None -> ())
    t.checks

let create ?(interval = Units.Time.s 0.1) ?(max_kept = 100) sim =
  let interval = Units.Time.to_s interval in
  if interval <= 0.0 then invalid_arg "Audit.create: interval must be positive";
  let t =
    {
      sim;
      interval;
      max_kept;
      checks = [];
      kept = [];
      count = 0;
      last_tick = Sim.now sim;
    }
  in
  Sim.every sim
    ~start:(Units.Time.s (Sim.now sim +. interval))
    (Units.Time.s interval) (tick t);
  t

let add_check t ~subject check = t.checks <- (subject, check) :: t.checks

(* A stall check wraps a probe of some progress counter into an ordinary
   check. [None] from the probe means "no progress expected right now"
   and resets the clock; a counter that stays put for [stall_after] of
   simulated time while progress *is* expected is reported exactly once
   per stall (the flag re-arms as soon as the counter moves again). *)
let add_stall_check t ~subject ~stall_after probe =
  let stall_after = Units.Time.to_s stall_after in
  if stall_after <= 0.0 then
    invalid_arg "Audit.add_stall_check: stall_after must be positive";
  let last = ref None in
  let since = ref (Sim.now t.sim) in
  let flagged = ref false in
  add_check t ~subject (fun ~now ->
      match probe () with
      | None ->
          last := None;
          since := now;
          flagged := false;
          None
      | Some mark ->
          if !last <> Some mark then begin
            last := Some mark;
            since := now;
            flagged := false;
            None
          end
          else if (not !flagged) && now -. !since >= stall_after then begin
            flagged := true;
            Some
              (Printf.sprintf
                 "no progress for %.3gs (counter pinned at %d) — stalled \
                  flow / zero-window deadlock?"
                 (now -. !since) mark)
          end
          else None)

let enable_watchdog ?(max_events_per_instant = 1_000_000) t =
  Sim.set_watchdog t.sim ~max_events_per_instant (fun message ->
      report t ~now:(Sim.now t.sim) ~subject:"sim" message;
      Sim.stop t.sim)

let check_finite t ~now ~subject ~what value =
  if Float.is_finite value then true
  else begin
    report t ~now ~subject (Printf.sprintf "%s is non-finite (%g)" what value);
    false
  end

let violations t = List.rev t.kept
let violation_count t = t.count
let ok t = t.count = 0

let summary t =
  if t.count = 0 then "audit: no invariant violations"
  else
    let worst =
      match List.rev t.kept with
      | { time; subject; message } :: _ ->
          Printf.sprintf " (first at t=%g, %s: %s)" time subject message
      | [] -> ""
    in
    Printf.sprintf "audit: %d invariant violation(s)%s" t.count worst
