module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.n = 0 then invalid_arg "Stats.Acc.min: empty" else t.min
  let max t = if t.n = 0 then invalid_arg "Stats.Acc.max: empty" else t.max
end

module Time_weighted = struct
  type t = {
    mutable window_start : float;
    mutable last_time : float;
    mutable last_value : float;
    mutable integral : float;
  }

  let create ~start ~value =
    { window_start = start; last_time = start; last_value = value; integral = 0.0 }

  let advance t now =
    if now < t.last_time then invalid_arg "Stats.Time_weighted: time went backwards";
    t.integral <- t.integral +. (t.last_value *. (now -. t.last_time));
    t.last_time <- now

  let update t ~now ~value =
    advance t now;
    t.last_value <- value

  let average t ~now =
    let span = now -. t.window_start in
    if span <= 0.0 then t.last_value
    else
      let tail = t.last_value *. (now -. t.last_time) in
      (t.integral +. tail) /. span

  let reset t ~now =
    advance t now;
    t.window_start <- now;
    t.integral <- 0.0
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    counts : int array;
    mutable total : int;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 || hi <= lo then invalid_arg "Stats.Histogram.create";
    { lo; hi; counts = Array.make bins 0; total = 0 }

  let add t x =
    let bins = Array.length t.counts in
    let raw = Units.Round.trunc (float_of_int bins *. (x -. t.lo) /. (t.hi -. t.lo)) in
    let i = if raw < 0 then 0 else if raw >= bins then bins - 1 else raw in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let total t = t.total
  let counts t = Array.copy t.counts

  let pdf t =
    if t.total = 0 then Array.make (Array.length t.counts) 0.0
    else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts

  let bin_center t i =
    let bins = float_of_int (Array.length t.counts) in
    t.lo +. ((float_of_int i +. 0.5) *. (t.hi -. t.lo) /. bins)
end

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let sum_sq = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
    if Float.equal sum_sq 0.0 then 1.0
    else sum *. sum /. (float_of_int n *. sum_sq)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = Units.Round.ceil (p *. float_of_int n) - 1 in
  let rank = if rank < 0 then 0 else if rank >= n then n - 1 else rank in
  sorted.(rank)
