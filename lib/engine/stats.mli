(** Statistics accumulators used by monitors and experiment drivers. *)

(** Streaming mean/variance (Welford). *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 if empty. *)

  val variance : t -> float
  (** Sample variance; 0 if fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  (** [min]/[max] raise [Invalid_argument] if empty. *)
end

(** Average of a piecewise-constant signal weighted by the time each value
    was held — the right notion of "average queue length". *)
module Time_weighted : sig
  type t

  val create : start:float -> value:float -> t
  val update : t -> now:float -> value:float -> unit
  (** Record that the signal changed to [value] at time [now]. *)

  val average : t -> now:float -> float
  (** Time-weighted mean over [\[start, now\]]. *)

  val reset : t -> now:float -> unit
  (** Forget history; keep the current value, restart the window at [now]. *)
end

(** Fixed-bin histogram on [\[lo, hi)]; out-of-range samples clamp to the
    edge bins. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit
  val total : t -> int
  val counts : t -> int array
  val pdf : t -> float array
  (** Fraction of samples per bin; all zeros if empty. *)

  val bin_center : t -> int -> float
end

val jain_index : float array -> float
(** Jain fairness index [(sum x)^2 / (n * sum x^2)]; 1.0 for an empty or
    all-zero vector by convention. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,1\]], nearest-rank on a sorted copy.
    Raises [Invalid_argument] on an empty array. *)
