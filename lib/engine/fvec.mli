(** Growable float array, used for time-series traces. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> float -> unit
val get : t -> int -> float
val to_array : t -> float array
val iter : (float -> unit) -> t -> unit
val clear : t -> unit

val lower_bound : t -> float -> int
(** [lower_bound t x] on a nondecreasing vector: index of the first element
    [>= x], or [length t] if none. *)
