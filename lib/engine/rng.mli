(** Deterministic, splittable random number generation.

    Every stochastic component of a simulation draws from its own [t],
    obtained by {!split}ting the simulation's root generator. Two runs with
    the same root seed and the same split order are bit-identical. *)

type t

val create : int -> t
(** [create seed] returns a generator seeded with [seed]. *)

val split : t -> t
(** [split t] returns a fresh generator whose stream is independent of
    subsequent draws from [t] (derived from [t]'s next output). *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)]. [bound > 0]. *)

val bool : t -> bool

val bernoulli : t -> Units.Prob.t -> bool
(** [bernoulli t p] is [true] with probability [p]. Taking a
    {!Units.Prob.t} (never NaN, always in [0, 1]) rules out the classic
    bug of comparing a draw against an unclamped float; lint rule U2
    additionally bans inlining the comparison at call sites. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] draws uniformly from [\[lo, hi)]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** [pareto t ~shape ~scale] draws from a Pareto distribution with the given
    shape (tail index) and scale (minimum value). Mean is
    [scale *. shape /. (shape -. 1.)] for [shape > 1]. *)

val bounded_pareto : t -> shape:float -> scale:float -> cap:float -> float
(** Pareto truncated (by resampling-free inversion) to [\[scale, cap\]]. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of Bernoulli(p) trials up to and including
    the first success; [>= 1]. *)
