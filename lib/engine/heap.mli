(** Growable binary min-heap specialised for event scheduling.

    Keys are [(time, seq)] pairs compared lexicographically, so events at
    equal times pop in insertion order — this makes simulations
    deterministic. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert an element with priority [(time, seq)]. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] if empty. *)

exception Empty

val min_time_exn : 'a t -> float
(** Time of the minimum element; O(1), no allocation.
    @raise Empty if the heap is empty. *)

val pop_min_exn : 'a t -> 'a
(** Remove the minimum element and return its payload alone — the
    non-allocating fast path of the event loop ({!Sim.run}): no option,
    no result tuple. Read the key first via {!min_time_exn}. The vacated
    slot is scrubbed so the GC can reclaim the payload immediately.
    @raise Empty if the heap is empty. *)

val peek_time : 'a t -> float option
(** Time of the minimum element without removing it. *)

val clear : 'a t -> unit
