(** Growable binary min-heap specialised for event scheduling.

    Keys are [(time, seq)] pairs compared lexicographically, so events at
    equal times pop in insertion order — this makes simulations
    deterministic. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert an element with priority [(time, seq)]. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] if empty. *)

val peek_time : 'a t -> float option
(** Time of the minimum element without removing it. *)

val clear : 'a t -> unit
