type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable data : 'a array;
  mutable size : int;
}

(* Inert filler for data slots >= size (the stdlib Dynarray technique).
   Without it the backing array pins payloads after they leave the heap:
   [Array.make cap x] aliases the first element into every unused slot,
   and a popped slot would keep its old payload (and whatever that
   closure captures) reachable until overwritten.  The filler is an
   immediate, so [Array.make] never commits the array to the flat-float
   representation, and it is never read back at type ['a] — slots >= size
   are write-only. *)
let dummy : 'a. unit -> 'a = fun () -> (Obj.magic 0 [@lint.allow "N2"])

let create ?(capacity = 256) () =
  let capacity = max capacity 1 in
  {
    times = Array.make capacity 0.0;
    seqs = Array.make capacity 0;
    data = Array.make capacity (dummy ());
    size = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = max 1 (Array.length t.times) in
  let cap' = 2 * cap in
  let times = Array.make cap' 0.0 in
  let seqs = Array.make cap' 0 in
  let data = Array.make cap' (dummy ()) in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.data 0 data 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.data <- data

(* [lt t i j] : does slot [i] have strictly smaller priority than slot [j]? *)
let lt t i j =
  t.times.(i) < t.times.(j)
  || (Float.equal t.times.(i) t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tm = t.times.(i) and sq = t.seqs.(i) and dt = t.data.(i) in
  t.times.(i) <- t.times.(j);
  t.seqs.(i) <- t.seqs.(j);
  t.data.(i) <- t.data.(j);
  t.times.(j) <- tm;
  t.seqs.(j) <- sq;
  t.data.(j) <- dt

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && lt t l i then l else i in
  let smallest = if r < t.size && lt t r smallest then r else smallest in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let add t ~time ~seq x =
  if t.size = Array.length t.times then grow t;
  t.times.(t.size) <- time;
  t.seqs.(t.size) <- seq;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

exception Empty

let[@inline] min_time_exn t = if t.size = 0 then raise Empty else t.times.(0)

(* Fused, non-allocating pop for the event-loop hot path: no option, no
   result tuple — read the key with [min_time_exn] first if needed. *)
let pop_min_exn t =
  if t.size = 0 then raise Empty;
  let x = t.data.(0) in
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    t.times.(0) <- t.times.(n);
    t.seqs.(0) <- t.seqs.(n);
    t.data.(0) <- t.data.(n);
    sift_down t 0
  end;
  (* Blank the vacated slot so the popped payload (and whatever its
     closure captures) becomes collectable immediately. *)
  t.data.(n) <- dummy ();
  x

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) in
    let x = pop_min_exn t in
    Some (time, seq, x)
  end

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let clear t =
  if t.size > 0 then Array.fill t.data 0 t.size (dummy ());
  t.size <- 0
