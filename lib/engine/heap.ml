type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable data : 'a array;
  mutable size : int;
}

let create ?(capacity = 256) () =
  let capacity = max capacity 1 in
  {
    times = Array.make capacity 0.0;
    seqs = Array.make capacity 0;
    data = [||];
    size = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

let grow t x =
  let cap = max 1 (Array.length t.times) in
  let cap' = 2 * cap in
  let times = Array.make cap' 0.0 in
  let seqs = Array.make cap' 0 in
  let data = Array.make cap' x in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.data 0 data 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.data <- data

(* [lt t i j] : does slot [i] have strictly smaller priority than slot [j]? *)
let lt t i j =
  t.times.(i) < t.times.(j)
  || (Float.equal t.times.(i) t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tm = t.times.(i) and sq = t.seqs.(i) and dt = t.data.(i) in
  t.times.(i) <- t.times.(j);
  t.seqs.(i) <- t.seqs.(j);
  t.data.(i) <- t.data.(j);
  t.times.(j) <- tm;
  t.seqs.(j) <- sq;
  t.data.(j) <- dt

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && lt t l i then l else i in
  let smallest = if r < t.size && lt t r smallest then r else smallest in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let add t ~time ~seq x =
  if Array.length t.data = 0 then begin
    (* First element: allocate the data array lazily since we have no
       placeholder value of type ['a] before this point. *)
    let cap = Array.length t.times in
    t.data <- Array.make cap x
  end;
  if t.size = Array.length t.times then grow t x;
  t.times.(t.size) <- time;
  t.seqs.(t.size) <- seq;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) and x = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.times.(0) <- t.times.(t.size);
      t.seqs.(0) <- t.seqs.(t.size);
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    (* Release the reference so the GC can collect the payload. *)
    t.data.(t.size) <- x;
    Some (time, seq, x)
  end

let peek_time t = if t.size = 0 then None else Some t.times.(0)
let clear t = t.size <- 0
