type t = {
  heap : (unit -> unit) Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable stopped : bool;
  mutable executed : int;
  root_rng : Rng.t;
}

let create ?(seed = 42) () =
  {
    heap = Heap.create ();
    clock = 0.0;
    next_seq = 0;
    stopped = false;
    executed = 0;
    root_rng = Rng.create seed;
  }

let now t = t.clock
let rng t = t.root_rng

let at t time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is before now %g" time t.clock);
  Heap.add t.heap ~time ~seq:t.next_seq f;
  t.next_seq <- t.next_seq + 1

let after t delay f =
  if delay < 0.0 then invalid_arg "Sim.after: negative delay";
  at t (t.clock +. delay) f

let every t ?start period f =
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  let first = match start with Some s -> s | None -> t.clock +. period in
  let rec tick () =
    f ();
    if not t.stopped then after t period tick
  in
  at t first tick

let stop t = t.stopped <- true

let run ?until t =
  t.stopped <- false;
  let horizon = match until with Some u -> u | None -> infinity in
  let rec loop () =
    if not t.stopped then
      match Heap.peek_time t.heap with
      | None -> ()
      | Some time when time > horizon -> t.clock <- horizon
      | Some _ -> (
          match Heap.pop t.heap with
          | None -> ()
          | Some (time, _, f) ->
              t.clock <- time;
              t.executed <- t.executed + 1;
              f ();
              loop ())
  in
  loop ();
  if t.stopped then () else match until with Some u -> t.clock <- max t.clock u | None -> ()

let events_executed t = t.executed
