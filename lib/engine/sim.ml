type t = {
  heap : (unit -> unit) Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable stopped : bool;
  mutable executed : int;
  root_rng : Rng.t;
  (* livelock watchdog: bound on events executed without the clock moving *)
  mutable watchdog : (int * (string -> unit)) option;
  mutable instant_events : int;
  mutable next_id : int;
}

let create ?(seed = 42) () =
  {
    heap = Heap.create ();
    clock = 0.0;
    next_seq = 0;
    stopped = false;
    executed = 0;
    root_rng = Rng.create seed;
    watchdog = None;
    instant_events = 0;
    next_id = 0;
  }

let now t = t.clock
let rng t = t.root_rng

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

(* The public scheduling API speaks [Units.Time.t]; the clock and heap
   keys stay raw float seconds internally (hot path). *)

let at t time f =
  let time = Units.Time.to_s time in
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is before now %g" time t.clock);
  Heap.add t.heap ~time ~seq:t.next_seq f;
  t.next_seq <- t.next_seq + 1

let after t delay f =
  let delay = Units.Time.to_s delay in
  if delay < 0.0 then invalid_arg "Sim.after: negative delay";
  at t (Units.Time.of_s (t.clock +. delay)) f

let every t ?start period f =
  let period = Units.Time.to_s period in
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  let first =
    match start with Some s -> Units.Time.to_s s | None -> t.clock +. period
  in
  let rec tick () =
    f ();
    if not t.stopped then after t (Units.Time.of_s period) tick
  in
  at t (Units.Time.of_s first) tick

let stop t = t.stopped <- true

let set_watchdog t ~max_events_per_instant on_trip =
  if max_events_per_instant <= 0 then
    invalid_arg "Sim.set_watchdog: budget must be positive";
  t.watchdog <- Some (max_events_per_instant, on_trip)

let clear_watchdog t = t.watchdog <- None

let run ?until t =
  t.stopped <- false;
  let until = Option.map Units.Time.to_s until in
  let horizon = match until with Some u -> u | None -> infinity in
  (* Fused peek/pop: one sift-read for the key, one sift-down for the
     payload, and no [Some _] option or result-tuple allocation per
     event — this loop runs once per simulated packet transmission. *)
  let rec loop () =
    if (not t.stopped) && not (Heap.is_empty t.heap) then begin
      let time = Heap.min_time_exn t.heap in
      if time > horizon then t.clock <- horizon
      else begin
        let f = Heap.pop_min_exn t.heap in
        if time > t.clock then t.instant_events <- 0;
        t.clock <- time;
        t.executed <- t.executed + 1;
        t.instant_events <- t.instant_events + 1;
        (match t.watchdog with
        | Some (budget, trip) when t.instant_events = budget + 1 ->
            trip
              (Printf.sprintf
                 "livelock suspected: %d events executed at t=%g without \
                  the clock advancing"
                 t.instant_events time)
        | _ -> ());
        f ();
        loop ()
      end
    end
  in
  loop ();
  if t.stopped then ()
  else
    match until with
    | Some u -> t.clock <- Float.max t.clock u
    | None -> ()

let events_executed t = t.executed
