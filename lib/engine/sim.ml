type t = {
  heap : (unit -> unit) Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable stopped : bool;
  mutable executed : int;
  root_rng : Rng.t;
  (* livelock watchdog: bound on events executed without the clock moving *)
  mutable watchdog : (int * (string -> unit)) option;
  mutable instant_events : int;
  mutable next_id : int;
  (* run budgets: one branch on [budget_armed] per event when disarmed *)
  mutable budget_armed : bool;
  mutable budget_events : int;  (* absolute [executed] threshold; max_int = off *)
  mutable budget_wall_limit : float;  (* allowed wall seconds; infinity = off *)
  mutable budget_wall_start : float;
  mutable wall_countdown : int;  (* events until the next wall-clock sample *)
}

exception
  Budget_exceeded of { events : int; now : Units.Time.t; exhausted : string }

let () =
  Printexc.register_printer (function
    | Budget_exceeded { events; now; exhausted } ->
        Some
          (Printf.sprintf
             "Sim.Budget_exceeded (%s after %d events at t=%g)" exhausted
             events
             (Units.Time.to_s now))
    | _ -> None)

let create ?(seed = 42) () =
  {
    heap = Heap.create ();
    clock = 0.0;
    next_seq = 0;
    stopped = false;
    executed = 0;
    root_rng = Rng.create seed;
    watchdog = None;
    instant_events = 0;
    next_id = 0;
    budget_armed = false;
    budget_events = max_int;
    budget_wall_limit = infinity;
    budget_wall_start = 0.0;
    wall_countdown = 0;
  }

let now t = t.clock
let rng t = t.root_rng

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

(* The public scheduling API speaks [Units.Time.t]; the clock and heap
   keys stay raw float seconds internally (hot path). *)

let at t time f =
  let time = Units.Time.to_s time in
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is before now %g" time t.clock);
  Heap.add t.heap ~time ~seq:t.next_seq f;
  t.next_seq <- t.next_seq + 1

let after t delay f =
  let delay = Units.Time.to_s delay in
  if delay < 0.0 then invalid_arg "Sim.after: negative delay";
  at t (Units.Time.of_s (t.clock +. delay)) f

let every t ?start period f =
  let period = Units.Time.to_s period in
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  let first =
    match start with Some s -> Units.Time.to_s s | None -> t.clock +. period
  in
  let rec tick () =
    f ();
    if not t.stopped then after t (Units.Time.of_s period) tick
  in
  at t (Units.Time.of_s first) tick

let stop t = t.stopped <- true

let set_watchdog t ~max_events_per_instant on_trip =
  if max_events_per_instant <= 0 then
    invalid_arg "Sim.set_watchdog: budget must be positive";
  t.watchdog <- Some (max_events_per_instant, on_trip)

let clear_watchdog t = t.watchdog <- None

(* Wall time is sampled once per this many events: a syscall per event
   would dominate the fused peek/pop hot path. *)
let wall_sample_period = 256

let set_budget t ?max_events ?max_wall () =
  (match max_events with
  | Some n when n <= 0 ->
      invalid_arg "Sim.set_budget: max_events must be positive"
  | _ -> ());
  (match max_wall with
  | Some w when Units.Time.to_s w <= 0.0 ->
      invalid_arg "Sim.set_budget: max_wall must be positive"
  | _ -> ());
  if Option.is_none max_events && Option.is_none max_wall then
    invalid_arg "Sim.set_budget: set max_events, max_wall or both";
  t.budget_events <-
    (match max_events with Some n -> t.executed + n | None -> max_int);
  (match max_wall with
  | Some w ->
      t.budget_wall_limit <- Units.Time.to_s w;
      (* Deliberate wall-clock read: the wall budget is a safety valve
         against pathological parameter points, not simulation input — it
         never feeds back into any computed value, only into whether the
         run is cut short with [Budget_exceeded]. *)
      t.budget_wall_start <- (Unix.gettimeofday () [@lint.allow "D2"])
  | None -> t.budget_wall_limit <- infinity);
  t.wall_countdown <- wall_sample_period;
  t.budget_armed <- true

let clear_budget t =
  t.budget_armed <- false;
  t.budget_events <- max_int;
  t.budget_wall_limit <- infinity

let budget_trip t exhausted =
  raise
    (Budget_exceeded
       { events = t.executed; now = Units.Time.of_s t.clock; exhausted })

let check_budget t =
  if t.executed >= t.budget_events then budget_trip t "max_events";
  if t.budget_wall_limit < infinity then begin
    t.wall_countdown <- t.wall_countdown - 1;
    if t.wall_countdown <= 0 then begin
      t.wall_countdown <- wall_sample_period;
      if
        (Unix.gettimeofday () [@lint.allow "D2"]) -. t.budget_wall_start
        > t.budget_wall_limit
      then budget_trip t "max_wall"
    end
  end

let run ?until t =
  t.stopped <- false;
  let until = Option.map Units.Time.to_s until in
  let horizon = match until with Some u -> u | None -> infinity in
  (* Fused peek/pop: one sift-read for the key, one sift-down for the
     payload, and no [Some _] option or result-tuple allocation per
     event — this loop runs once per simulated packet transmission. *)
  let rec loop () =
    if (not t.stopped) && not (Heap.is_empty t.heap) then begin
      if t.budget_armed then check_budget t;
      let time = Heap.min_time_exn t.heap in
      if time > horizon then t.clock <- horizon
      else begin
        let f = Heap.pop_min_exn t.heap in
        if time > t.clock then t.instant_events <- 0;
        t.clock <- time;
        t.executed <- t.executed + 1;
        t.instant_events <- t.instant_events + 1;
        (match t.watchdog with
        | Some (budget, trip) when t.instant_events = budget + 1 ->
            trip
              (Printf.sprintf
                 "livelock suspected: %d events executed at t=%g without \
                  the clock advancing"
                 t.instant_events time)
        | _ -> ());
        f ();
        loop ()
      end
    end
  in
  loop ();
  if t.stopped then ()
  else
    match until with
    | Some u -> t.clock <- Float.max t.clock u
    | None -> ()

let events_executed t = t.executed
