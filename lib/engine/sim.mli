(** Discrete-event simulation core.

    A [Sim.t] owns a virtual clock, an event heap and a root random
    generator. Events are thunks executed in nondecreasing time order;
    equal-time events run in scheduling order. *)

type t

val create : ?seed:int -> unit -> t
(** [create ?seed ()] makes an empty simulation. Default seed is 42. *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Rng.t
(** The simulation's root generator; components should {!Rng.split} it. *)

val fresh_id : t -> int
(** Per-simulation id allocator: 0, 1, 2, ... Entities (flows, CBR
    sources) draw their ids here so reruns of a simulation in the same
    process produce identical ids — a process-global counter would not
    replay. *)

val at : t -> Units.Time.t -> (unit -> unit) -> unit
(** [at t time f] schedules [f] at absolute [time]. [time >= now t]. *)

val after : t -> Units.Time.t -> (unit -> unit) -> unit
(** [after t delay f] schedules [f] at [now t +. delay]. [delay >= 0]. *)

val every : t -> ?start:Units.Time.t -> Units.Time.t -> (unit -> unit) -> unit
(** [every t ?start period f] runs [f] at [start] (default [now + period])
    and then every [period] until the simulation stops. *)

val stop : t -> unit
(** Stop the event loop after the current event returns. *)

val set_watchdog :
  t -> max_events_per_instant:int -> (string -> unit) -> unit
(** [set_watchdog t ~max_events_per_instant trip] arms a livelock detector:
    if more than [max_events_per_instant] events execute without the clock
    advancing (a zero-delay scheduling loop), [trip] is called once — per
    stuck instant — with a diagnostic. [trip] may call {!stop} to abort the
    run. Replaces any previous watchdog. *)

val clear_watchdog : t -> unit

exception
  Budget_exceeded of {
    events : int;  (** total events executed when the budget tripped *)
    now : Units.Time.t;  (** virtual time reached — the partial horizon *)
    exhausted : string;  (** ["max_events"] or ["max_wall"] *)
  }
(** Raised out of {!run} when an armed budget is exhausted. The payload is
    the partial progress; the simulation itself stays valid — the event
    that would have exceeded the budget is still queued, so after
    {!clear_budget} (or a fresh {!set_budget}) the run can be resumed
    with {!run}. *)

val set_budget : t -> ?max_events:int -> ?max_wall:Units.Time.t -> unit -> unit
(** [set_budget t ?max_events ?max_wall ()] arms a run budget, so a
    pathological parameter point terminates deterministically instead of
    hanging its domain: {!run} raises {!Budget_exceeded} once more than
    [max_events] further events execute, or once [max_wall] of wall-clock
    time elapses (sampled every few hundred events; this is the one
    sanctioned wall-clock read in the engine — it only decides whether to
    abort, never what is computed). [max_events] is relative to the events
    already executed and is fully deterministic; [max_wall] is a
    machine-dependent safety valve. At least one bound is required; both
    must be positive. Replaces any previous budget.
    @raise Invalid_argument on a non-positive or missing bound. *)

val clear_budget : t -> unit
(** Disarm the budget; {!run} resumes unbounded. *)

val run : ?until:Units.Time.t -> t -> unit
(** Execute events until the heap drains, [until] is reached (events
    scheduled strictly after [until] stay queued, the clock advances to
    [until]), or {!stop} is called.
    @raise Budget_exceeded when an armed {!set_budget} bound runs out. *)

val events_executed : t -> int
(** Total number of events executed so far (for benchmarks). *)
