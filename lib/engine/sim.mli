(** Discrete-event simulation core.

    A [Sim.t] owns a virtual clock, an event heap and a root random
    generator. Events are thunks executed in nondecreasing time order;
    equal-time events run in scheduling order. *)

type t

val create : ?seed:int -> unit -> t
(** [create ?seed ()] makes an empty simulation. Default seed is 42. *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Rng.t
(** The simulation's root generator; components should {!Rng.split} it. *)

val fresh_id : t -> int
(** Per-simulation id allocator: 0, 1, 2, ... Entities (flows, CBR
    sources) draw their ids here so reruns of a simulation in the same
    process produce identical ids — a process-global counter would not
    replay. *)

val at : t -> Units.Time.t -> (unit -> unit) -> unit
(** [at t time f] schedules [f] at absolute [time]. [time >= now t]. *)

val after : t -> Units.Time.t -> (unit -> unit) -> unit
(** [after t delay f] schedules [f] at [now t +. delay]. [delay >= 0]. *)

val every : t -> ?start:Units.Time.t -> Units.Time.t -> (unit -> unit) -> unit
(** [every t ?start period f] runs [f] at [start] (default [now + period])
    and then every [period] until the simulation stops. *)

val stop : t -> unit
(** Stop the event loop after the current event returns. *)

val set_watchdog :
  t -> max_events_per_instant:int -> (string -> unit) -> unit
(** [set_watchdog t ~max_events_per_instant trip] arms a livelock detector:
    if more than [max_events_per_instant] events execute without the clock
    advancing (a zero-delay scheduling loop), [trip] is called once — per
    stuck instant — with a diagnostic. [trip] may call {!stop} to abort the
    run. Replaces any previous watchdog. *)

val clear_watchdog : t -> unit

val run : ?until:Units.Time.t -> t -> unit
(** Execute events until the heap drains, [until] is reached (events
    scheduled strictly after [until] stay queued, the clock advances to
    [until]), or {!stop} is called. *)

val events_executed : t -> int
(** Total number of events executed so far (for benchmarks). *)
