type t = Random.State.t

let create seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5deece66 |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b; a lxor (b lsl 1) |]

let float t bound = Random.State.float t bound
let int t bound = Random.State.int t bound
let bool t = Random.State.bool t
let bernoulli t p = Units.Prob.sample p ~u:(Random.State.float t 1.0)
let uniform t lo hi = lo +. Random.State.float t (hi -. lo)

(* Inversion sampling; guard against u = 0 which would yield infinity. *)
let exponential t mean =
  let u = 1.0 -. Random.State.float t 1.0 in
  -.mean *. log u

let pareto t ~shape ~scale =
  let u = 1.0 -. Random.State.float t 1.0 in
  scale /. (u ** (1.0 /. shape))

let bounded_pareto t ~shape ~scale ~cap =
  (* Inverse CDF of the bounded Pareto on [scale, cap]. *)
  let l = scale ** shape and h = cap ** shape in
  let u = Random.State.float t 1.0 in
  ((-.(u *. h) +. (u *. l) +. h) /. (h *. l)) ** (-1.0 /. shape)

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  if p >= 1.0 then 1
  else
    let u = 1.0 -. Random.State.float t 1.0 in
    1 + Units.Round.trunc (log u /. log (1.0 -. p))
