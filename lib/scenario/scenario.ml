module Sim = Sim_engine.Sim
module Rng = Sim_engine.Rng
module T = Netsim.Topology

type queue_kind = Droptail | Red | Pi | Rem | Avq

type cc_kind =
  | Newreno
  | Vegas
  | Pert
  | Pert_pi
  | Pert_rem
  | Pert_avq

type link_spec = {
  l_src : string;
  l_dst : string;
  bw : float;
  delay : float;
  queue : queue_kind;
  qlen : int;
}

type flow_spec = {
  f_src : string;
  f_dst : string;
  cc : cc_kind;
  f_start : float;
  total : int option;
  ecn : bool;
  owd : bool;
  delack : bool;
  label : string;
}

type web_spec = { w_src : string; w_dst : string; sessions : int }

type cbr_spec = {
  c_src : string;
  c_dst : string;
  rate : float;
  c_start : float;
  c_stop : float option;
}

type t = {
  node_names : string list;  (* declaration order *)
  links : link_spec list;
  flows : flow_spec list;
  webs : web_spec list;
  cbrs : cbr_spec list;
  seed : int;
  horizon : float;
}

type report = {
  duration : float;
  flows : (string * Units.Rate.t) list;
  links : (string * float * Units.Pkts.t * int) list;
}

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_rate s =
  let n = String.length s in
  if n = 0 then fail "empty rate";
  let mult, cut =
    match s.[n - 1] with
    | 'k' | 'K' -> (1e3, 1)
    | 'M' -> (1e6, 1)
    | 'G' -> (1e9, 1)
    | _ -> (1.0, 0)
  in
  match float_of_string_opt (String.sub s 0 (n - cut)) with
  | Some v when v > 0.0 -> v *. mult
  | _ -> fail "bad rate %S" s

let parse_time s =
  let n = String.length s in
  let v suffix mult =
    let body = String.sub s 0 (n - String.length suffix) in
    match float_of_string_opt body with
    | Some v when v >= 0.0 -> v *. mult
    | _ -> fail "bad time %S" s
  in
  if n > 2 && String.sub s (n - 2) 2 = "ms" then v "ms" 1e-3
  else if n > 1 && s.[n - 1] = 's' then v "s" 1.0
  else
    match float_of_string_opt s with
    | Some x when x >= 0.0 -> x
    | _ -> fail "bad time %S" s

let parse_queue s =
  match String.split_on_char ':' s with
  | [ kind; len ] -> (
      let qlen =
        match int_of_string_opt len with
        | Some n when n > 0 -> n
        | _ -> fail "bad queue length %S" len
      in
      match kind with
      | "droptail" -> (Droptail, qlen)
      | "red" -> (Red, qlen)
      | "pi" -> (Pi, qlen)
      | "rem" -> (Rem, qlen)
      | "avq" -> (Avq, qlen)
      | _ -> fail "unknown queue kind %S" kind)
  | _ -> fail "queue must be KIND:PKTS, got %S" s

let parse_cc = function
  | "newreno" | "sack" -> Newreno
  | "vegas" -> Vegas
  | "pert" -> Pert
  | "pert-pi" -> Pert_pi
  | "pert-rem" -> Pert_rem
  | "pert-avq" -> Pert_avq
  | s -> fail "unknown cc %S" s

(* key=value and bare-flag arguments *)
let kv_args words =
  List.map
    (fun w ->
      match String.index_opt w '=' with
      | Some i ->
          (String.sub w 0 i, Some (String.sub w (i + 1) (String.length w - i - 1)))
      | None -> (w, None))
    words

let get_req args key line =
  match List.assoc_opt key args with
  | Some (Some v) -> v
  | _ -> fail "directive %S needs %s=..." line key

let get_opt args key = match List.assoc_opt key args with Some v -> v | None -> None
let has_flag args key = List.mem_assoc key args

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let parse source =
  let node_names = ref [] in
  let links = ref [] in
  let flows = ref [] in
  let webs = ref [] in
  let cbrs = ref [] in
  let seed = ref 42 in
  let horizon = ref None in
  let flow_count = ref 0 in
  let known name =
    if not (List.mem name !node_names) then fail "unknown node %S" name
  in
  let add_link l_src l_dst rest line =
    known l_src;
    known l_dst;
    let args = kv_args rest in
    let bw = parse_rate (get_req args "bw" line) in
    let delay = parse_time (get_req args "delay" line) in
    let queue, qlen = parse_queue (get_req args "queue" line) in
    links := { l_src; l_dst; bw; delay; queue; qlen } :: !links
  in
  let directive line =
    match split_words line with
    | [] -> ()
    | [ "node"; name ] ->
        if List.mem name !node_names then fail "duplicate node %S" name;
        node_names := !node_names @ [ name ]
    | "link" :: s :: d :: rest -> add_link s d rest line
    | "duplex" :: a :: b :: rest ->
        add_link a b rest line;
        add_link b a rest line
    | "flow" :: s :: d :: rest ->
        known s;
        known d;
        let args = kv_args rest in
        incr flow_count;
        flows :=
          {
            f_src = s;
            f_dst = d;
            cc = parse_cc (get_req args "cc" line);
            f_start =
              (match get_opt args "start" with Some v -> parse_time v | None -> 0.0);
            total =
              (match get_opt args "total" with
              | Some v -> (
                  match int_of_string_opt v with
                  | Some n when n > 0 -> Some n
                  | _ -> fail "bad total %S" v)
              | None -> None);
            ecn = has_flag args "ecn";
            owd = has_flag args "owd";
            delack = has_flag args "delack";
            label = Printf.sprintf "flow%d(%s->%s)" !flow_count s d;
          }
          :: !flows
    | "web" :: s :: d :: rest ->
        known s;
        known d;
        let args = kv_args rest in
        let sessions =
          match int_of_string_opt (get_req args "sessions" line) with
          | Some n when n > 0 -> n
          | _ -> fail "bad sessions count"
        in
        webs := { w_src = s; w_dst = d; sessions } :: !webs
    | "cbr" :: s :: d :: rest ->
        known s;
        known d;
        let args = kv_args rest in
        cbrs :=
          {
            c_src = s;
            c_dst = d;
            rate = parse_rate (get_req args "rate" line);
            c_start =
              (match get_opt args "start" with Some v -> parse_time v | None -> 0.0);
            c_stop =
              (match get_opt args "stop" with
              | Some v -> Some (parse_time v)
              | None -> None);
          }
          :: !cbrs
    | [ "seed"; n ] -> (
        match int_of_string_opt n with
        | Some v -> seed := v
        | None -> fail "bad seed %S" n)
    | [ "run"; t ] ->
        if !horizon <> None then fail "duplicate run directive";
        horizon := Some (parse_time t)
    | w :: _ -> fail "unknown directive %S" w
  in
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  try
    List.iteri
      (fun i line ->
        try directive (strip_comment line)
        with Parse_error msg -> fail "line %d: %s" (i + 1) msg)
      (String.split_on_char '\n' source);
    match !horizon with
    | None -> Error "missing `run TIME` directive"
    | Some horizon ->
        if !links = [] then Error "scenario has no links"
        else
          Ok
            {
              node_names = !node_names;
              links = List.rev !links;
              flows = List.rev !flows;
              webs = List.rev !webs;
              cbrs = List.rev !cbrs;
              seed = !seed;
              horizon;
            }
  with Parse_error msg -> Error msg

(* --- execution ----------------------------------------------------------- *)

let make_disc sim kind qlen ~bw =
  let capacity_pps = bw /. (8.0 *. float_of_int Netsim.Packet.data_size) in
  match kind with
  | Droptail -> Netsim.Droptail.create ~limit_pkts:qlen
  | Red ->
      Netsim.Red.create
        ~rng:(Rng.split (Sim.rng sim))
        ~params:(Netsim.Red.auto_params ~capacity_pps ~limit_pkts:qlen ())
        ~capacity_pps ~limit_pkts:qlen
  | Pi ->
      (* gains designed for a nominal 100 ms / 10-flow regime *)
      let ctx =
        { Experiments.Schemes.sim; capacity_pps; limit_pkts = qlen;
          rtt = 0.1; nflows = 10 }
      in
      Experiments.Schemes.bottleneck_disc
        (Experiments.Schemes.Sack_pi_ecn { target_delay = Units.Time.s 0.003 })
        ctx
  | Rem ->
      Netsim.Rem.create
        ~rng:(Rng.split (Sim.rng sim))
        ~params:(Netsim.Rem.default_params ~capacity_pps)
        ~capacity_pps ~limit_pkts:qlen
  | Avq ->
      Netsim.Avq.create ~params:(Netsim.Avq.default_params ()) ~capacity_pps
        ~limit_pkts:qlen

let make_cc sim kind =
  let rng () = Rng.split (Sim.rng sim) in
  match kind with
  | Newreno -> Tcpstack.Cc.newreno ()
  | Vegas -> Tcpstack.Vegas.create ()
  | Pert -> Tcpstack.Pert_cc.create ~rng:(rng ()) ()
  | Pert_pi ->
      (* nominal design point, as in Schemes *)
      let gains =
        let g =
          Fluid.Stability.pert_pi_gains ~c:1000.0 ~n_min:10.0 ~r_plus:0.1
            ~r_star:0.1
        in
        Pert_core.Pert_pi.gains_of_pi ~k:g.Fluid.Stability.k
          ~m:g.Fluid.Stability.m ~delta:0.01
      in
      Tcpstack.Pert_pi_cc.create ~rng:(rng ())
        ~gains ~target_delay:(Units.Time.s 0.003)
        ~sample_interval:(Units.Time.s 0.01) ()
  | Pert_rem -> Tcpstack.Pert_rem_cc.create ~rng:(rng ()) ()
  | Pert_avq -> Tcpstack.Pert_avq_cc.create ~rng:(rng ()) ()

let run t =
  let sim = Sim.create ~seed:t.seed () in
  let topo = T.create sim in
  let nodes = Hashtbl.create 16 in
  List.iter (fun name -> Hashtbl.replace nodes name (T.add_node topo)) t.node_names;
  let node name = Hashtbl.find nodes name in
  let links =
    List.map
      (fun l ->
        let link =
          T.add_link topo ~src:(node l.l_src) ~dst:(node l.l_dst)
            ~bandwidth:(Units.Rate.bps l.bw)
            ~delay:(Units.Time.s l.delay)
            ~disc:(make_disc sim l.queue l.qlen ~bw:l.bw)
        in
        (Printf.sprintf "%s->%s" l.l_src l.l_dst, link))
      t.links
  in
  T.compute_routes topo;
  let flows =
    List.map
      (fun f ->
        let flow =
          Tcpstack.Flow.create topo ~src:(node f.f_src) ~dst:(node f.f_dst)
            ~cc:(make_cc sim f.cc) ~ecn:f.ecn ?total_pkts:f.total
            ~start:(Units.Time.s f.f_start)
            ~delay_signal:(if f.owd then `Owd else `Rtt)
            ~delayed_acks:f.delack ()
        in
        (f.label, flow))
      t.flows
  in
  List.iter
    (fun w ->
      ignore
        (Traffic.Web.start_sessions topo ~n:w.sessions
           ~src_pool:[| node w.w_src |] ~dst_pool:[| node w.w_dst |]
           ~cc_factory:Tcpstack.Cc.newreno ()))
    t.webs;
  List.iter
    (fun c ->
      ignore
        (Traffic.Cbr.start topo ~src:(node c.c_src) ~dst:(node c.c_dst)
           ~rate:(Units.Rate.bps c.rate)
           ~start:(Units.Time.s c.c_start)
           ?stop:(Option.map Units.Time.s c.c_stop) ()))
    t.cbrs;
  Sim.run ~until:(Units.Time.s t.horizon) sim;
  {
    duration = t.horizon;
    flows =
      List.map
        (fun (label, flow) ->
          (label, Tcpstack.Flow.goodput_bps flow ~now:(Sim.now sim)))
        flows;
    links =
      List.map
        (fun (name, link) ->
          ( name,
            Netsim.Link.utilization link,
            Netsim.Link.avg_queue_pkts link,
            Netsim.Link.drops link ))
        links;
  }

let parse_and_run source = Result.map run (parse source)

let pp_report fmt r =
  Format.fprintf fmt "simulated %.1f s@." r.duration;
  List.iter
    (fun (label, goodput) ->
      Format.fprintf fmt "%-24s %8.3f Mbps@." label (Units.Rate.to_mbps goodput))
    r.flows;
  List.iter
    (fun (name, util, q, drops) ->
      Format.fprintf fmt "%-24s util=%.3f avg_queue=%.1f drops=%d@." name util
        (Units.Pkts.to_float q) drops)
    r.links
