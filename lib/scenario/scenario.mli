(** A small text language for describing simulations, so arbitrary
    topologies (not just the built-in dumbbell) can be run without
    writing OCaml.

    One directive per line; [#] starts a comment. Example:

    {v
    # three-node chain with a PERT flow and web background
    node a
    node r
    node b
    duplex a r bw=100M delay=1ms queue=droptail:10000
    duplex r b bw=10M  delay=20ms queue=red:50
    flow a b cc=pert
    flow a b cc=newreno start=5 total=2000
    web a b sessions=20
    cbr b a rate=1M start=10 stop=20
    run 60
    v}

    Directives:
    - [node NAME]
    - [link SRC DST bw=RATE delay=TIME queue=KIND:PKTS] — unidirectional
    - [duplex A B bw=RATE delay=TIME queue=KIND:PKTS] — both directions
      (independent queues of the same kind)
    - [flow SRC DST cc=CC] with optional [start=TIME], [total=PKTS],
      [ecn], [owd], [delack]
    - [web SRC DST sessions=N]
    - [cbr SRC DST rate=RATE] with optional [start=TIME], [stop=TIME]
    - [seed N]
    - [run TIME] — must be last

    Rates accept [k]/[M]/[G] suffixes (bits/s); times accept [ms]/[s]
    (default seconds). Queue kinds: [droptail], [red], [pi], [rem],
    [avq] (AQM parameters are auto-configured from the link rate; RED,
    PI, REM and AVQ mark ECN-capable packets). CC kinds: [newreno],
    [vegas], [pert], [pert-pi], [pert-rem], [pert-avq]. *)

type t

type report = {
  duration : float;
  flows : (string * Units.Rate.t) list;
      (** per-flow label and goodput, in declaration order *)
  links : (string * float * Units.Pkts.t * int) list;
      (** link name, utilisation, average queue, drops *)
}

val parse : string -> (t, string) result
(** Parse a scenario from source text; the error carries a line number. *)

(* Kept with no in-tree caller: the programmatic half of the API —
   [parse_and_run] is [parse] composed with it; embedders that build [t]
   by hand call it directly. *)
val run : t -> report [@@lint.allow "S3"]
(** Build and execute the scenario; metrics cover the full run. *)

val parse_and_run : string -> (report, string) result

val pp_report : Format.formatter -> report -> unit
