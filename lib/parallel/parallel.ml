(* Work-queue domain pool. See the .mli for the determinism contract.

   Shape: one shared FIFO of closures guarded by a mutex + condition;
   [jobs - 1] worker domains block on the condition and drain the queue;
   each submitted task fills a per-future slot and signals its own
   condition. The submitting domain blocks in [await], so the pool keeps
   at most [jobs] domains busy in steady state (workers + the submitter
   only while it still has tasks to enqueue).

   Results are deterministic by construction: the queue is FIFO, every
   task runs exactly once, and [map] reads futures back in submission
   order — scheduling only changes *when* a task runs, never what it
   computes (tasks must not share mutable state, which pertlint D3/P1
   enforce for the simulation code this pool was built to run). *)

module Rng = Sim_engine.Rng

exception Task_error of { index : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Task_error { index; exn } ->
        Some
          (Printf.sprintf "Parallel.Task_error (task %d: %s)" index
             (Printexc.to_string exn))
    | _ -> None)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  pending : (unit -> unit) Queue.t;
  mutable accepting : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

type 'a future = {
  f_mutex : Mutex.t;
  f_done : Condition.t;
  mutable result : ('a, exn * Printexc.raw_backtrace) result option;
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.pending && t.accepting do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.pending then Mutex.unlock t.mutex (* shut down *)
  else begin
    let job = Queue.pop t.pending in
    Mutex.unlock t.mutex;
    job ();
    worker_loop t
  end

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      pending = Queue.create ();
      accepting = true;
      workers = [];
      jobs;
    }
  in
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let run_task f =
  match f () with
  | v -> Ok v
  | exception exn -> Error (exn, Printexc.get_raw_backtrace ())

let submit t f =
  if t.jobs = 1 then
    (* Sequential fallback: run inline, on the calling domain, right now —
       submission order is execution order, and no domain ever exists. *)
    {
      f_mutex = Mutex.create ();
      f_done = Condition.create ();
      result = Some (run_task f);
    }
  else begin
    let fut =
      { f_mutex = Mutex.create (); f_done = Condition.create (); result = None }
    in
    let job () =
      let result = run_task f in
      Mutex.lock fut.f_mutex;
      fut.result <- Some result;
      Condition.broadcast fut.f_done;
      Mutex.unlock fut.f_mutex
    in
    Mutex.lock t.mutex;
    if not t.accepting then begin
      Mutex.unlock t.mutex;
      invalid_arg "Parallel.submit: pool is shut down"
    end;
    Queue.push job t.pending;
    Condition.signal t.work_available;
    Mutex.unlock t.mutex;
    fut
  end

let await fut =
  Mutex.lock fut.f_mutex;
  let rec wait () =
    match fut.result with
    | Some r ->
        Mutex.unlock fut.f_mutex;
        r
    | None ->
        Condition.wait fut.f_done fut.f_mutex;
        wait ()
  in
  wait ()

let shutdown t =
  Mutex.lock t.mutex;
  t.accepting <- false;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Sequential counterpart of the pool path: same [Task_error] wrapping,
   same backtrace, so callers need a single handler for every [jobs]. *)
let run_wrapped index f x =
  match f x with
  | v -> v
  | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      Printexc.raise_with_backtrace (Task_error { index; exn }) bt

let map ~jobs f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ run_wrapped 0 f x ]
  | xs when jobs <= 1 -> List.mapi (fun index x -> run_wrapped index f x) xs
  | xs ->
      let pool = create ~jobs:(min jobs (List.length xs)) in
      Fun.protect
        ~finally:(fun () -> shutdown pool)
        (fun () ->
          let futures = List.map (fun x -> submit pool (fun () -> f x)) xs in
          List.mapi
            (fun index fut ->
              match await fut with
              | Ok v -> v
              | Error (exn, bt) ->
                  Printexc.raise_with_backtrace (Task_error { index; exn }) bt)
            futures)

module Guard = struct
  type 'a t = { g_mutex : Mutex.t; g_value : 'a }

  let create v = { g_mutex = Mutex.create (); g_value = v }
  let with_ g f = Mutex.protect g.g_mutex (fun () -> f g.g_value)
end

(* ---- supervised tasks ---------------------------------------------------

   Retry/timeout supervision runs *inside* the submitted closure, on
   whichever domain executes it: domains cannot be interrupted, so a
   deadline is enforced cooperatively (the task arms its own engine
   budget from the [~deadline] it receives) and the pool's job is to
   classify the resulting exception and to pace retries.

   Backoff is deterministic by construction — drawn from an [Rng] seeded
   per task, never from the wall clock — and honoured by a bounded
   [Domain.cpu_relax] spin, so a retrying task yields its core without
   sleeping (pertlint R1) and the attempt trace is byte-identical at any
   [jobs]. *)

type attempt = { attempt : int; error : string; backoff : Units.Time.t }

(* NOTE: [Ok] deliberately mirrors the issue-tracker API and shadows
   [Stdlib.Ok] from here down — everything above this point uses the
   stdlib constructor. *)
type 'a outcome =
  | Ok of 'a
  | Failed of attempt list
  | Timed_out of { attempts : attempt list; reason : string }

(* ~1e8 relax/s on current hardware; cap a single pause at ~0.1 s of spin
   so a misconfigured backoff cannot wedge a worker. *)
let relax_per_second = 1e8
let max_relax = 10_000_000

let honour_backoff t pause =
  if t.jobs > 1 then begin
    let n =
      min max_relax
        (Units.Round.trunc (Units.Time.to_s pause *. relax_per_second))
    in
    for _ = 1 to n do
      Domain.cpu_relax ()
    done
  end

let submit_supervised t ?deadline ?(retries = 0)
    ?(backoff = Units.Time.ms 20.0) ?(is_timeout = fun _ -> false) ~seed f =
  if retries < 0 then
    invalid_arg "Parallel.submit_supervised: retries must be >= 0";
  if Units.Time.to_s backoff < 0.0 then
    invalid_arg "Parallel.submit_supervised: backoff must be >= 0";
  let supervise () =
    let rng = Rng.create seed in
    let rec go k attempts =
      match f ~deadline with
      | v -> Ok v
      | exception exn ->
          let error = Printexc.to_string exn in
          if is_timeout exn then
            Timed_out { attempts = List.rev attempts; reason = error }
          else begin
            let pause =
              if k >= retries then Units.Time.zero
              else
                (* base * 2^k, jittered by a deterministic draw in
                   [0.5, 1.5) — the usual decorrelation, minus the wall
                   clock. *)
                Units.Time.scale
                  (float_of_int (1 lsl min k 20) *. Rng.uniform rng 0.5 1.5)
                  backoff
            in
            let attempts =
              { attempt = k + 1; error; backoff = pause } :: attempts
            in
            if k >= retries then Failed (List.rev attempts)
            else begin
              honour_backoff t pause;
              go (k + 1) attempts
            end
          end
    in
    go 0 []
  in
  submit t supervise
