(* Work-queue domain pool. See the .mli for the determinism contract.

   Shape: one shared FIFO of closures guarded by a mutex + condition;
   [jobs - 1] worker domains block on the condition and drain the queue;
   each submitted task fills a per-future slot and signals its own
   condition. The submitting domain blocks in [await], so the pool keeps
   at most [jobs] domains busy in steady state (workers + the submitter
   only while it still has tasks to enqueue).

   Results are deterministic by construction: the queue is FIFO, every
   task runs exactly once, and [map] reads futures back in submission
   order — scheduling only changes *when* a task runs, never what it
   computes (tasks must not share mutable state, which pertlint D3/P1
   enforce for the simulation code this pool was built to run). *)

exception Task_error of { index : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Task_error { index; exn } ->
        Some
          (Printf.sprintf "Parallel.Task_error (task %d: %s)" index
             (Printexc.to_string exn))
    | _ -> None)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  pending : (unit -> unit) Queue.t;
  mutable accepting : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

let jobs t = t.jobs

type 'a future = {
  f_mutex : Mutex.t;
  f_done : Condition.t;
  mutable result : ('a, exn * Printexc.raw_backtrace) result option;
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.pending && t.accepting do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.pending then Mutex.unlock t.mutex (* shut down *)
  else begin
    let job = Queue.pop t.pending in
    Mutex.unlock t.mutex;
    job ();
    worker_loop t
  end

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      pending = Queue.create ();
      accepting = true;
      workers = [];
      jobs;
    }
  in
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let run_task f =
  match f () with
  | v -> Ok v
  | exception exn -> Error (exn, Printexc.get_raw_backtrace ())

let submit t f =
  if t.jobs = 1 then
    (* Sequential fallback: run inline, on the calling domain, right now —
       submission order is execution order, and no domain ever exists. *)
    {
      f_mutex = Mutex.create ();
      f_done = Condition.create ();
      result = Some (run_task f);
    }
  else begin
    let fut =
      { f_mutex = Mutex.create (); f_done = Condition.create (); result = None }
    in
    let job () =
      let result = run_task f in
      Mutex.lock fut.f_mutex;
      fut.result <- Some result;
      Condition.broadcast fut.f_done;
      Mutex.unlock fut.f_mutex
    in
    Mutex.lock t.mutex;
    if not t.accepting then begin
      Mutex.unlock t.mutex;
      invalid_arg "Parallel.submit: pool is shut down"
    end;
    Queue.push job t.pending;
    Condition.signal t.work_available;
    Mutex.unlock t.mutex;
    fut
  end

let await fut =
  Mutex.lock fut.f_mutex;
  let rec wait () =
    match fut.result with
    | Some r ->
        Mutex.unlock fut.f_mutex;
        r
    | None ->
        Condition.wait fut.f_done fut.f_mutex;
        wait ()
  in
  wait ()

let shutdown t =
  Mutex.lock t.mutex;
  t.accepting <- false;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let map ~jobs f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when jobs <= 1 -> List.map f xs
  | xs ->
      let pool = create ~jobs:(min jobs (List.length xs)) in
      Fun.protect
        ~finally:(fun () -> shutdown pool)
        (fun () ->
          let futures = List.map (fun x -> submit pool (fun () -> f x)) xs in
          List.mapi
            (fun index fut ->
              match await fut with
              | Ok v -> v
              | Error (exn, bt) ->
                  Printexc.raise_with_backtrace (Task_error { index; exn }) bt)
            futures)
