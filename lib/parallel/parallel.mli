(** Work-queue domain pool for mutually independent simulation tasks.

    Every [Sim.t] is a self-contained deterministic island (no
    module-level mutable state — pertlint D1–D3), so independent
    experiment runs can execute on separate domains without sharing
    anything. This module is the only sanctioned home for
    [Domain]/[Mutex]/[Condition] in [lib/] (pertlint rule P1).

    Determinism contract: {!map} returns results in task order and runs
    each task exactly once, so for pure tasks the result is bit-for-bit
    identical for every [jobs] value, including the sequential [jobs = 1]
    fallback (which spawns no domain at all). *)

exception Task_error of { index : int; exn : exn }
(** A worker task raised [exn]; [index] is the task's 0-based position in
    the submission order. Raised by {!map} (and re-raised with the
    worker's backtrace) for the failing task with the smallest index. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1 — the default for
    [-j 0]/auto. *)

(** {1 Pools} *)

type t
(** A fixed-size pool of worker domains draining a shared task queue. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([max jobs 1]; the
    submitting domain is expected to block in {!await}, so [jobs] workers
    would oversubscribe by one). With [jobs = 1] no domain is spawned and
    {!submit} runs tasks inline on the calling domain. *)

val jobs : t -> int

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. Tasks must be independent: a task must not [submit]
    to (or [await] a future of) its own pool, or the pool can deadlock.
    @raise Invalid_argument after {!shutdown}. *)

val await : 'a future -> ('a, exn * Printexc.raw_backtrace) result
(** Block until the task has run. Never raises the task's exception —
    it is returned, with the backtrace captured on the worker. *)

val shutdown : t -> unit
(** Drain the queue, then join every worker. Idempotent. *)

(** {1 One-shot parallel map} *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on a transient
    pool of [min jobs (length xs)] workers and returns the results in
    list order. [jobs <= 1] (or a list shorter than 2) degrades to
    [List.map f xs] with no domain spawned and exceptions propagating
    unwrapped. Otherwise, if any task raised, the remaining tasks still
    run to completion and the failure with the smallest task index is
    re-raised as {!Task_error} with the worker's backtrace. *)
