(** Work-queue domain pool for mutually independent simulation tasks.

    Every [Sim.t] is a self-contained deterministic island (no
    module-level mutable state — pertlint D1–D3), so independent
    experiment runs can execute on separate domains without sharing
    anything. This module is the only sanctioned home for
    [Domain]/[Mutex]/[Condition] in [lib/] (pertlint rule P1).

    Determinism contract: {!map} returns results in task order and runs
    each task exactly once, so for pure tasks the result is bit-for-bit
    identical for every [jobs] value, including the sequential [jobs = 1]
    fallback (which spawns no domain at all). *)

exception Task_error of { index : int; exn : exn }
(** A worker task raised [exn]; [index] is the task's 0-based position in
    the submission order. Raised by {!map} (and re-raised with the
    worker's backtrace) for the failing task with the smallest index. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1 — the default for
    [-j 0]/auto. *)

(** {1 Pools} *)

type t
(** A fixed-size pool of worker domains draining a shared task queue. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([max jobs 1]; the
    submitting domain is expected to block in {!await}, so [jobs] workers
    would oversubscribe by one). With [jobs = 1] no domain is spawned and
    {!submit} runs tasks inline on the calling domain. *)

type 'a future

(* Kept with no in-tree caller outside this module: the pool's
   primitive operation ([map] and [submit_supervised] are built on it),
   and what the pertscan S1 fixtures drive directly (fixture trees are
   excluded from the repo scan, so those references don't count). *)
val submit : t -> (unit -> 'a) -> 'a future [@@lint.allow "S3"]
(** Enqueue a task. Tasks must be independent: a task must not [submit]
    to (or [await] a future of) its own pool, or the pool can deadlock.
    @raise Invalid_argument after {!shutdown}. *)

val await : 'a future -> ('a, exn * Printexc.raw_backtrace) result
(** Block until the task has run. Never raises the task's exception —
    it is returned, with the backtrace captured on the worker. *)

val shutdown : t -> unit
(** Drain the queue, then join every worker. Idempotent. *)

(** {1 One-shot parallel map} *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on a transient
    pool of [min jobs (length xs)] workers and returns the results in
    list order. [jobs <= 1] (or a list shorter than 2) degrades to a
    sequential map with no domain spawned. Failures are uniform across
    every [jobs] value: a raising task is re-raised as {!Task_error}
    carrying its index and backtrace — sequentially that is the first
    failing task; on a pool the remaining tasks still run to completion
    and the failure with the smallest task index wins. *)

(** {1 Guarded shared state} *)

(** A value paired with a private [Mutex], usable only through a scoped
    critical section — the one sanctioned shape for state shared between
    the submitting context and pool tasks. pertscan's race detector (S1)
    treats accesses under {!Guard.with_} (like [Mutex.protect]) as
    synchronized; a bare [Mutex.lock]/[unlock] pair it cannot see. *)
module Guard : sig
  type 'a t

  val create : 'a -> 'a t

  val with_ : 'a t -> ('a -> 'b) -> 'b
  (** [with_ g f] runs [f] on the guarded value while holding the lock;
      the lock is released on return or exception. [f] must not [submit]
      to or [await] the pool (lock-ordering), and must not re-enter
      [with_] on the same guard ([Mutex] is not reentrant). *)
end

(** {1 Supervised tasks}

    Crash-safe task execution layered on {!submit}/{!await}: bounded
    retries with deterministic backoff, and timeout classification for
    cooperatively-enforced deadlines. *)

type attempt = {
  attempt : int;  (** 1-based attempt number *)
  error : string;  (** [Printexc.to_string] of what it raised *)
  backoff : Units.Time.t;
      (** pause honoured before the next attempt ([zero] on the last) *)
}

type 'a outcome =
  | Ok of 'a  (** some attempt succeeded *)
  | Failed of attempt list  (** every attempt raised; oldest first *)
  | Timed_out of { attempts : attempt list; reason : string }
      (** an attempt raised an exception classified by [is_timeout] —
          deadlines are final, so no retry is made *)

val submit_supervised :
  t ->
  ?deadline:Units.Time.t ->
  ?retries:int ->
  ?backoff:Units.Time.t ->
  ?is_timeout:(exn -> bool) ->
  seed:int ->
  (deadline:Units.Time.t option -> 'a) ->
  'a outcome future
(** [submit_supervised t ~deadline ~retries ~backoff ~is_timeout ~seed f]
    enqueues [f], re-running it up to [retries] extra times when it
    raises. Domains cannot be killed, so the deadline is cooperative:
    [f] receives [~deadline] and is expected to bound itself (simulation
    tasks arm {!Sim_engine.Sim.set_budget} with it); an exception for
    which [is_timeout] holds (default: none) becomes {!Timed_out}
    without retrying. The pause before attempt [k+1] is
    [backoff * 2^k * u] with [u] drawn uniformly from [0.5, 1.5) by an
    {!Sim_engine.Rng} seeded with [seed] — never from the wall clock —
    so outcomes and attempt traces are byte-identical at any pool width
    (the pause is honoured by a bounded cpu-relax spin on multi-domain
    pools and skipped at [jobs = 1]). Defaults: [retries = 0],
    [backoff = 20ms], no deadline.
    @raise Invalid_argument on negative [retries] or [backoff]. *)
