(** PERT/AVQ congestion control: Reno-style increase plus the end-host
    virtual-queue controller of {!Pert_core.Pert_avq}. *)

val create :
  rng:Sim_engine.Rng.t ->
  ?params:Pert_core.Pert_avq.params ->
  ?srtt_alpha:float ->
  ?decrease_factor:float ->
  unit ->
  Cc.t

(* Kept with no current caller (pertscan S3): the {!Cc.engine}
   introspection protocol every scheme implements in place of a
   global registry (a D3 hazard). *)
val engine_of : Cc.t -> Pert_core.Pert_avq.t [@@lint.allow "S3"]
(** The AVQ engine behind a controller returned by {!create}; raises
    [Invalid_argument] for other controllers. *)
