(** Retransmission-timeout estimation per RFC 6298 (Jacobson/Karels):
    [srtt], [rttvar], [rto = srtt + 4 rttvar], clamped to
    [\[min_rto, max_rto\]], with exponential backoff on timeouts. *)

type t

val create :
  ?min_rto:Units.Time.t -> ?max_rto:Units.Time.t -> ?initial:Units.Time.t ->
  unit -> t
(** Defaults: [min_rto = 0.2] s, [max_rto = 60] s, [initial = 1] s. *)

val observe : t -> Units.Time.t -> unit
(** Feed an RTT sample; resets any backoff. Non-positive or non-finite
    samples raise [Invalid_argument]. *)

val value : t -> Units.Time.t
(** Current timeout, including backoff. *)

val backoff : t -> unit
(** Double the timeout (applied on expiry), up to [max_rto]. *)

val srtt : t -> Units.Time.t option
(** Smoothed RTT, if any sample has been observed. *)
