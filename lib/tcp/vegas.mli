(** TCP Vegas congestion avoidance (Brakmo & Peterson 1994), one of the
    paper's three baselines.

    Once per RTT the sender compares the expected throughput
    [cwnd / base_rtt] with the actual throughput [cwnd / rtt]; the
    backlog estimate [diff = cwnd * (1 - base_rtt / rtt)] (packets queued
    at the bottleneck) drives additive adjustments:

    - [diff < alpha]: cwnd += 1
    - [diff > beta] : cwnd -= 1
    - otherwise     : hold

    During slow start the window grows only every other RTT and slow
    start ends once [diff > gamma]. Loss response is standard. *)

val create : ?alpha:float -> ?beta:float -> ?gamma:float -> unit -> Cc.t
(** Defaults: [alpha = 1.], [beta = 3.], [gamma = 1.] packets. *)
