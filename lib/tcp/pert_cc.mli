(** PERT congestion control: Reno-style window increase plus the
    probabilistic early response of {!Pert_core.Pert_red} — the paper's
    primary contribution, bound to the simulator's TCP sender. *)

val create :
  rng:Sim_engine.Rng.t ->
  ?curve:Pert_core.Response_curve.t ->
  ?alpha:float ->
  ?decrease_factor:float ->
  ?limit_per_rtt:bool ->
  unit ->
  Cc.t
(** [alpha] is the srtt history weight (default 0.99); [decrease_factor]
    the early multiplicative decrease (default 0.35). *)

(* Kept with no current caller (pertscan S3): the {!Cc.engine}
   introspection protocol every scheme implements in place of a
   global registry (a D3 hazard). *)
val engine_of : Cc.t -> Pert_core.Pert_red.t [@@lint.allow "S3"]
(** The decision engine behind a controller returned by {!create}
    (for inspection in tests/experiments); raises [Invalid_argument] for
    other controllers. *)
