module Window = struct
  type t = {
    mutable cwnd : float;
    mutable ssthresh : float;
    mutable in_slow_start : bool;
  }

end

type early_action = No_response | Reduce of float
type engine = ..
type engine += No_engine

type t = {
  name : string;
  on_ack :
    Window.t -> newly_acked:int -> rtt:Units.Time.t option -> now:float -> unit;
  early : Window.t -> rtt:Units.Time.t option -> now:float -> early_action;
  on_loss : now:float -> unit;
  ecn_beta : float;
  engine : engine;
}

let reno_increase w ~newly_acked ~rtt:_ ~now:_ =
  let acked = float_of_int newly_acked in
  if w.Window.in_slow_start then begin
    w.Window.cwnd <- w.Window.cwnd +. acked;
    if w.Window.cwnd >= w.Window.ssthresh then w.Window.in_slow_start <- false
  end
  else w.Window.cwnd <- w.Window.cwnd +. (acked /. w.Window.cwnd)

let newreno () =
  {
    name = "newreno";
    on_ack = reno_increase;
    early = (fun _ ~rtt:_ ~now:_ -> No_response);
    on_loss = (fun ~now:_ -> ());
    ecn_beta = 0.5;
    engine = No_engine;
  }
