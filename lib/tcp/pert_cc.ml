module Pert_red = Pert_core.Pert_red
module Rng = Sim_engine.Rng

let registry : (string, Pert_red.t) Hashtbl.t = Hashtbl.create 8
let next_instance = ref 0

let create ~rng ?curve ?alpha ?decrease_factor ?limit_per_rtt () =
  let engine = Pert_red.create ?curve ?alpha ?decrease_factor ?limit_per_rtt () in
  let early _w ~rtt ~now =
    match rtt with
    | None -> Cc.No_response
    | Some sample -> (
        match
          Pert_red.on_ack engine ~now ~rtt:sample ~u:(Rng.float rng 1.0)
        with
        | Pert_red.Hold -> Cc.No_response
        | Pert_red.Early_response ->
            Cc.Reduce (Pert_red.decrease_factor engine))
  in
  let name = Printf.sprintf "pert#%d" !next_instance in
  incr next_instance;
  Hashtbl.replace registry name engine;
  {
    Cc.name;
    on_ack = Cc.reno_increase;
    early;
    on_loss = (fun ~now -> Pert_red.note_loss engine ~now);
    ecn_beta = 0.5;
  }

let engine_of cc =
  match Hashtbl.find_opt registry cc.Cc.name with
  | Some engine -> engine
  | None -> invalid_arg "Pert_cc.engine_of: not a PERT controller"
