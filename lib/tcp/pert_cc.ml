module Pert_red = Pert_core.Pert_red
module Rng = Sim_engine.Rng

(* Link the opaque Cc.t back to its decision engine for introspection
   (no global registry: that would be module-toplevel mutable state). *)
type Cc.engine += Engine of Pert_red.t

let create ~rng ?curve ?alpha ?decrease_factor ?limit_per_rtt () =
  let engine = Pert_red.create ?curve ?alpha ?decrease_factor ?limit_per_rtt () in
  let early _w ~rtt ~now =
    match rtt with
    | None -> Cc.No_response
    | Some sample -> (
        match
          Pert_red.on_ack engine ~now ~rtt:sample ~u:(Rng.float rng 1.0)
        with
        | Pert_red.Hold -> Cc.No_response
        | Pert_red.Early_response ->
            Cc.Reduce (Pert_red.decrease_factor engine))
  in
  {
    Cc.name = "pert";
    on_ack = Cc.reno_increase;
    early;
    on_loss = (fun ~now -> Pert_red.note_loss engine ~now);
    ecn_beta = 0.5;
    engine = Engine engine;
  }

let engine_of cc =
  match cc.Cc.engine with
  | Engine engine -> engine
  | _ -> invalid_arg "Pert_cc.engine_of: not a PERT controller"
