(* The one sanctioned home of raw window-field arithmetic; see the .mli
   and lint rule W1. *)

module Size = Units.Size

let max_shift = 14
let field_limit = 0xFFFF

module Scale = struct
  type t = int

  let none = 0

  let of_int s =
    if s < 0 || s > max_shift then
      invalid_arg
        (Printf.sprintf "Tcp_window.Scale.of_int: shift %d outside 0..%d" s
           max_shift);
    s

  let to_int t = t
  let negotiate ~offered ~required = if offered <= required then offered else required

  let for_buffer capacity =
    let b = Size.to_bytes capacity in
    let rec go shift =
      if shift >= max_shift || b lsr shift <= field_limit then shift
      else go (shift + 1)
    in
    go 0

  let pp fmt t = Format.fprintf fmt "wscale=%d" t
end

module Adv = struct
  type t = int

  let zero = 0
  let is_zero t = t = 0

  let of_field v =
    if v < 0 || v > field_limit then
      invalid_arg
        (Printf.sprintf "Tcp_window.Adv.of_field: %d outside 0..%d" v
           field_limit);
    v

  let to_field t = t

  let encode ~scale size =
    let field = Size.to_bytes size lsr scale in
    if field > field_limit then field_limit else field

  let decode ~scale t = Size.bytes (t lsl scale)
  let equal = Int.equal
end

type t = {
  capacity : Size.t;
  wscale : Scale.t;
  mutable occupied : Size.t;
}

let create ?scale ~capacity () =
  let wscale =
    match scale with Some s -> s | None -> Scale.for_buffer capacity
  in
  { capacity; wscale; occupied = Size.zero }

let scale t = t.wscale
let available t = Size.sub t.capacity t.occupied
let advertised t = Adv.encode ~scale:t.wscale (available t)
let admissible t size = Size.compare size (available t) <= 0
let occupy t size = t.occupied <- Size.min t.capacity (Size.add t.occupied size)
let release t size = t.occupied <- Size.sub t.occupied size
