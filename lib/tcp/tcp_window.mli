(** Typed TCP receive-window arithmetic (RFC 1323 window scaling).

    The 16-bit window field of the TCP header caps an unscaled window at
    64 KB — 65 full-sized segments at this model's MSS — which is far
    below the bandwidth-delay product of the ROADMAP's high-BDP points.
    Window scaling negotiates a per-flow left-shift at SYN time; every
    window then crosses the wire as a raw 16-bit field and is interpreted
    as [field lsl shift] bytes.

    This module is the only place that arithmetic is allowed to happen:
    the raw field is the abstract {!Adv.t}, byte quantities are
    {!Units.Size.t}, and the shift is the abstract {!Scale.t}, so a scaled
    advertisement can never be mixed with an unscaled byte count by
    accident. Lint rule W1 enforces the boundary: an [int]-typed binding
    with a window-suffixed name anywhere else in [lib/tcp] is a lint
    error. *)

val max_shift : int
(** Largest legal scale shift (RFC 1323: 14). *)

val field_limit : int
(** Largest raw window field value (2^16 - 1). *)

(** The negotiated per-flow window-scale shift. *)
module Scale : sig
  type t

  (* [none], [pp], and below [Adv.zero]/[Adv.equal] have no in-tree
     caller but are kept (pertscan S3): protocol constants and the
     equal/pp kit every value-semantics module here ships (see
     {!Units}). *)
  val none : t [@@lint.allow "S3"]
  (** Shift 0: no scaling, the pre-RFC-1323 64 KB cap. *)

  val of_int : int -> t
  (** Raises [Invalid_argument] outside [0 .. max_shift]. *)

  val to_int : t -> int

  val negotiate : offered:t -> required:t -> t
  (** SYN-time negotiation: both sides must support the option, and the
      effective shift is the smaller of what the sender offered and what
      the receiver needs — offering a small shift caps the connection. *)

  val for_buffer : Units.Size.t -> t
  (** The smallest shift that makes [buffer] advertisable in a 16-bit
      field, capped at {!max_shift}. [for_buffer b] is {!none} whenever
      [b <= field_limit] bytes. *)

  val pp : Format.formatter -> t -> unit [@@lint.allow "S3"]
end

(** A raw 16-bit window advertisement, as carried by an ACK. *)
module Adv : sig
  type t

  val zero : t [@@lint.allow "S3"]
  val is_zero : t -> bool

  val of_field : int -> t
  (** Validate a wire value; raises [Invalid_argument] outside
      [0 .. field_limit]. *)

  val to_field : t -> int
  (** The wire value, for packet construction. *)

  val encode : scale:Scale.t -> Units.Size.t -> t
  (** Bytes to field: right-shift and clamp to [field_limit]. Rounds
      {e down}, so the advertisement never overstates the available
      buffer; the error is under [2^shift] bytes. *)

  val decode : scale:Scale.t -> t -> Units.Size.t
  (** Field to bytes: [field lsl shift]. [decode (encode s) <= s]. *)

  val equal : t -> t -> bool [@@lint.allow "S3"]
end

type t
(** Receiver-side window state: a fixed buffer capacity and the bytes of
    it currently occupied by data the application has not read. *)

val create : ?scale:Scale.t -> capacity:Units.Size.t -> unit -> t
(** [scale] defaults to [Scale.for_buffer capacity]. *)

val scale : t -> Scale.t

val available : t -> Units.Size.t
(** Unoccupied buffer: what the receiver can still absorb. *)

val advertised : t -> Adv.t
(** [encode ~scale (available t)] — the field to put on the next ACK. *)

val admissible : t -> Units.Size.t -> bool
(** Would a segment of this size fit the remaining buffer? *)

val occupy : t -> Units.Size.t -> unit
(** Charge accepted-but-unread data against the buffer (clamped at
    capacity; callers gate with {!admissible} first). *)

val release : t -> Units.Size.t -> unit
(** The application consumed this much: return it to the window. *)
