module Sim = Sim_engine.Sim
module Fvec = Sim_engine.Fvec
module Packet = Netsim.Packet
module Node = Netsim.Node
module Topology = Netsim.Topology

type delay_signal = [ `Rtt | `Owd ]

(* Receiver-side set of out-of-order intervals [(first, last_exclusive)],
   sorted, disjoint, all strictly above rcv_next. *)
module Intervals = struct
  let rec insert seq = function
    | [] -> [ (seq, seq + 1) ]
    | ((lo, hi) :: rest) as all ->
        if seq + 1 < lo then (seq, seq + 1) :: all
        else if seq + 1 = lo then (seq, hi) :: rest
        else if seq <= hi then
          if seq = hi then merge_forward (lo, hi + 1) rest
          else all (* duplicate *)
        else (lo, hi) :: insert seq rest

  and merge_forward (lo, hi) = function
    | (lo2, hi2) :: rest when lo2 = hi -> merge_forward (lo, hi2) rest
    | rest -> (lo, hi) :: rest

  (* Advance the cumulative point through any interval starting at [next];
     returns (new_next, remaining_intervals). *)
  let consume next = function
    | (lo, hi) :: rest when lo = next -> (hi, rest)
    | intervals -> (next, intervals)

  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

  let rec containing seq = function
    | [] -> None
    | (lo, hi) :: rest ->
        if seq >= lo && seq < hi then Some (lo, hi) else containing seq rest
end

type t = {
  sim : Sim.t;
  id : int;
  src : Node.t;
  dst : Node.t;
  cc : Cc.t;
  ecn : bool;
  delay_signal : delay_signal;
  factory : Packet.factory;
  rng : Sim_engine.Rng.t;
  window : Cc.Window.t;
  max_cwnd : float;
  total : int option;
  on_complete : t -> unit;
  rto : Rto.t;
  (* sender *)
  mutable snd_una : int;
  mutable snd_next : int;
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recovery_point : int;
  mutable pipe : int;  (** estimate of packets in flight *)
  mutable max_sent : int;  (** highest sequence ever transmitted + 1 *)
  mutable max_sacked : int;  (** highest SACKed sequence, -1 if none *)
  mutable retx_scan : int;  (** next hole candidate during recovery *)
  sacked : (int, unit) Hashtbl.t;
  retx_done : (int, unit) Hashtbl.t;  (** holes retransmitted this recovery *)
  mutable timer_gen : int;
  mutable last_reduction : float;  (** last window cut of any kind *)
  mutable stopped : bool;
  mutable completed : bool;
  (* receiver *)
  delayed_acks : bool;
  mutable rcv_next : int;
  mutable ooo : (int * int) list;
  mutable pending_acks : int;  (** in-order segments not yet acknowledged *)
  mutable delack_gen : int;  (** cancels stale delayed-ACK timers *)
  (* stats *)
  mutable acked_pkts : int;
  mutable window_start : float;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable fast_recoveries : int;
  mutable early_responses : int;
  mutable rtt_trace : (Fvec.t * Fvec.t * Fvec.t) option;
  mutable loss_trace : Fvec.t option;
}

let id t = t.id
let cc_name t = t.cc.Cc.name
let cwnd t = t.window.Cc.Window.cwnd
let ssthresh t = t.window.Cc.Window.ssthresh
let snd_una t = t.snd_una
let snd_next t = t.snd_next
let in_recovery t = t.in_recovery
let completed t = t.completed
let acked_pkts t = t.acked_pkts

let goodput_bps t ~now =
  let span = now -. t.window_start in
  Units.Rate.bps
    (if span <= 0.0 then 0.0
     else float_of_int (t.acked_pkts * 8 * Packet.mss) /. span)

let reset_stats t =
  t.acked_pkts <- 0;
  t.window_start <- Sim.now t.sim

let retransmissions t = t.retransmissions
let timeouts t = t.timeouts
let loss_events t = t.fast_recoveries + t.timeouts
let early_responses t = t.early_responses

let enable_rtt_trace t =
  if t.rtt_trace = None then
    t.rtt_trace <- Some (Fvec.create (), Fvec.create (), Fvec.create ())

let rtt_trace t =
  match t.rtt_trace with
  | Some (times, samples, cwnds) ->
      (Fvec.to_array times, Fvec.to_array samples, Fvec.to_array cwnds)
  | None -> invalid_arg "Flow.rtt_trace: tracing not enabled"

let enable_loss_trace t =
  if t.loss_trace = None then t.loss_trace <- Some (Fvec.create ())

let loss_times t =
  match t.loss_trace with
  | Some v -> Fvec.to_array v
  | None -> invalid_arg "Flow.loss_times: tracing not enabled"

let note_loss_event t =
  match t.loss_trace with
  | Some v -> Fvec.push v (Sim.now t.sim)
  | None -> ()

let outstanding t = t.snd_next - t.snd_una

let has_data t =
  match t.total with None -> true | Some n -> t.snd_next < n

let effective_cwnd t = Float.min t.window.Cc.Window.cwnd t.max_cwnd

(* --- transmission ------------------------------------------------------ *)

(* In-flight accounting ("pipe", RFC 6675 spirit): every transmission adds
   a packet to the pipe; SACKed and cumulatively ACKed segments leave it as
   ACKs arrive; a fast-recovery hole retransmission additionally removes
   the presumed-lost original (handled at the call site in [try_send]). *)

let send_data t ~seq ~retransmit =
  let pkt =
    Packet.data t.factory ~flow:t.id ~src:(Node.id t.src)
      ~dst:(Node.id t.dst) ~seq ~ecn:t.ecn ~retransmit ~now:(Sim.now t.sim) ()
  in
  if retransmit then t.retransmissions <- t.retransmissions + 1;
  t.pipe <- t.pipe + 1;
  if seq >= t.max_sent then t.max_sent <- seq + 1;
  Node.receive t.src pkt

(* Next hole below the recovery point that is eligible for retransmission:
   not SACKed, not already retransmitted this recovery, and presumed lost
   by the RFC 6675 "IsLost" rule (approximated as: at least DupThresh = 3
   sequence numbers above it have been SACKed — with in-order SACK arrival
   the sacked prefix is contiguous, so the highest SACKed sequence is an
   accurate proxy). Without this check the sender would "recover" segments
   whose SACKs are merely still in flight. *)
let next_hole t =
  let rec go s =
    if s >= t.recovery_point then None
    else if Hashtbl.mem t.sacked s || Hashtbl.mem t.retx_done s then go (s + 1)
    else if s + 3 > t.max_sacked then None (* not yet presumed lost *)
    else Some s
  in
  let from = max t.retx_scan t.snd_una in
  match go from with
  | Some s ->
      t.retx_scan <- s;
      Some s
  | None -> None

let rec restart_timer t =
  t.timer_gen <- t.timer_gen + 1;
  let gen = t.timer_gen in
  Sim.after t.sim (Rto.value t.rto) (fun () ->
      if gen = t.timer_gen && (not t.stopped) && outstanding t > 0 then
        on_timeout t)

and cancel_timer t = t.timer_gen <- t.timer_gen + 1

and try_send t =
  if not t.stopped then begin
    let budget = Units.Round.trunc (effective_cwnd t) in
    let had_outstanding = outstanding t > 0 in
    let progress = ref true in
    while !progress && t.pipe < budget do
      progress := false;
      if t.in_recovery then begin
        match next_hole t with
        | Some hole ->
            Hashtbl.replace t.retx_done hole ();
            (* the lost original leaves the pipe as its replacement enters *)
            t.pipe <- max 0 (t.pipe - 1);
            send_data t ~seq:hole ~retransmit:true;
            progress := true
        | None ->
            if has_data t then begin
              send_data t ~seq:t.snd_next ~retransmit:false;
              t.snd_next <- t.snd_next + 1;
              progress := true
            end
      end
      else if has_data t then begin
        (* below max_sent only after a timeout rewind: go-back-N resend *)
        send_data t ~seq:t.snd_next ~retransmit:(t.snd_next < t.max_sent);
        t.snd_next <- t.snd_next + 1;
        progress := true
      end
    done;
    if outstanding t > 0 && not had_outstanding then restart_timer t
  end

and on_timeout t =
  t.timeouts <- t.timeouts + 1;
  note_loss_event t;
  Rto.backoff t.rto;
  let w = t.window in
  w.Cc.Window.ssthresh <- Float.max 2.0 (effective_cwnd t /. 2.0);
  w.Cc.Window.cwnd <- 1.0;
  w.Cc.Window.in_slow_start <- true;
  t.in_recovery <- false;
  t.dupacks <- 0;
  Hashtbl.reset t.sacked;
  Hashtbl.reset t.retx_done;
  t.max_sacked <- -1;
  (* Go-back-N: rewind and let the window clock out retransmissions. *)
  t.snd_next <- t.snd_una;
  t.pipe <- 0;
  t.cc.Cc.on_loss ~now:(Sim.now t.sim);
  t.last_reduction <- Sim.now t.sim;
  try_send t;
  restart_timer t

(* --- sender ------------------------------------------------------------ *)

(* Returns how many previously unknown segments the blocks SACK. *)
let record_sack t blocks =
  let fresh = ref 0 in
  List.iter
    (fun (lo, hi) ->
      for s = lo to hi - 1 do
        if s >= t.snd_una && not (Hashtbl.mem t.sacked s) then begin
          Hashtbl.replace t.sacked s ();
          if s > t.max_sacked then t.max_sacked <- s;
          incr fresh
        end
      done)
    blocks;
  !fresh

(* Returns how many entries were purged (needed for pipe accounting on a
   cumulative advance). *)
let purge_sacked_below t seq =
  (* Collect first: removing during Hashtbl.iter is unspecified. *)
  let dead =
    Hashtbl.fold (fun s () acc -> if s < seq then s :: acc else acc) t.sacked []
  in
  List.iter (fun s -> Hashtbl.remove t.sacked s) dead;
  List.length dead

let apply_reduction t factor ~now =
  let w = t.window in
  w.Cc.Window.cwnd <- Float.max 1.0 ((1.0 -. factor) *. w.Cc.Window.cwnd);
  w.Cc.Window.ssthresh <- Float.max 2.0 w.Cc.Window.cwnd;
  w.Cc.Window.in_slow_start <- false;
  t.last_reduction <- now

let enter_recovery t ~now =
  t.in_recovery <- true;
  t.recovery_point <- t.snd_next;
  t.retx_scan <- t.snd_una;
  Hashtbl.reset t.retx_done;
  t.fast_recoveries <- t.fast_recoveries + 1;
  note_loss_event t;
  let w = t.window in
  w.Cc.Window.ssthresh <- Float.max 2.0 (effective_cwnd t /. 2.0);
  w.Cc.Window.cwnd <- w.Cc.Window.ssthresh;
  w.Cc.Window.in_slow_start <- false;
  t.cc.Cc.on_loss ~now;
  t.last_reduction <- now;
  (* try_send (called by the ACK path) clocks out hole retransmissions up
     to the halved window. *)
  restart_timer t

let check_completion t =
  match t.total with
  | Some n when (not t.completed) && t.snd_una >= n ->
      t.completed <- true;
      t.stopped <- true;
      cancel_timer t;
      Node.detach_agent t.src ~flow:t.id;
      Node.detach_agent t.dst ~flow:t.id;
      t.on_complete t
  | _ -> ()

let srtt_estimate t =
  match Rto.srtt t.rto with Some s -> Units.Time.to_s s | None -> 0.1

let handle_early_action t action ~now =
  match action with
  | Cc.No_response -> ()
  | Cc.Reduce factor ->
      if not t.in_recovery then begin
        apply_reduction t factor ~now;
        t.early_responses <- t.early_responses + 1
      end

let on_ack t ~ack ~sack ~ecn_echo ~ts_echo ~ack_sent_at =
  let now = Sim.now t.sim in
  let rtt =
    let sample = now -. ts_echo in
    if sample > 0.0 then Some (Units.Time.s sample) else None
  in
  (* The controller's delay signal: the RTT itself, or the forward
     one-way delay (data send -> receiver ACK timestamp), which is blind
     to reverse-path queueing. PERT only uses signal minus its observed
     minimum, so the two are interchangeable as long as the signal
     contains the forward queueing delay exactly once. *)
  let signal =
    match t.delay_signal with
    | `Rtt -> rtt
    | `Owd ->
        let owd = ack_sent_at -. ts_echo in
        if owd > 0.0 then Some (Units.Time.s owd) else None
  in
  (match rtt with
  | Some sample ->
      Rto.observe t.rto sample;
      (match t.rtt_trace with
      | Some (times, samples, cwnds) ->
          Fvec.push times now;
          Fvec.push samples (Units.Time.to_s sample);
          Fvec.push cwnds t.window.Cc.Window.cwnd
      | None -> ())
  | None -> ());
  let fresh_sacked = record_sack t sack in
  t.pipe <- max 0 (t.pipe - fresh_sacked);
  (* ECN echo: one multiplicative decrease per RTT, no retransmission. *)
  if
    t.ecn && ecn_echo
    && (not t.in_recovery)
    && now -. t.last_reduction >= srtt_estimate t
  then begin
    apply_reduction t t.cc.Cc.ecn_beta ~now;
    t.cc.Cc.on_loss ~now
  end;
  (* Consult the early-response hook exactly once per ACK (it also feeds
     the controller's RTT signal); the reduction is applied after the
     branch below so recovery transitions can veto it. *)
  let early_action = t.cc.Cc.early t.window ~rtt:signal ~now in
  if ack > t.snd_una then begin
    let newly_acked = ack - t.snd_una in
    t.snd_una <- ack;
    (* A timeout may have rewound snd_next below data still in flight;
       a later ACK for that data must not leave snd_next behind. *)
    if t.snd_next < t.snd_una then t.snd_next <- t.snd_una;
    let purged = purge_sacked_below t ack in
    (* The purged segments already left the pipe when they were SACKed;
       the rest of the range leaves it now. *)
    t.pipe <- max 0 (t.pipe - (newly_acked - purged));
    (* With nothing outstanding the pipe is empty by definition; this
       also repairs any accounting drift from reordering across a
       timeout. *)
    if outstanding t = 0 then t.pipe <- 0;
    t.dupacks <- 0;
    t.acked_pkts <- t.acked_pkts + newly_acked;
    if t.in_recovery then begin
      if ack >= t.recovery_point then begin
        (* Full ACK: leave recovery at the halved window. *)
        t.in_recovery <- false;
        Hashtbl.reset t.retx_done;
        t.window.Cc.Window.cwnd <- t.window.Cc.Window.ssthresh
      end
      (* Partial ACK: try_send below clocks out the next hole(s). *)
    end
    else t.cc.Cc.on_ack t.window ~newly_acked ~rtt ~now;
    if outstanding t > 0 then restart_timer t else cancel_timer t;
    check_completion t
  end
  else if outstanding t > 0 then begin
    (* Duplicate ACK; its SACK info already freed pipe space, so try_send
       below acts as the dupack clock. *)
    t.dupacks <- t.dupacks + 1;
    if (not t.in_recovery) && t.dupacks >= 3 then enter_recovery t ~now
  end;
  handle_early_action t early_action ~now;
  try_send t

(* --- receiver ----------------------------------------------------------- *)

let send_ack t (data_pkt : Packet.t) =
  (* RFC 2018: the first SACK block must cover the most recently received
     segment, so the sender learns about fresh arrivals even when there
     are more than three out-of-order intervals. *)
  let sack =
    let newest =
      match data_pkt.Packet.payload with
      | Packet.Data { seq } -> Intervals.containing seq t.ooo
      | Packet.Ack _ -> None
    in
    match newest with
    | None -> Intervals.take 3 t.ooo
    | Some block ->
        block
        :: Intervals.take 2 (List.filter (fun b -> b <> block) t.ooo)
  in
  let ack_pkt =
    Packet.ack t.factory ~flow:t.id ~src:(Node.id t.dst) ~dst:(Node.id t.src)
      ~ack:t.rcv_next ~sack ~ecn_echo:data_pkt.Packet.ecn_marked
      ~ts_echo:data_pkt.Packet.sent_at ~now:(Sim.now t.sim) ()
  in
  Node.receive t.dst ack_pkt

let on_data t pkt seq =
  let in_order = seq = t.rcv_next in
  if in_order then begin
    t.rcv_next <- t.rcv_next + 1;
    let next, ooo = Intervals.consume t.rcv_next t.ooo in
    t.rcv_next <- next;
    t.ooo <- ooo
  end
  else if seq > t.rcv_next then t.ooo <- Intervals.insert seq t.ooo;
  (* Delayed ACKs: hold back every other in-order ACK behind a 100 ms
     timer; anything out of order or CE-marked flushes immediately. *)
  if
    (not t.delayed_acks)
    || (not in_order)
    || pkt.Packet.ecn_marked || t.ooo <> []
  then begin
    t.pending_acks <- 0;
    t.delack_gen <- t.delack_gen + 1;
    send_ack t pkt
  end
  else begin
    t.pending_acks <- t.pending_acks + 1;
    if t.pending_acks >= 2 then begin
      t.pending_acks <- 0;
      t.delack_gen <- t.delack_gen + 1;
      send_ack t pkt
    end
    else begin
      t.delack_gen <- t.delack_gen + 1;
      let gen = t.delack_gen in
      Sim.after t.sim (Units.Time.s 0.1) (fun () ->
          if gen = t.delack_gen && t.pending_acks > 0 then begin
            t.pending_acks <- 0;
            send_ack t pkt
          end)
    end
  end

(* --- construction ------------------------------------------------------- *)

let create topo ~src ~dst ~cc ?(ecn = false) ?total_pkts ?start
    ?(initial_cwnd = 2.0) ?(max_cwnd = 1_000_000.0) ?(delay_signal = `Rtt)
    ?(delayed_acks = false) ?(on_complete = fun _ -> ()) () =
  let sim = Topology.sim topo in
  let flow_id = Sim.fresh_id sim in
  let t =
    {
      sim;
      id = flow_id;
      src;
      dst;
      cc;
      ecn;
      delay_signal;
      factory = Packet.factory ();
      rng = Sim_engine.Rng.split (Sim.rng sim);
      window =
        { Cc.Window.cwnd = initial_cwnd; ssthresh = 1e9; in_slow_start = true };
      max_cwnd;
      total = total_pkts;
      on_complete;
      rto = Rto.create ();
      snd_una = 0;
      snd_next = 0;
      dupacks = 0;
      in_recovery = false;
      recovery_point = 0;
      pipe = 0;
      max_sent = 0;
      max_sacked = -1;
      retx_scan = 0;
      sacked = Hashtbl.create 64;
      retx_done = Hashtbl.create 64;
      timer_gen = 0;
      last_reduction = neg_infinity;
      stopped = false;
      completed = false;
      delayed_acks;
      rcv_next = 0;
      ooo = [];
      pending_acks = 0;
      delack_gen = 0;
      acked_pkts = 0;
      window_start = Sim.now sim;
      retransmissions = 0;
      timeouts = 0;
      fast_recoveries = 0;
      early_responses = 0;
      rtt_trace = None;
      loss_trace = None;
    }
  in
  Node.attach_agent src ~flow:flow_id (fun pkt ->
      match pkt.Packet.payload with
      | Packet.Ack { ack; sack; ecn_echo; ts_echo } ->
          if not t.stopped then
            on_ack t ~ack ~sack ~ecn_echo ~ts_echo
              ~ack_sent_at:pkt.Packet.sent_at
      | Packet.Data _ -> ());
  Node.attach_agent dst ~flow:flow_id (fun pkt ->
      match pkt.Packet.payload with
      | Packet.Data { seq } -> on_data t pkt seq
      | Packet.Ack _ -> ());
  let start_time =
    match start with Some s -> s | None -> Units.Time.s (Sim.now sim)
  in
  Sim.at sim start_time (fun () -> try_send t);
  t

let stop t =
  t.stopped <- true;
  cancel_timer t;
  Node.detach_agent t.src ~flow:t.id;
  Node.detach_agent t.dst ~flow:t.id

let rto_value t = Rto.value t.rto

let debug_state t =
  Printf.sprintf
    "una=%d next=%d pipe=%d cwnd=%.2f ssthresh=%.2f dupacks=%d rec=%b rp=%d sacked=%d stopped=%b"
    t.snd_una t.snd_next t.pipe t.window.Cc.Window.cwnd
    t.window.Cc.Window.ssthresh t.dupacks t.in_recovery t.recovery_point
    (Hashtbl.length t.sacked) t.stopped

let audit_check t =
  let finite = Float.is_finite in
  let w = t.window in
  let bad what v =
    Some (Printf.sprintf "%s = %g out of range (%s)" what v (debug_state t))
  in
  if (not (finite w.Cc.Window.cwnd)) || w.Cc.Window.cwnd < 1.0 then
    bad "cwnd" w.Cc.Window.cwnd
  else if (not (finite w.Cc.Window.ssthresh)) || w.Cc.Window.ssthresh <= 0.0
  then bad "ssthresh" w.Cc.Window.ssthresh
  else if t.pipe < 0 then bad "pipe" (float_of_int t.pipe)
  else if t.snd_next < t.snd_una then
    Some
      (Printf.sprintf "snd_next %d behind snd_una %d (%s)" t.snd_next
         t.snd_una (debug_state t))
  else
    match Option.map Units.Time.to_s (Rto.srtt t.rto) with
    | Some s when (not (finite s)) || s <= 0.0 -> bad "srtt" s
    | _ -> None
