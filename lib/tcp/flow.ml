module Sim = Sim_engine.Sim
module Fvec = Sim_engine.Fvec
module Packet = Netsim.Packet
module Node = Netsim.Node
module Topology = Netsim.Topology
module Size = Units.Size
module W = Tcp_window

type delay_signal = [ `Rtt | `Owd ]

(* One full-sized segment, as charged against the receive buffer. *)
let seg_bytes = Size.bytes Packet.mss

(* Persist probes back off exponentially from the current RTO up to the
   classic 60 s ceiling (RFC 793 / RFC 6429). *)
let persist_ceiling = Units.Time.s 60.0
let persist_backoff_limit = 6

(* RFC 5961 recommends rate-limiting challenge ACKs so a blind attacker
   cannot turn the validation itself into an amplifier. *)
let challenge_min_gap = Units.Time.s 0.05

(* Pure ACKs (window updates, probe responses, challenge ACKs) echo no
   timestamp: NaN makes every RTT/OWD sample comparison fail, so they can
   never pollute the estimator. *)
let no_ts_echo = Float.nan

(* Receiver-side set of out-of-order intervals [(first, last_exclusive)],
   sorted, disjoint, all strictly above rcv_next. *)
module Intervals = struct
  let rec insert seq = function
    | [] -> [ (seq, seq + 1) ]
    | ((lo, hi) :: rest) as all ->
        if seq + 1 < lo then (seq, seq + 1) :: all
        else if seq + 1 = lo then (seq, hi) :: rest
        else if seq <= hi then
          if seq = hi then merge_forward (lo, hi + 1) rest
          else all (* duplicate *)
        else (lo, hi) :: insert seq rest

  and merge_forward (lo, hi) = function
    | (lo2, hi2) :: rest when lo2 = hi -> merge_forward (lo, hi2) rest
    | rest -> (lo, hi) :: rest

  (* Advance the cumulative point through any interval starting at [next];
     returns (new_next, remaining_intervals). *)
  let consume next = function
    | (lo, hi) :: rest when lo = next -> (hi, rest)
    | intervals -> (next, intervals)

  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

  let rec containing seq = function
    | [] -> None
    | (lo, hi) :: rest ->
        if seq >= lo && seq < hi then Some (lo, hi) else containing seq rest
end

type t = {
  sim : Sim.t;
  id : int;
  src : Node.t;
  dst : Node.t;
  cc : Cc.t;
  ecn : bool;
  delay_signal : delay_signal;
  factory : Packet.factory;
  rng : Sim_engine.Rng.t;
  window : Cc.Window.t;
  max_cwnd : float;
  total : int option;
  on_complete : t -> unit;
  rto : Rto.t;
  persist_enabled : bool;
  rst_validation : bool;
  wnd_scale : W.Scale.t;  (** negotiated at SYN time, both directions *)
  (* sender *)
  mutable snd_una : int;
  mutable snd_next : int;
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recovery_point : int;
  mutable pipe : int;  (** estimate of packets in flight *)
  mutable max_sent : int;  (** highest sequence ever transmitted + 1 *)
  mutable max_sacked : int;  (** highest SACKed sequence, -1 if none *)
  mutable retx_scan : int;  (** next hole candidate during recovery *)
  sacked : (int, unit) Hashtbl.t;
  retx_done : (int, unit) Hashtbl.t;  (** holes retransmitted this recovery *)
  mutable timer_gen : int;  (** cancels stale RTO timers *)
  mutable peer_adv : W.Adv.t;  (** last window advertisement from the peer *)
  mutable in_persist : bool;  (** zero-window persist mode *)
  mutable persist_gen : int;  (** cancels stale persist timers *)
  mutable persist_backoff : int;  (** probe-interval doubling exponent *)
  mutable last_reduction : float;  (** last window cut of any kind *)
  mutable started : bool;
  mutable stopped : bool;
  mutable completed : bool;
  mutable aborted : bool;  (** torn down by a (validated) RST *)
  (* receiver *)
  delayed_acks : bool;
  rcv_space : W.t;  (** receive-buffer occupancy and advertisement *)
  mutable reader_paused : bool;
  mutable unread_pkts : int;  (** in-order segments the app has not read *)
  mutable rcv_next : int;
  mutable ooo : (int * int) list;
  mutable pending_acks : int;  (** in-order segments not yet acknowledged *)
  mutable delack_gen : int;  (** cancels stale delayed-ACK timers *)
  mutable last_challenge : float;  (** challenge-ACK rate limiter *)
  (* stats *)
  mutable acked_pkts : int;
  mutable window_start : float;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable fast_recoveries : int;
  mutable early_responses : int;
  mutable progress_marks : int;  (** liveness counter for the watchdog *)
  mutable max_outstanding_pkts : int;
  mutable persist_probes : int;
  mutable zero_window_episodes : int;
  mutable rcv_wnd_drops : int;  (** in-window data rejected: buffer full *)
  mutable rsts_received : int;
  mutable rsts_accepted : int;
  mutable rsts_ignored : int;  (** out-of-window blind RSTs dropped *)
  mutable challenge_acks : int;
  mutable challenges_suppressed : int;
  mutable corrupt_rejected : int;  (** segments failing the validity gate *)
  mutable rtt_trace : (Fvec.t * Fvec.t * Fvec.t) option;
  mutable loss_trace : Fvec.t option;
}

let id t = t.id
let cwnd t = t.window.Cc.Window.cwnd
let ssthresh t = t.window.Cc.Window.ssthresh
let snd_una t = t.snd_una
let snd_next t = t.snd_next
let completed t = t.completed
let aborted t = t.aborted
let acked_pkts t = t.acked_pkts

let goodput_bps t ~now =
  let span = now -. t.window_start in
  Units.Rate.bps
    (if span <= 0.0 then 0.0
     else float_of_int (t.acked_pkts * 8 * Packet.mss) /. span)

let reset_stats t =
  t.acked_pkts <- 0;
  t.window_start <- Sim.now t.sim

let retransmissions t = t.retransmissions
let timeouts t = t.timeouts
let loss_events t = t.fast_recoveries + t.timeouts
let fast_recoveries t = t.fast_recoveries
let early_responses t = t.early_responses
let persist_probes t = t.persist_probes
let zero_window_episodes t = t.zero_window_episodes
let rsts_received t = t.rsts_received
let rsts_accepted t = t.rsts_accepted
let rsts_ignored t = t.rsts_ignored
let challenge_acks t = t.challenge_acks
let corrupt_rejected t = t.corrupt_rejected
let in_persist t = t.in_persist
let max_outstanding_pkts t = t.max_outstanding_pkts
let wscale t = W.Scale.to_int t.wnd_scale

let enable_rtt_trace t =
  if t.rtt_trace = None then
    t.rtt_trace <- Some (Fvec.create (), Fvec.create (), Fvec.create ())

let rtt_trace t =
  match t.rtt_trace with
  | Some (times, samples, cwnds) ->
      (Fvec.to_array times, Fvec.to_array samples, Fvec.to_array cwnds)
  | None -> invalid_arg "Flow.rtt_trace: tracing not enabled"

let enable_loss_trace t =
  if t.loss_trace = None then t.loss_trace <- Some (Fvec.create ())

let loss_times t =
  match t.loss_trace with
  | Some v -> Fvec.to_array v
  | None -> invalid_arg "Flow.loss_times: tracing not enabled"

let note_loss_event t =
  match t.loss_trace with
  | Some v -> Fvec.push v (Sim.now t.sim)
  | None -> ()

let outstanding t = t.snd_next - t.snd_una

let has_data t =
  match t.total with None -> true | Some n -> t.snd_next < n

let effective_cwnd t = Float.min t.window.Cc.Window.cwnd t.max_cwnd

(* --- window accounting -------------------------------------------------- *)

(* The peer's usable receive window, in whole packets: its last scaled
   advertisement, decoded through the negotiated shift. All byte-level
   arithmetic stays inside Tcp_window (lint rule W1). *)
let peer_limit_pkts t =
  Size.to_bytes (W.Adv.decode ~scale:t.wnd_scale t.peer_adv) / Packet.mss

(* New data may only be sent while it fits the peer's window; data below
   snd_next was within an earlier advertisement and may always be
   retransmitted. *)
let window_allows_new t = outstanding t < peer_limit_pkts t


let advertised_bytes t =
  W.Adv.decode ~scale:(W.scale t.rcv_space) (W.advertised t.rcv_space)

(* --- transmission ------------------------------------------------------ *)

(* In-flight accounting ("pipe", RFC 6675 spirit): every transmission adds
   a packet to the pipe; SACKed and cumulatively ACKed segments leave it as
   ACKs arrive; a fast-recovery hole retransmission additionally removes
   the presumed-lost original (handled at the call site in [try_send]). *)

let send_data t ~seq ~retransmit =
  let pkt =
    Packet.data t.factory ~flow:t.id ~src:(Node.id t.src)
      ~dst:(Node.id t.dst) ~seq ~ecn:t.ecn ~retransmit ~now:(Sim.now t.sim) ()
  in
  if retransmit then t.retransmissions <- t.retransmissions + 1;
  t.pipe <- t.pipe + 1;
  t.progress_marks <- t.progress_marks + 1;
  if seq >= t.max_sent then t.max_sent <- seq + 1;
  Node.receive t.src pkt

(* Next hole below the recovery point that is eligible for retransmission:
   not SACKed, not already retransmitted this recovery, and presumed lost
   by the RFC 6675 "IsLost" rule (approximated as: at least DupThresh = 3
   sequence numbers above it have been SACKed — with in-order SACK arrival
   the sacked prefix is contiguous, so the highest SACKed sequence is an
   accurate proxy). Without this check the sender would "recover" segments
   whose SACKs are merely still in flight. *)
let next_hole t =
  let rec go s =
    if s >= t.recovery_point then None
    else if Hashtbl.mem t.sacked s || Hashtbl.mem t.retx_done s then go (s + 1)
    else if s + 3 > t.max_sacked then None (* not yet presumed lost *)
    else Some s
  in
  let from = max t.retx_scan t.snd_una in
  match go from with
  | Some s ->
      t.retx_scan <- s;
      Some s
  | None -> None

let rec restart_timer t =
  t.timer_gen <- t.timer_gen + 1;
  let gen = t.timer_gen in
  Sim.after t.sim (Rto.value t.rto) (fun () ->
      if gen = t.timer_gen && (not t.stopped) && outstanding t > 0 then
        on_timeout t)

and cancel_timer t = t.timer_gen <- t.timer_gen + 1

and try_send t =
  if not t.stopped then begin
    let budget = Units.Round.trunc (effective_cwnd t) in
    let had_outstanding = outstanding t > 0 in
    let progress = ref true in
    while !progress && t.pipe < budget do
      progress := false;
      if t.in_recovery then begin
        match next_hole t with
        | Some hole ->
            Hashtbl.replace t.retx_done hole ();
            (* the lost original leaves the pipe as its replacement enters *)
            t.pipe <- max 0 (t.pipe - 1);
            send_data t ~seq:hole ~retransmit:true;
            progress := true
        | None ->
            if has_data t && window_allows_new t then begin
              send_data t ~seq:t.snd_next ~retransmit:false;
              t.snd_next <- t.snd_next + 1;
              progress := true
            end
      end
      else if has_data t && window_allows_new t then begin
        (* below max_sent only after a timeout rewind: go-back-N resend *)
        send_data t ~seq:t.snd_next ~retransmit:(t.snd_next < t.max_sent);
        t.snd_next <- t.snd_next + 1;
        progress := true
      end
    done;
    if outstanding t > t.max_outstanding_pkts then
      t.max_outstanding_pkts <- outstanding t;
    if outstanding t > 0 && not had_outstanding then restart_timer t;
    (* Zero-window detection: everything is acknowledged, data is
       waiting, and the peer advertises no room. Without persist probes
       this state is a deadlock — the window update that reopens it can
       be lost, or (clamp attack) may never have existed. *)
    if
      t.persist_enabled && (not t.in_persist)
      && outstanding t = 0 && has_data t
      && peer_limit_pkts t = 0
    then enter_persist t
  end

and on_timeout t =
  t.timeouts <- t.timeouts + 1;
  note_loss_event t;
  Rto.backoff t.rto;
  let w = t.window in
  w.Cc.Window.ssthresh <- Float.max 2.0 (effective_cwnd t /. 2.0);
  w.Cc.Window.cwnd <- 1.0;
  w.Cc.Window.in_slow_start <- true;
  t.in_recovery <- false;
  t.dupacks <- 0;
  Hashtbl.reset t.sacked;
  Hashtbl.reset t.retx_done;
  t.max_sacked <- -1;
  (* Go-back-N: rewind and let the window clock out retransmissions. *)
  t.snd_next <- t.snd_una;
  t.pipe <- 0;
  t.cc.Cc.on_loss ~now:(Sim.now t.sim);
  t.last_reduction <- Sim.now t.sim;
  try_send t;
  (* try_send may have moved the flow into persist mode (window closed at
     the moment of the timeout); the RTO must then stay cancelled — the
     two timers never run together (see DESIGN.md). *)
  if not t.in_persist then restart_timer t

(* --- zero-window persist (RFC 793 / RFC 6429) --------------------------- *)

and enter_persist t =
  t.in_persist <- true;
  t.zero_window_episodes <- t.zero_window_episodes + 1;
  (* The retransmission timer is cancelled on the transition: with
     nothing outstanding there is nothing to retransmit, and probe pacing
     must come from the persist backoff alone, never compounded with RTO
     backoff. *)
  cancel_timer t;
  t.persist_backoff <- 0;
  schedule_probe t

and schedule_probe t =
  t.persist_gen <- t.persist_gen + 1;
  let gen = t.persist_gen in
  let interval =
    Float.min
      (Units.Time.to_s persist_ceiling)
      (Units.Time.to_s (Rto.value t.rto)
      *. (2.0 ** float_of_int t.persist_backoff))
  in
  Sim.after t.sim (Units.Time.s interval) (fun () ->
      if gen = t.persist_gen && t.in_persist && not t.stopped then begin
        send_probe t;
        if t.persist_backoff < persist_backoff_limit then
          t.persist_backoff <- t.persist_backoff + 1;
        schedule_probe t
      end)

and send_probe t =
  t.persist_probes <- t.persist_probes + 1;
  t.progress_marks <- t.progress_marks + 1;
  let pkt =
    Packet.probe t.factory ~flow:t.id ~src:(Node.id t.src)
      ~dst:(Node.id t.dst) ~seq:t.snd_next ~now:(Sim.now t.sim) ()
  in
  Node.receive t.src pkt

and exit_persist t =
  if t.in_persist then begin
    t.in_persist <- false;
    t.persist_gen <- t.persist_gen + 1 (* cancel the pending probe *)
  end

(* --- teardown ----------------------------------------------------------- *)

and abort_connection t =
  if not t.stopped then begin
    t.aborted <- true;
    t.stopped <- true;
    cancel_timer t;
    exit_persist t;
    t.delack_gen <- t.delack_gen + 1;
    Node.detach_agent t.src ~flow:t.id;
    Node.detach_agent t.dst ~flow:t.id
  end

(* --- sender ------------------------------------------------------------ *)

(* Returns how many previously unknown segments the blocks SACK. *)
let record_sack t blocks =
  let fresh = ref 0 in
  List.iter
    (fun (lo, hi) ->
      for s = lo to hi - 1 do
        if s >= t.snd_una && not (Hashtbl.mem t.sacked s) then begin
          Hashtbl.replace t.sacked s ();
          if s > t.max_sacked then t.max_sacked <- s;
          incr fresh
        end
      done)
    blocks;
  !fresh

(* Returns how many entries were purged (needed for pipe accounting on a
   cumulative advance). *)
let purge_sacked_below t seq =
  (* Collect first: removing during Hashtbl.iter is unspecified. *)
  let dead =
    Hashtbl.fold (fun s () acc -> if s < seq then s :: acc else acc) t.sacked []
  in
  List.iter (fun s -> Hashtbl.remove t.sacked s) dead;
  List.length dead

let apply_reduction t factor ~now =
  let w = t.window in
  w.Cc.Window.cwnd <- Float.max 1.0 ((1.0 -. factor) *. w.Cc.Window.cwnd);
  w.Cc.Window.ssthresh <- Float.max 2.0 w.Cc.Window.cwnd;
  w.Cc.Window.in_slow_start <- false;
  t.last_reduction <- now

let enter_recovery t ~now =
  t.in_recovery <- true;
  t.recovery_point <- t.snd_next;
  t.retx_scan <- t.snd_una;
  Hashtbl.reset t.retx_done;
  t.fast_recoveries <- t.fast_recoveries + 1;
  note_loss_event t;
  let w = t.window in
  w.Cc.Window.ssthresh <- Float.max 2.0 (effective_cwnd t /. 2.0);
  w.Cc.Window.cwnd <- w.Cc.Window.ssthresh;
  w.Cc.Window.in_slow_start <- false;
  t.cc.Cc.on_loss ~now;
  t.last_reduction <- now;
  (* try_send (called by the ACK path) clocks out hole retransmissions up
     to the halved window. *)
  restart_timer t

let check_completion t =
  match t.total with
  | Some n when (not t.completed) && t.snd_una >= n ->
      t.completed <- true;
      t.stopped <- true;
      cancel_timer t;
      exit_persist t;
      Node.detach_agent t.src ~flow:t.id;
      Node.detach_agent t.dst ~flow:t.id;
      t.on_complete t
  | _ -> ()

let srtt_estimate t =
  match Rto.srtt t.rto with Some s -> Units.Time.to_s s | None -> 0.1

let handle_early_action t action ~now =
  match action with
  | Cc.No_response -> ()
  | Cc.Reduce factor ->
      if not t.in_recovery then begin
        apply_reduction t factor ~now;
        t.early_responses <- t.early_responses + 1
      end

let on_ack t ~ack ~sack ~ecn_echo ~ts_echo ~wnd_field ~ack_sent_at =
  let now = Sim.now t.sim in
  let rtt =
    let sample = now -. ts_echo in
    if sample > 0.0 then Some (Units.Time.s sample) else None
  in
  (* The controller's delay signal: the RTT itself, or the forward
     one-way delay (data send -> receiver ACK timestamp), which is blind
     to reverse-path queueing. PERT only uses signal minus its observed
     minimum, so the two are interchangeable as long as the signal
     contains the forward queueing delay exactly once. *)
  let signal =
    match t.delay_signal with
    | `Rtt -> rtt
    | `Owd ->
        let owd = ack_sent_at -. ts_echo in
        if owd > 0.0 then Some (Units.Time.s owd) else None
  in
  (match rtt with
  | Some sample ->
      Rto.observe t.rto sample;
      (match t.rtt_trace with
      | Some (times, samples, cwnds) ->
          Fvec.push times now;
          Fvec.push samples (Units.Time.to_s sample);
          Fvec.push cwnds t.window.Cc.Window.cwnd
      | None -> ())
  | None -> ());
  (* Window update (RFC 793 SND.WL* simplified to packet granularity):
     believe any advertisement on an ACK that is not older than snd_una.
     A reopened window ends the persist episode. *)
  if ack >= t.snd_una then t.peer_adv <- W.Adv.of_field wnd_field;
  if t.in_persist && peer_limit_pkts t > 0 then exit_persist t;
  let fresh_sacked = record_sack t sack in
  t.pipe <- max 0 (t.pipe - fresh_sacked);
  (* ECN echo: one multiplicative decrease per RTT, no retransmission. *)
  if
    t.ecn && ecn_echo
    && (not t.in_recovery)
    && now -. t.last_reduction >= srtt_estimate t
  then begin
    apply_reduction t t.cc.Cc.ecn_beta ~now;
    t.cc.Cc.on_loss ~now
  end;
  (* Consult the early-response hook exactly once per ACK (it also feeds
     the controller's RTT signal); the reduction is applied after the
     branch below so recovery transitions can veto it. *)
  let early_action = t.cc.Cc.early t.window ~rtt:signal ~now in
  if ack > t.snd_una then begin
    let newly_acked = ack - t.snd_una in
    t.snd_una <- ack;
    (* A timeout may have rewound snd_next below data still in flight;
       a later ACK for that data must not leave snd_next behind. *)
    if t.snd_next < t.snd_una then t.snd_next <- t.snd_una;
    let purged = purge_sacked_below t ack in
    (* The purged segments already left the pipe when they were SACKed;
       the rest of the range leaves it now. *)
    t.pipe <- max 0 (t.pipe - (newly_acked - purged));
    (* With nothing outstanding the pipe is empty by definition; this
       also repairs any accounting drift from reordering across a
       timeout. *)
    if outstanding t = 0 then t.pipe <- 0;
    t.dupacks <- 0;
    t.acked_pkts <- t.acked_pkts + newly_acked;
    t.progress_marks <- t.progress_marks + 1;
    if t.in_recovery then begin
      if ack >= t.recovery_point then begin
        (* Full ACK: leave recovery at the halved window. *)
        t.in_recovery <- false;
        Hashtbl.reset t.retx_done;
        t.window.Cc.Window.cwnd <- t.window.Cc.Window.ssthresh
      end
      (* Partial ACK: try_send below clocks out the next hole(s). *)
    end
    else t.cc.Cc.on_ack t.window ~newly_acked ~rtt ~now;
    if outstanding t > 0 then restart_timer t else cancel_timer t;
    check_completion t
  end
  else if outstanding t > 0 then begin
    (* Duplicate ACK; its SACK info already freed pipe space, so try_send
       below acts as the dupack clock. *)
    t.dupacks <- t.dupacks + 1;
    if (not t.in_recovery) && t.dupacks >= 3 then enter_recovery t ~now
  end;
  handle_early_action t early_action ~now;
  try_send t

(* --- receiver ----------------------------------------------------------- *)

let ack_wnd_field t = W.Adv.to_field (W.advertised t.rcv_space)

let send_ack t (data_pkt : Packet.t) =
  (* RFC 2018: the first SACK block must cover the most recently received
     segment, so the sender learns about fresh arrivals even when there
     are more than three out-of-order intervals. *)
  let sack =
    let newest =
      match data_pkt.Packet.payload with
      | Packet.Data { seq } -> Intervals.containing seq t.ooo
      | Packet.Ack _ | Packet.Probe _ | Packet.Rst _ -> None
    in
    match newest with
    | None -> Intervals.take 3 t.ooo
    | Some block ->
        block
        :: Intervals.take 2 (List.filter (fun b -> b <> block) t.ooo)
  in
  let ack_pkt =
    Packet.ack t.factory ~flow:t.id ~src:(Node.id t.dst) ~dst:(Node.id t.src)
      ~ack:t.rcv_next ~sack ~ecn_echo:data_pkt.Packet.ecn_marked
      ~ts_echo:data_pkt.Packet.sent_at ~window:(ack_wnd_field t)
      ~now:(Sim.now t.sim) ()
  in
  Node.receive t.dst ack_pkt

(* A standalone ACK with no data to echo: window updates, probe
   responses, challenge ACKs. *)
let send_pure_ack t ~ts_echo =
  let ack_pkt =
    Packet.ack t.factory ~flow:t.id ~src:(Node.id t.dst) ~dst:(Node.id t.src)
      ~ack:t.rcv_next ~sack:(Intervals.take 3 t.ooo) ~ecn_echo:false ~ts_echo
      ~window:(ack_wnd_field t) ~now:(Sim.now t.sim) ()
  in
  Node.receive t.dst ack_pkt

(* The receiving application: by default it reads everything instantly,
   so the buffer never fills; [pause_reader] models a stalled consumer
   and is what closes the window. *)
let drain_reader t =
  if (not t.reader_paused) && t.unread_pkts > 0 then begin
    W.release t.rcv_space (Size.bytes (t.unread_pkts * Packet.mss));
    t.unread_pkts <- 0
  end

let pause_reader t = t.reader_paused <- true

let resume_reader t =
  if t.reader_paused then begin
    t.reader_paused <- false;
    let was_zero = W.Adv.is_zero (W.advertised t.rcv_space) in
    drain_reader t;
    (* Reopening after a zero window must be announced: the sender has
       nothing in flight that would elicit an ACK. *)
    if
      was_zero
      && (not (W.Adv.is_zero (W.advertised t.rcv_space)))
      && not t.stopped
    then send_pure_ack t ~ts_echo:no_ts_echo
  end

let on_data t pkt seq =
  let in_order = seq = t.rcv_next in
  let dup =
    (not in_order)
    && (seq < t.rcv_next || Intervals.containing seq t.ooo <> None)
  in
  (* Checksum-equivalent admission: a segment only occupies buffer (and
     advances the connection) if the receive window can hold it. *)
  let rejected = (not dup) && not (W.admissible t.rcv_space seg_bytes) in
  if rejected then t.rcv_wnd_drops <- t.rcv_wnd_drops + 1
  else if in_order then begin
    W.occupy t.rcv_space seg_bytes;
    t.rcv_next <- t.rcv_next + 1;
    let next, ooo = Intervals.consume t.rcv_next t.ooo in
    (* segments merged from ooo were charged at their arrival *)
    t.unread_pkts <- t.unread_pkts + 1 + (next - t.rcv_next);
    t.rcv_next <- next;
    t.ooo <- ooo;
    drain_reader t
  end
  else if seq > t.rcv_next then begin
    W.occupy t.rcv_space seg_bytes;
    t.ooo <- Intervals.insert seq t.ooo
  end;
  (* Delayed ACKs: hold back every other in-order ACK behind a 100 ms
     timer; anything out of order, rejected, or CE-marked flushes
     immediately (a rejected segment's dupack carries the closed
     window, which is what throttles the sender). *)
  if
    (not t.delayed_acks)
    || (not in_order) || rejected
    || pkt.Packet.ecn_marked || t.ooo <> []
  then begin
    t.pending_acks <- 0;
    t.delack_gen <- t.delack_gen + 1;
    send_ack t pkt
  end
  else begin
    t.pending_acks <- t.pending_acks + 1;
    if t.pending_acks >= 2 then begin
      t.pending_acks <- 0;
      t.delack_gen <- t.delack_gen + 1;
      send_ack t pkt
    end
    else begin
      t.delack_gen <- t.delack_gen + 1;
      let gen = t.delack_gen in
      Sim.after t.sim (Units.Time.s 0.1) (fun () ->
          if gen = t.delack_gen && t.pending_acks > 0 then begin
            t.pending_acks <- 0;
            send_ack t pkt
          end)
    end
  end

(* A zero-window probe never carries acceptable data; it exists to
   elicit a fresh advertisement. Answer immediately with a pure ACK. *)
let on_probe t (pkt : Packet.t) =
  t.pending_acks <- 0;
  t.delack_gen <- t.delack_gen + 1;
  send_pure_ack t ~ts_echo:pkt.Packet.sent_at

(* --- RFC 5961 RST validation -------------------------------------------- *)

let send_challenge t =
  let now = Sim.now t.sim in
  if now -. t.last_challenge >= Units.Time.to_s challenge_min_gap then begin
    t.last_challenge <- now;
    t.challenge_acks <- t.challenge_acks + 1;
    send_pure_ack t ~ts_echo:no_ts_echo
  end
  else t.challenges_suppressed <- t.challenges_suppressed + 1

(* A challenge "ACK" from the data-sending endpoint: same rate limiter,
   but the packet originates at the sender side. The peer ignores its
   content — what matters is that a blind attacker cannot tear the
   connection down without echoing it. *)
let send_challenge_from_sender t =
  let now = Sim.now t.sim in
  if now -. t.last_challenge >= Units.Time.to_s challenge_min_gap then begin
    t.last_challenge <- now;
    t.challenge_acks <- t.challenge_acks + 1;
    let pkt =
      Packet.ack t.factory ~flow:t.id ~src:(Node.id t.src)
        ~dst:(Node.id t.dst) ~ack:t.rcv_next ~sack:[] ~ecn_echo:false
        ~ts_echo:no_ts_echo ~window:(ack_wnd_field t) ~now ()
    in
    Node.receive t.src pkt
  end
  else t.challenges_suppressed <- t.challenges_suppressed + 1

(* RST arriving at the data receiver. Exact match on RCV.NXT resets;
   anything else inside the receive window earns a challenge ACK (the
   legitimate peer would answer it with an exact-sequence RST); anything
   outside the window is a blind forgery and is dropped. *)
let on_rst_at_receiver t seq =
  t.rsts_received <- t.rsts_received + 1;
  if not t.rst_validation then begin
    t.rsts_accepted <- t.rsts_accepted + 1;
    abort_connection t
  end
  else if seq = t.rcv_next then begin
    t.rsts_accepted <- t.rsts_accepted + 1;
    abort_connection t
  end
  else begin
    let limit_pkts =
      max 1 (Size.to_bytes (W.available t.rcv_space) / Packet.mss)
    in
    if seq > t.rcv_next && seq <= t.rcv_next + limit_pkts then send_challenge t
    else t.rsts_ignored <- t.rsts_ignored + 1
  end

(* RST arriving at the data sender: its "receive" space is the ACK
   stream, so exact match is SND.UNA and the window is the data in
   flight. *)
let on_rst_at_sender t seq =
  t.rsts_received <- t.rsts_received + 1;
  if not t.rst_validation then begin
    t.rsts_accepted <- t.rsts_accepted + 1;
    abort_connection t
  end
  else if seq = t.snd_una then begin
    t.rsts_accepted <- t.rsts_accepted + 1;
    abort_connection t
  end
  else if seq > t.snd_una && seq <= t.snd_next then
    send_challenge_from_sender t
  else t.rsts_ignored <- t.rsts_ignored + 1

(* --- construction ------------------------------------------------------- *)

let default_rcv_buffer = Size.bytes (W.field_limit lsl W.max_shift)

let create topo ~src ~dst ~cc ?(ecn = false) ?total_pkts ?start
    ?(initial_cwnd = 2.0) ?(max_cwnd = 1_000_000.0) ?(delay_signal = `Rtt)
    ?(delayed_acks = false) ?rcv_buffer ?wscale ?(persist = true)
    ?(rst_validation = true) ?(on_complete = fun _ -> ()) () =
  let sim = Topology.sim topo in
  let flow_id = Sim.fresh_id sim in
  let rcv_capacity =
    match rcv_buffer with Some b -> b | None -> default_rcv_buffer
  in
  (* SYN-time negotiation: the receiver requires the smallest shift that
     makes its buffer advertisable; the sender's offer (if any) caps it.
     [~wscale:0] models a peer without the option: the 64 KB ceiling. *)
  let wnd_scale =
    let required = W.Scale.for_buffer rcv_capacity in
    match wscale with
    | None -> required
    | Some s -> W.Scale.negotiate ~offered:(W.Scale.of_int s) ~required
  in
  let rcv_space = W.create ~scale:wnd_scale ~capacity:rcv_capacity () in
  let t =
    {
      sim;
      id = flow_id;
      src;
      dst;
      cc;
      ecn;
      delay_signal;
      factory = Packet.factory ();
      rng = Sim_engine.Rng.split (Sim.rng sim);
      window =
        { Cc.Window.cwnd = initial_cwnd; ssthresh = 1e9; in_slow_start = true };
      max_cwnd;
      total = total_pkts;
      on_complete;
      rto = Rto.create ();
      persist_enabled = persist;
      rst_validation;
      wnd_scale;
      snd_una = 0;
      snd_next = 0;
      dupacks = 0;
      in_recovery = false;
      recovery_point = 0;
      pipe = 0;
      max_sent = 0;
      max_sacked = -1;
      retx_scan = 0;
      sacked = Hashtbl.create 64;
      retx_done = Hashtbl.create 64;
      timer_gen = 0;
      (* the peer's initial advertisement, learned from the SYN *)
      peer_adv = W.advertised rcv_space;
      in_persist = false;
      persist_gen = 0;
      persist_backoff = 0;
      last_reduction = neg_infinity;
      started = false;
      stopped = false;
      completed = false;
      aborted = false;
      delayed_acks;
      rcv_space;
      reader_paused = false;
      unread_pkts = 0;
      rcv_next = 0;
      ooo = [];
      pending_acks = 0;
      delack_gen = 0;
      last_challenge = neg_infinity;
      acked_pkts = 0;
      window_start = Sim.now sim;
      retransmissions = 0;
      timeouts = 0;
      fast_recoveries = 0;
      early_responses = 0;
      progress_marks = 0;
      max_outstanding_pkts = 0;
      persist_probes = 0;
      zero_window_episodes = 0;
      rcv_wnd_drops = 0;
      rsts_received = 0;
      rsts_accepted = 0;
      rsts_ignored = 0;
      challenge_acks = 0;
      challenges_suppressed = 0;
      corrupt_rejected = 0;
      rtt_trace = None;
      loss_trace = None;
    }
  in
  (* Both agents discard corrupted segments at a checksum-style validity
     gate before any field is interpreted — flipped header bits must not
     be able to ack, reset, or reorder anything. *)
  Node.attach_agent src ~flow:flow_id (fun pkt ->
      if pkt.Packet.corrupted then
        t.corrupt_rejected <- t.corrupt_rejected + 1
      else
        match pkt.Packet.payload with
        | Packet.Ack { ack; sack; ecn_echo; ts_echo; window = wnd_field } ->
            if not t.stopped then
              on_ack t ~ack ~sack ~ecn_echo ~ts_echo ~wnd_field
                ~ack_sent_at:pkt.Packet.sent_at
        | Packet.Rst { seq } -> if not t.stopped then on_rst_at_sender t seq
        | Packet.Data _ | Packet.Probe _ -> ());
  Node.attach_agent dst ~flow:flow_id (fun pkt ->
      if pkt.Packet.corrupted then
        t.corrupt_rejected <- t.corrupt_rejected + 1
      else
        match pkt.Packet.payload with
        | Packet.Data { seq } -> on_data t pkt seq
        | Packet.Probe _ -> if not t.stopped then on_probe t pkt
        | Packet.Rst { seq } -> if not t.stopped then on_rst_at_receiver t seq
        | Packet.Ack _ -> ());
  let start_time =
    match start with Some s -> s | None -> Units.Time.s (Sim.now sim)
  in
  Sim.at sim start_time (fun () ->
      t.started <- true;
      try_send t);
  t

let stop t =
  t.stopped <- true;
  cancel_timer t;
  exit_persist t;
  Node.detach_agent t.src ~flow:t.id;
  Node.detach_agent t.dst ~flow:t.id

(* Active teardown: send an exact-sequence RST to the peer, then abort
   locally. (Both endpoints belong to this [t], so the local abort
   already detaches the peer agent; the RST still crosses the network
   and shows up in link and tracer accounting.) *)
let abort t =
  if not t.stopped then begin
    let pkt =
      Packet.rst t.factory ~flow:t.id ~src:(Node.id t.src)
        ~dst:(Node.id t.dst) ~seq:t.snd_next ~now:(Sim.now t.sim) ()
    in
    Node.receive t.src pkt;
    abort_connection t
  end

let rto_value t = Rto.value t.rto

let debug_state t =
  Printf.sprintf
    "una=%d next=%d pipe=%d cwnd=%.2f ssthresh=%.2f dupacks=%d rec=%b rp=%d sacked=%d stopped=%b persist=%b peer_adv=%d"
    t.snd_una t.snd_next t.pipe t.window.Cc.Window.cwnd
    t.window.Cc.Window.ssthresh t.dupacks t.in_recovery t.recovery_point
    (Hashtbl.length t.sacked) t.stopped t.in_persist
    (W.Adv.to_field t.peer_adv)

let audit_check t =
  let finite = Float.is_finite in
  let w = t.window in
  let bad what v =
    Some (Printf.sprintf "%s = %g out of range (%s)" what v (debug_state t))
  in
  if (not (finite w.Cc.Window.cwnd)) || w.Cc.Window.cwnd < 1.0 then
    bad "cwnd" w.Cc.Window.cwnd
  else if (not (finite w.Cc.Window.ssthresh)) || w.Cc.Window.ssthresh <= 0.0
  then bad "ssthresh" w.Cc.Window.ssthresh
  else if t.pipe < 0 then bad "pipe" (float_of_int t.pipe)
  else if t.snd_next < t.snd_una then
    Some
      (Printf.sprintf "snd_next %d behind snd_una %d (%s)" t.snd_next
         t.snd_una (debug_state t))
  else if t.in_persist && outstanding t > 0 then
    Some
      (Printf.sprintf "persist mode with %d packets outstanding (%s)"
         (outstanding t) (debug_state t))
  else
    match Option.map Units.Time.to_s (Rto.srtt t.rto) with
    | Some s when (not (finite s)) || s <= 0.0 -> bad "srtt" s
    | _ -> None

(* Liveness view for the audit stall watchdog. [None] marks states where
   no progress is expected or a recovery timer is already armed:
   - not yet started, stopped, completed or aborted;
   - data outstanding (the RTO will fire, with its own capped backoff);
   - persist mode (the probe timer will fire);
   - a bounded transfer with nothing left to send.
   Otherwise the flow should be actively transmitting, and the returned
   counter must keep moving: a zero-window deadlock (persist disabled or
   broken) pins it, and the watchdog flags the flow. *)
let liveness t =
  if (not t.started) || t.stopped || t.completed then None
  else if outstanding t > 0 then None
  else if t.in_persist then None
  else if not (has_data t) then None
  else Some t.progress_marks
