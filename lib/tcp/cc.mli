(** Pluggable congestion control.

    The sender ({!Flow}) owns loss detection, retransmission and the
    NewReno/SACK recovery machinery, which are identical across the
    schemes the paper compares. A [Cc.t] customises only the control law:
    how the window grows on ACKs, and whether/when to perform a
    {e proactive early response} (the subject of the paper).

    All window arithmetic is in packets; [Window.t] is the shared mutable
    state the sender exposes to the controller. *)

module Window : sig
  type t = {
    mutable cwnd : float;  (** congestion window, packets, >= 1 *)
    mutable ssthresh : float;  (** slow-start threshold, packets *)
    mutable in_slow_start : bool;
  }
end

type early_action =
  | No_response
  | Reduce of float
      (** [Reduce f]: multiplicative early decrease
          [cwnd <- max 1 ((1 - f) * cwnd)]; also leaves slow start. *)

type engine = ..
(** The decision engine behind a controller, surfaced so a concrete
    module ({!Pert_cc}, {!Pert_pi_cc}, ...) can recover its own engine
    from the closure record for introspection without any global registry
    — module-toplevel registries are a replay/determinism hazard (lint
    rule D3). Each implementation extends this type with its own
    constructor and matches on it in its [engine_of]. *)

type engine += No_engine  (** for controllers with nothing to expose *)

type t = {
  name : string;
  on_ack :
    Window.t -> newly_acked:int -> rtt:Units.Time.t option -> now:float -> unit;
      (** Window increase on a cumulative ACK for [newly_acked] packets
          outside loss recovery. [rtt] is this ACK's sample if one was
          taken. Default AIMD behaviour lives in {!val-reno_increase}. *)
  early : Window.t -> rtt:Units.Time.t option -> now:float -> early_action;
      (** Early-response hook, consulted on every ACK (also inside
          recovery; the sender ignores [Reduce] while recovering). The
          [rtt] argument is the sender's configured {e delay signal}: the
          RTT sample by default, or the forward one-way delay when the
          flow uses [`Owd] (see {!Flow.create}) — the paper's Section 7
          variant that ignores reverse-path congestion. *)
  on_loss : now:float -> unit;
      (** Notification that a loss (or ECN) response was applied, so the
          controller can synchronise its own once-per-RTT logic. *)
  ecn_beta : float;
      (** Multiplicative decrease factor applied on an ECN echo
          (standard: 0.5). *)
  engine : engine;  (** see {!type-engine} *)
}

val reno_increase :
  Window.t -> newly_acked:int -> rtt:Units.Time.t option -> now:float -> unit
(** Slow start: [cwnd += newly_acked]; congestion avoidance:
    [cwnd += newly_acked /. cwnd] (one packet per RTT). *)

val newreno : unit -> t
(** Plain loss-based AIMD — the "SACK" endpoint of the paper's baselines
    (the SACK machinery itself lives in {!Flow}). *)
