type t = {
  min_rto : float;
  max_rto : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable rto : float;
  mutable backoff_mult : float;
  mutable has_sample : bool;
}

let create ?(min_rto = Units.Time.s 0.2) ?(max_rto = Units.Time.s 60.0)
    ?(initial = Units.Time.s 1.0) () =
  let min_rto = Units.Time.to_s min_rto in
  let max_rto = Units.Time.to_s max_rto in
  let initial = Units.Time.to_s initial in
  {
    min_rto;
    max_rto;
    srtt = 0.0;
    rttvar = 0.0;
    rto = initial;
    backoff_mult = 1.0;
    has_sample = false;
  }

let clamp t x = Float.min t.max_rto (Float.max t.min_rto x)

let observe t sample =
  let sample = Units.Time.to_s sample in
  if not (Float.is_finite sample) then
    invalid_arg "Rto.observe: non-finite sample";
  if sample <= 0.0 then invalid_arg "Rto.observe: non-positive sample";
  if not t.has_sample then begin
    t.srtt <- sample;
    t.rttvar <- sample /. 2.0;
    t.has_sample <- true
  end
  else begin
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. sample));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. sample)
  end;
  t.backoff_mult <- 1.0;
  t.rto <- clamp t (t.srtt +. (4.0 *. t.rttvar))

let value t = Units.Time.s (Float.min t.max_rto (t.rto *. t.backoff_mult))
let backoff t = t.backoff_mult <- Float.min 64.0 (t.backoff_mult *. 2.0)
let srtt t = if t.has_sample then Some (Units.Time.s t.srtt) else None
