(** PERT/PI congestion control (paper Section 6): Reno-style increase plus
    the end-host PI controller of {!Pert_core.Pert_pi} driving the early
    response probability. *)

val create :
  rng:Sim_engine.Rng.t ->
  gains:Pert_core.Pert_pi.gains ->
  target_delay:Units.Time.t ->
  sample_interval:Units.Time.t ->
  ?alpha:float ->
  ?decrease_factor:float ->
  unit ->
  Cc.t

(* Kept with no current caller (pertscan S3): the {!Cc.engine}
   introspection protocol every scheme implements in place of a
   global registry (a D3 hazard). *)
val engine_of : Cc.t -> Pert_core.Pert_pi.t [@@lint.allow "S3"]
(** The PI engine behind a controller returned by {!create}; raises
    [Invalid_argument] for other controllers. *)
