module Pert_avq = Pert_core.Pert_avq
module Rng = Sim_engine.Rng

(* Link the opaque Cc.t back to its decision engine for introspection
   (no global registry: that would be module-toplevel mutable state). *)
type Cc.engine += Engine of Pert_avq.t

let create ~rng ?(params = Pert_avq.default_params) ?srtt_alpha
    ?decrease_factor () =
  let engine = Pert_avq.create ?srtt_alpha ?decrease_factor ~params () in
  let early _w ~rtt ~now =
    match rtt with
    | None -> Cc.No_response
    | Some sample -> (
        match Pert_avq.on_ack engine ~now ~rtt:sample ~u:(Rng.float rng 1.0) with
        | Pert_avq.Hold -> Cc.No_response
        | Pert_avq.Early_response ->
            Cc.Reduce (Pert_avq.decrease_factor engine))
  in
  {
    Cc.name = "pert-avq";
    on_ack = Cc.reno_increase;
    early;
    on_loss = (fun ~now -> Pert_avq.note_loss engine ~now);
    ecn_beta = 0.5;
    engine = Engine engine;
  }

let engine_of cc =
  match cc.Cc.engine with
  | Engine engine -> engine
  | _ -> invalid_arg "Pert_avq_cc.engine_of: not a PERT/AVQ controller"
