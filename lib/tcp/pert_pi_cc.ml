module Pert_pi = Pert_core.Pert_pi
module Rng = Sim_engine.Rng

let registry : (string, Pert_pi.t) Hashtbl.t = Hashtbl.create 8
let next_instance = ref 0

let create ~rng ~gains ~target_delay ~sample_interval ?alpha ?decrease_factor
    () =
  let engine =
    Pert_pi.create ?alpha ?decrease_factor ~gains ~target_delay
      ~sample_interval ()
  in
  let early _w ~rtt ~now =
    match rtt with
    | None -> Cc.No_response
    | Some sample -> (
        match Pert_pi.on_ack engine ~now ~rtt:sample ~u:(Rng.float rng 1.0) with
        | Pert_pi.Hold -> Cc.No_response
        | Pert_pi.Early_response ->
            Cc.Reduce (Pert_pi.decrease_factor engine))
  in
  let name = Printf.sprintf "pert-pi#%d" !next_instance in
  incr next_instance;
  Hashtbl.replace registry name engine;
  {
    Cc.name;
    on_ack = Cc.reno_increase;
    early;
    on_loss = (fun ~now -> Pert_pi.note_loss engine ~now);
    ecn_beta = 0.5;
  }

let engine_of cc =
  match Hashtbl.find_opt registry cc.Cc.name with
  | Some engine -> engine
  | None -> invalid_arg "Pert_pi_cc.engine_of: not a PERT/PI controller"
