module Pert_pi = Pert_core.Pert_pi
module Rng = Sim_engine.Rng

(* Link the opaque Cc.t back to its decision engine for introspection
   (no global registry: that would be module-toplevel mutable state). *)
type Cc.engine += Engine of Pert_pi.t

let create ~rng ~gains ~target_delay ~sample_interval ?alpha ?decrease_factor
    () =
  let engine =
    Pert_pi.create ?alpha ?decrease_factor ~gains ~target_delay
      ~sample_interval ()
  in
  let early _w ~rtt ~now =
    match rtt with
    | None -> Cc.No_response
    | Some sample -> (
        match Pert_pi.on_ack engine ~now ~rtt:sample ~u:(Rng.float rng 1.0) with
        | Pert_pi.Hold -> Cc.No_response
        | Pert_pi.Early_response ->
            Cc.Reduce (Pert_pi.decrease_factor engine))
  in
  {
    Cc.name = "pert-pi";
    on_ack = Cc.reno_increase;
    early;
    on_loss = (fun ~now -> Pert_pi.note_loss engine ~now);
    ecn_beta = 0.5;
    engine = Engine engine;
  }

let engine_of cc =
  match cc.Cc.engine with
  | Engine engine -> engine
  | _ -> invalid_arg "Pert_pi_cc.engine_of: not a PERT/PI controller"
