type state = {
  alpha : float;
  beta : float;
  gamma : float;
  mutable base_rtt : float;
  mutable epoch_start : float;
  mutable epoch_sum : float;
  mutable epoch_samples : int;
  mutable grow_epoch : bool;  (** slow start grows every other RTT *)
}

let adjust st (w : Cc.Window.t) ~now =
  if st.epoch_samples > 0 then begin
    let rtt_avg = st.epoch_sum /. float_of_int st.epoch_samples in
    let diff = w.Cc.Window.cwnd *. (1.0 -. (st.base_rtt /. rtt_avg)) in
    if w.Cc.Window.in_slow_start then begin
      if diff > st.gamma then begin
        (* Leave slow start; shed the excess backlog. *)
        w.Cc.Window.in_slow_start <- false;
        w.Cc.Window.cwnd <- Float.max 2.0 (w.Cc.Window.cwnd -. diff +. st.alpha)
      end
      else st.grow_epoch <- not st.grow_epoch
    end
    else if diff < st.alpha then w.Cc.Window.cwnd <- w.Cc.Window.cwnd +. 1.0
    else if diff > st.beta then
      w.Cc.Window.cwnd <- Float.max 2.0 (w.Cc.Window.cwnd -. 1.0)
  end;
  st.epoch_start <- now;
  st.epoch_sum <- 0.0;
  st.epoch_samples <- 0

let create ?(alpha = 1.0) ?(beta = 3.0) ?(gamma = 1.0) () =
  let st =
    {
      alpha;
      beta;
      gamma;
      base_rtt = infinity;
      epoch_start = neg_infinity;
      epoch_sum = 0.0;
      epoch_samples = 0;
      grow_epoch = true;
    }
  in
  let on_ack (w : Cc.Window.t) ~newly_acked ~rtt ~now =
    (match rtt with
    | Some sample ->
        let sample = Units.Time.to_s sample in
        if sample < st.base_rtt then st.base_rtt <- sample;
        st.epoch_sum <- st.epoch_sum +. sample;
        st.epoch_samples <- st.epoch_samples + 1
    | None -> ());
    if w.Cc.Window.in_slow_start && st.grow_epoch then
      w.Cc.Window.cwnd <- w.Cc.Window.cwnd +. float_of_int newly_acked;
    let rtt_estimate =
      if st.epoch_samples > 0 then st.epoch_sum /. float_of_int st.epoch_samples
      else st.base_rtt
    in
    if
      st.base_rtt < infinity
      && now -. st.epoch_start >= rtt_estimate
    then adjust st w ~now
  in
  {
    Cc.name = "vegas";
    on_ack;
    early = (fun _ ~rtt:_ ~now:_ -> Cc.No_response);
    on_loss = (fun ~now:_ -> ());
    ecn_beta = 0.5;
    engine = Cc.No_engine;
  }
