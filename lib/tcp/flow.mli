(** A TCP-like transfer between two nodes: window-based, ACK-clocked,
    packet-granularity sequencing, immediate ACKs, SACK blocks, NewReno
    fast retransmit/recovery, RTO with backoff, ECN response, and a
    pluggable congestion controller ({!Cc}).

    One [Flow.t] owns both endpoints: the sender agent attached at [src]
    and the receiver agent attached at [dst]. *)

type t

type delay_signal =
  [ `Rtt  (** feed the congestion controller round-trip samples (default) *)
  | `Owd
    (** feed it the forward one-way delay, so reverse-path queueing
        cannot trigger early responses (paper Section 7); one-way delays
        are computed from the receiver's ACK timestamps *) ]

val create :
  Netsim.Topology.t ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  cc:Cc.t ->
  ?ecn:bool ->
  ?total_pkts:int ->
  ?start:Units.Time.t ->
  ?initial_cwnd:float ->
  ?max_cwnd:float ->
  ?delay_signal:delay_signal ->
  ?delayed_acks:bool ->
  ?on_complete:(t -> unit) ->
  unit ->
  t
(** [total_pkts] bounds the transfer (default unbounded, i.e. a long-lived
    FTP source); [start] is the absolute start time (default: now);
    [initial_cwnd] defaults to 2 packets; [ecn] (default false) makes data
    packets ECN-capable and the sender respond to echoes. [on_complete]
    fires once when all [total_pkts] are cumulatively acknowledged. *)

val id : t -> int
val cc_name : t -> string
val cwnd : t -> float
val ssthresh : t -> float
val snd_una : t -> int
val snd_next : t -> int
val in_recovery : t -> bool
val completed : t -> bool

val acked_pkts : t -> int
(** Cumulatively acknowledged packets since the last {!reset_stats} —
    the goodput numerator. *)

val goodput_bps : t -> now:float -> Units.Rate.t
(** Goodput (payload bits/s) since the last {!reset_stats}. *)

val reset_stats : t -> unit

val retransmissions : t -> int
val timeouts : t -> int
val loss_events : t -> int
(** Fast-recovery entries plus timeouts (flow-level congestion events). *)

val early_responses : t -> int
(** Early (proactive) window reductions applied so far. *)

val enable_rtt_trace : t -> unit
val rtt_trace : t -> float array * float array * float array
(** [(times, samples, cwnds)] of every per-ACK RTT measurement (and the
    congestion window at that instant) since {!enable_rtt_trace}. *)

(** [delayed_acks] (default [false], as in the paper's simulations) makes
    the receiver acknowledge every second in-order segment, with a 100 ms
    standalone-ACK timer; out-of-order or CE-marked segments are still
    acknowledged immediately, as RFC 3168/5681 require. *)

val enable_loss_trace : t -> unit
val loss_times : t -> float array
(** Times at which {e this flow} detected a loss (fast retransmit or
    timeout) since {!enable_loss_trace}. *)

val stop : t -> unit
(** Halt transmission, cancel the pending RTO timer, and detach agents
    (used for departing flows). A stopped flow never fires another
    timeout. *)

val rto_value : t -> Units.Time.t
(** Current retransmission timeout, including any exponential backoff
    (capped at the {!Rto} maximum, 60 s by default). *)

val audit_check : t -> string option
(** Invariant check for {!Sim_engine.Audit}: cwnd finite and >= 1,
    ssthresh finite and positive, pipe non-negative, send sequence
    ordering intact, smoothed RTT finite. Returns a diagnostic including
    {!debug_state} on violation. *)

(**/**)

val debug_state : t -> string
(** Internal counters, for tests and debugging. *)
