(** A TCP-like transfer between two nodes: window-based, ACK-clocked,
    packet-granularity sequencing, immediate ACKs, SACK blocks, NewReno
    fast retransmit/recovery, RTO with backoff, ECN response, and a
    pluggable congestion controller ({!Cc}).

    Hardened against hostile networks: receive-window accounting with
    scaled advertisements (RFC 1323), zero-window persist probing
    (RFC 793/6429) so a closed window can never deadlock a flow, RST
    validation (RFC 5961) so blind forgeries cannot tear a connection
    down, and a checksum-style validity gate that discards corrupted
    segments before any field is interpreted.

    One [Flow.t] owns both endpoints: the sender agent attached at [src]
    and the receiver agent attached at [dst]. *)

type t

type delay_signal =
  [ `Rtt  (** feed the congestion controller round-trip samples (default) *)
  | `Owd
    (** feed it the forward one-way delay, so reverse-path queueing
        cannot trigger early responses (paper Section 7); one-way delays
        are computed from the receiver's ACK timestamps *) ]

val create :
  Netsim.Topology.t ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  cc:Cc.t ->
  ?ecn:bool ->
  ?total_pkts:int ->
  ?start:Units.Time.t ->
  ?initial_cwnd:float ->
  ?max_cwnd:float ->
  ?delay_signal:delay_signal ->
  ?delayed_acks:bool ->
  ?rcv_buffer:Units.Size.t ->
  ?wscale:int ->
  ?persist:bool ->
  ?rst_validation:bool ->
  ?on_complete:(t -> unit) ->
  unit ->
  t
(** [total_pkts] bounds the transfer (default unbounded, i.e. a long-lived
    FTP source); [start] is the absolute start time (default: now);
    [initial_cwnd] defaults to 2 packets; [ecn] (default false) makes data
    packets ECN-capable and the sender respond to echoes. [on_complete]
    fires once when all [total_pkts] are cumulatively acknowledged.

    [rcv_buffer] is the receive-buffer capacity (default ~1 GiB, large
    enough never to limit the paper's experiments). [wscale] is the peer
    window-scale offer at SYN time: [None] (default) negotiates whatever
    shift the buffer requires; [Some 0] models a peer without the option,
    capping the usable window at 64 KB regardless of buffer size.
    [persist] (default true) enables zero-window probing; disable it only
    to demonstrate the deadlock it prevents. [rst_validation] (default
    true) selects RFC 5961 handling; disabled, any RST with a plausible
    sequence kills the connection. *)

val id : t -> int
val cwnd : t -> float
val ssthresh : t -> float
val snd_una : t -> int
val snd_next : t -> int
val completed : t -> bool

val aborted : t -> bool
(** The connection was torn down by a (validated) RST. *)

val acked_pkts : t -> int
(** Cumulatively acknowledged packets since the last {!reset_stats} —
    the goodput numerator. *)

val goodput_bps : t -> now:float -> Units.Rate.t
(** Goodput (payload bits/s) since the last {!reset_stats}. *)

val reset_stats : t -> unit

val retransmissions : t -> int
val timeouts : t -> int
val loss_events : t -> int
(** Fast-recovery entries plus timeouts (flow-level congestion events). *)

val fast_recoveries : t -> int
(** Fast-recovery entries alone — inflated by a forged dupack storm. *)

val early_responses : t -> int
(** Early (proactive) window reductions applied so far. *)

(** {2 Window scaling and flow control} *)

val wscale : t -> int
(** The negotiated window-scale shift (0-14). *)

val advertised_bytes : t -> Units.Size.t
(** What this endpoint's receiver currently advertises (after scaling
    round-down), i.e. what the peer will believe. *)

val max_outstanding_pkts : t -> int
(** High-water mark of packets in flight — shows whether the scaled
    window actually lifted the 64 KB (65-packet) cap. *)

val pause_reader : t -> unit
(** Stall the receiving application: arriving in-order data accumulates
    in the receive buffer and the advertised window shrinks toward
    zero. *)

val resume_reader : t -> unit
(** Drain the receive buffer and, if the window had closed, send the
    window-update ACK that reopens it. *)

val in_persist : t -> bool
val persist_probes : t -> int
val zero_window_episodes : t -> int

(** {2 RST validation and the validity gate} *)

val abort : t -> unit
(** Active teardown: emit an exact-sequence RST to the peer and abort
    locally. *)

val rsts_received : t -> int
val rsts_accepted : t -> int
val rsts_ignored : t -> int
(** Out-of-window blind RSTs silently dropped. *)

val challenge_acks : t -> int
(** Challenge ACKs sent for in-window (but inexact) RSTs, rate-limited. *)

val corrupt_rejected : t -> int
(** Segments discarded at the validity gate ({!Netsim.Packet.t.corrupted})
    without interpreting any field. *)

val enable_rtt_trace : t -> unit
val rtt_trace : t -> float array * float array * float array
(** [(times, samples, cwnds)] of every per-ACK RTT measurement (and the
    congestion window at that instant) since {!enable_rtt_trace}. *)

(** [delayed_acks] (default [false], as in the paper's simulations) makes
    the receiver acknowledge every second in-order segment, with a 100 ms
    standalone-ACK timer; out-of-order or CE-marked segments are still
    acknowledged immediately, as RFC 3168/5681 require. *)

val enable_loss_trace : t -> unit
val loss_times : t -> float array
(** Times at which {e this flow} detected a loss (fast retransmit or
    timeout) since {!enable_loss_trace}. *)

val stop : t -> unit
(** Halt transmission, cancel the pending RTO and persist timers, and
    detach agents (used for departing flows). A stopped flow never fires
    another timeout or probe. *)

val rto_value : t -> Units.Time.t
(** Current retransmission timeout, including any exponential backoff
    (capped at the {!Rto} maximum, 60 s by default). *)

val audit_check : t -> string option
(** Invariant check for {!Sim_engine.Audit}: cwnd finite and >= 1,
    ssthresh finite and positive, pipe non-negative, send sequence
    ordering intact, persist mode mutually exclusive with outstanding
    data, smoothed RTT finite. Returns a diagnostic including
    {!debug_state} on violation. *)

val liveness : t -> int option
(** Progress counter for {!Sim_engine.Audit.add_stall_check}. [None]
    while no progress is expected (not started, finished, data
    outstanding with the RTO armed, or probing in persist mode);
    [Some marks] when the flow should be actively moving — a pinned
    counter is a stalled flow. *)

