module Pert_rem = Pert_core.Pert_rem
module Rng = Sim_engine.Rng

let registry : (string, Pert_rem.t) Hashtbl.t = Hashtbl.create 8
let next_instance = ref 0

let create ~rng ?(params = Pert_rem.default_params) ?srtt_alpha
    ?decrease_factor () =
  let engine = Pert_rem.create ?srtt_alpha ?decrease_factor ~params () in
  let early _w ~rtt ~now =
    match rtt with
    | None -> Cc.No_response
    | Some sample -> (
        match Pert_rem.on_ack engine ~now ~rtt:sample ~u:(Rng.float rng 1.0) with
        | Pert_rem.Hold -> Cc.No_response
        | Pert_rem.Early_response ->
            Cc.Reduce (Pert_rem.decrease_factor engine))
  in
  let name = Printf.sprintf "pert-rem#%d" !next_instance in
  incr next_instance;
  Hashtbl.replace registry name engine;
  {
    Cc.name;
    on_ack = Cc.reno_increase;
    early;
    on_loss = (fun ~now -> Pert_rem.note_loss engine ~now);
    ecn_beta = 0.5;
  }

let engine_of cc =
  match Hashtbl.find_opt registry cc.Cc.name with
  | Some engine -> engine
  | None -> invalid_arg "Pert_rem_cc.engine_of: not a PERT/REM controller"
