(** REM — Random Exponential Marking (Athuraliya, Low, Li & Yin 2001),
    one of the AQM schemes the paper lists as an emulation target.

    A "price" integrates the mismatch between demand and capacity:

    [price(k+1) = max 0 (price(k)
                         + gamma * (alpha * (backlog - b_ref)
                                    + input_rate - capacity))]

    updated every [sample_interval]; arrivals are marked (or dropped) with
    probability [1 - phi ** (-. price)]. *)

type params = {
  gamma : float;  (** price gain (per packet), e.g. 0.001 *)
  alpha : float;  (** backlog weight, e.g. 0.1 *)
  b_ref : float;  (** target backlog, packets *)
  phi : float;  (** marking base, > 1, e.g. 1.001 *)
  sample_interval : Units.Time.t;
  ecn : bool;
}

val default_params : capacity_pps:float -> params
(** [gamma = 0.001], [alpha = 0.1], [b_ref = 20], [phi = 1.001],
    [sample_interval = 10 ms]; independent of capacity except for the
    documentation of intent. *)

val create :
  rng:Sim_engine.Rng.t -> params:params -> capacity_pps:float ->
  limit_pkts:int -> Queue_disc.t

val price : Queue_disc.t -> float
(** Current price of a REM discipline created by {!create}; raises
    [Invalid_argument] otherwise. *)

val mark_probability : Queue_disc.t -> Units.Prob.t
