(** Topology builder: creates nodes, wires links to receiving nodes, and
    computes static shortest-path (hop-count) routes with BFS. *)

type t

val create : Sim_engine.Sim.t -> t
val sim : t -> Sim_engine.Sim.t

val add_node : t -> Node.t

val add_link :
  ?jitter:Units.Time.t -> t -> src:Node.t -> dst:Node.t ->
  bandwidth:Units.Rate.t -> delay:Units.Time.t -> disc:Queue_disc.t -> Link.t
(** Unidirectional [src -> dst] link; its delivery callback is wired to
    [dst]'s {!Node.receive}. [jitter] as in {!Link.create}. *)

val add_duplex :
  t -> a:Node.t -> b:Node.t -> bandwidth:Units.Rate.t -> delay:Units.Time.t ->
  disc_ab:Queue_disc.t -> disc_ba:Queue_disc.t -> Link.t * Link.t
(** Two unidirectional links with separate queue disciplines. *)

val compute_routes : t -> unit
(** (Re)compute every node's next-hop table. Call after the last
    [add_link] and before injecting traffic. Ties are broken by link
    creation order, deterministically. *)

val node_count : t -> int
val links : t -> Link.t list

val inject : t -> Node.t -> Packet.t -> unit
(** Hand a locally generated packet to a node for routing/delivery. *)
