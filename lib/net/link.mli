(** Unidirectional link: a queue discipline feeding a transmitter with a
    given bandwidth, followed by a fixed propagation delay.

    The link also keeps the measurement state the experiments need:
    arrival/drop/mark counters, a time-weighted queue-length average, bytes
    transmitted (for utilisation), and an optional trace of drop times and
    of the queue length (sampled on every change) for the Section 2
    predictor study. *)

type t

val create :
  ?jitter:Units.Time.t -> Sim_engine.Sim.t -> name:string ->
  bandwidth:Units.Rate.t -> delay:Units.Time.t -> disc:Queue_disc.t -> t
(** [jitter] (default 0) adds an independent uniform [\[0, jitter)] extra
    propagation delay per packet — deliberately allowing reordering, for
    robustness experiments. *)

val set_deliver : t -> (Packet.t -> unit) -> unit
(** Install the receiver-side callback (set by {!Topology}). *)

val interpose_deliver :
  t -> ((Packet.t -> unit) -> Packet.t -> unit) -> unit
(** [interpose_deliver t wrap] replaces the delivery callback with
    [wrap inner], where [inner] is the current callback — the decoration
    point used by {!Fault} to impair traffic after it leaves the wire.
    Composable: later wrappers see earlier ones as [inner]. *)

(** Per-packet lifecycle events, for tracing. *)
type event =
  | Enqueue  (** accepted into the queue *)
  | Dequeue  (** transmission started *)
  | Receive  (** delivered to the far end *)
  | Drop  (** rejected by the discipline *)

val set_event_hook : t -> (event -> Packet.t -> unit) -> unit
(** Observe every packet event on this link (one hook per link; setting
    again replaces it). The hook runs before the event's normal effect. *)

val send : t -> Packet.t -> unit
(** Offer a packet to the link's queue; drops and marks happen here. *)

val name : t -> string
val sim : t -> Sim_engine.Sim.t
val disc : t -> Queue_disc.t

(** {2 Availability} *)

val set_up : t -> bool -> unit
(** Take the link down or bring it back up. While down, offered packets
    are dropped (counted in both {!drops} and {!outage_drops}), queued
    packets are retained, and any packet mid-transmission or mid-flight
    still arrives; on recovery the transmitter resumes draining the
    queue. Links start up. *)

val is_up : t -> bool

(** {2 Measurement} *)

val arrivals : t -> int
val drops : t -> int
val marks : t -> int
val outage_drops : t -> int
(** Packets dropped because the link was down (lifetime counter). *)

val conservation_error : t -> string option
(** Packet-conservation invariant over lifetime counters:
    [arrivals = dropped + queued + in_flight + delivered]. Returns a
    diagnostic when accounting has drifted — the {!Sim_engine.Audit}
    check registered per link by the experiment harness. *)

val avg_queue_pkts : t -> Units.Pkts.t
(** Time-weighted average queue length since the last {!reset_stats}. *)

val max_queue_pkts : t -> int
(** Largest instantaneous queue length since the last {!reset_stats}. *)

val utilization : t -> float
(** Fraction of capacity used since the last {!reset_stats}. *)

val drop_rate : t -> float
(** Drops / arrivals since the last {!reset_stats}; 0 if no arrivals. *)

val reset_stats : t -> unit
(** Restart the measurement window at the current simulation time (used to
    discard warm-up transients, as the paper measures only 100–300 s). *)

val enable_drop_trace : t -> unit
val drop_times : t -> float array
(** Times of queue-level drops since tracing was enabled. *)

val enable_queue_trace : t -> ?interval:Units.Time.t -> unit -> unit
(** Sample the instantaneous queue length every [interval] (default 10 ms)
    of simulated time. *)

val queue_at : t -> Units.Time.t -> float
(** [queue_at t time]: traced queue length (packets) at [time] (last sample
    at or before [time]); 0 before the first sample. Requires
    {!enable_queue_trace}. *)
