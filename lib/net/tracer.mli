(** ns-2-style packet-event traces.

    A tracer attached to a set of links records one line per packet event
    in the classic ns-2 text format, so tooling (and eyeballs) trained on
    ns-2 traces work unchanged:

    {v
    + 0.10432 1 2 tcp 1040 ---- 7 1.0 2.0 42 1234
    - 0.10432 1 2 tcp 1040 ---- 7 1.0 2.0 42 1234
    r 0.12532 1 2 tcp 1040 ---- 7 1.0 2.0 42 1234
    d 0.20001 1 2 tcp 1040 ---- 7 1.0 2.0 43 1301
    v}

    [+] enqueue, [-] dequeue (transmission start), [r] receive at the far
    end, [d] drop; then time, the packet's source and destination node
    ids, type ([tcp]/[ack]), size in bytes, flags ([-E--] CE-marked,
    [-R--] retransmission), flow id, src/dst addresses, sequence (or
    cumulative ACK) number and the unique packet id. *)

type t

val create : Sim_engine.Sim.t -> links:Link.t list -> t
(** Monitor the given links (installs each link's event hook — one tracer
    per link). *)

val events : t -> int
val to_string : t -> string
val save : t -> path:string -> unit
