let create ~limit_pkts =
  if limit_pkts <= 0 then invalid_arg "Droptail.create: limit must be positive";
  let fifo = Queue_disc.Fifo.create () in
  let enqueue ~now:_ pkt =
    if Queue_disc.Fifo.pkts fifo >= limit_pkts then Queue_disc.Reject
    else begin
      Queue_disc.Fifo.push fifo pkt;
      Queue_disc.Accept
    end
  in
  {
    Queue_disc.name = "droptail";
    enqueue;
    dequeue = (fun ~now:_ -> Queue_disc.Fifo.pop fifo);
    pkt_length = (fun () -> Queue_disc.Fifo.pkts fifo);
    byte_length = (fun () -> Queue_disc.Fifo.bytes fifo);
    capacity_pkts = limit_pkts;
    internals = Queue_disc.Opaque;
  }
