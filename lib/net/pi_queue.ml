type params = {
  a : float;
  b : float;
  q_ref : float;
  sample_interval : Units.Time.t;
  ecn : bool;
}

type state = {
  p : params;
  mutable prob : float;
  mutable prev_q : float;
  mutable next_update : float;
}

(* Link the opaque Queue_disc.t back to PI internals for introspection
   (no global registry: that would be module-toplevel mutable state). *)
type Queue_disc.internals += Pi of state

let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let create ~rng ~params ~limit_pkts =
  if limit_pkts <= 0 then invalid_arg "Pi_queue.create: limit must be positive";
  let sample_interval = Units.Time.to_s params.sample_interval in
  if sample_interval <= 0.0 then
    invalid_arg "Pi_queue.create: sample_interval must be positive";
  let fifo = Queue_disc.Fifo.create () in
  let st = { p = params; prob = 0.0; prev_q = 0.0; next_update = 0.0 } in
  (* Catch the controller clock up to [now]; between arrivals the queue
     length is constant, so iterating the recurrence is exact. *)
  let update_prob now =
    let q = float_of_int (Queue_disc.Fifo.pkts fifo) in
    while st.next_update <= now do
      st.prob <-
        clamp01
          (st.prob
          +. (st.p.a *. (q -. st.p.q_ref))
          -. (st.p.b *. (st.prev_q -. st.p.q_ref)));
      st.prev_q <- q;
      st.next_update <- st.next_update +. sample_interval
    done
  in
  let enqueue ~now pkt =
    update_prob now;
    if Queue_disc.Fifo.pkts fifo >= limit_pkts then Queue_disc.Reject
    else if Sim_engine.Rng.bernoulli rng (Units.Prob.v st.prob) then
      if st.p.ecn && pkt.Packet.ecn_capable then begin
        Queue_disc.Fifo.push fifo pkt;
        Queue_disc.Accept_marked
      end
      else Queue_disc.Reject
    else begin
      Queue_disc.Fifo.push fifo pkt;
      Queue_disc.Accept
    end
  in
  {
    Queue_disc.name = "pi";
    enqueue;
    dequeue = (fun ~now:_ -> Queue_disc.Fifo.pop fifo);
    pkt_length = (fun () -> Queue_disc.Fifo.pkts fifo);
    byte_length = (fun () -> Queue_disc.Fifo.bytes fifo);
    capacity_pkts = limit_pkts;
    internals = Pi st;
  }

let probability disc =
  match disc.Queue_disc.internals with
  | Pi st -> Units.Prob.v st.prob
  | _ -> invalid_arg "Pi_queue: not a PI discipline"
