type t = {
  sim : Sim_engine.Sim.t;
  buf : Buffer.t;
  mutable events : int;
}

let flag_of_event = function
  | Link.Enqueue -> '+'
  | Link.Dequeue -> '-'
  | Link.Receive -> 'r'
  | Link.Drop -> 'd'

let kind_of (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Packet.Data _ -> "tcp"
  | Packet.Ack _ -> "ack"
  | Packet.Probe _ -> "probe"
  | Packet.Rst _ -> "rst"

let seq_of (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Packet.Data { seq } -> seq
  | Packet.Ack { ack; _ } -> ack
  | Packet.Probe { seq } -> seq
  | Packet.Rst { seq } -> seq

let record t event pkt =
  t.events <- t.events + 1;
  let p = pkt in
  Buffer.add_string t.buf
    (Printf.sprintf "%c %.5f %d %d %s %d %s %d %d.0 %d.0 %d %d\n"
       (flag_of_event event)
       (Sim_engine.Sim.now t.sim)
       p.Packet.src p.Packet.dst (kind_of p) p.Packet.size
       (if p.Packet.ecn_marked then "-E--"
        else if p.Packet.retransmit then "-R--"
        else "----")
       p.Packet.flow p.Packet.src p.Packet.dst (seq_of p) p.Packet.id)

let create sim ~links =
  let t = { sim; buf = Buffer.create 4096; events = 0 } in
  List.iter (fun link -> Link.set_event_hook link (record t)) links;
  t

let events t = t.events
let to_string t = Buffer.contents t.buf

let save t ~path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
