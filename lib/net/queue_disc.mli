(** Queue-discipline interface implemented by {!Droptail}, {!Red} and
    {!Pi_queue}.

    A discipline owns the buffered packets. [enqueue] decides the fate of
    an arriving packet; on [Accept] and [Accept_marked] the discipline has
    stored it ([Accept_marked] additionally asks the caller to set the CE
    bit). On [Reject] the packet is dropped and not stored. *)

type verdict = Accept | Accept_marked | Reject

type internals = ..
(** Discipline-private state, surfaced so a concrete module can recover
    its own internals from the closure record for introspection
    ([Red.avg_queue], [Rem.price], ...) without any global registry —
    module-toplevel registries are a replay/determinism hazard (lint rule
    D3). Each implementation extends this type with its own constructor
    and matches on it in its accessors. *)

type internals += Opaque  (** for disciplines with nothing to expose *)

type t = {
  name : string;
  enqueue : now:float -> Packet.t -> verdict;
  dequeue : now:float -> Packet.t option;
  pkt_length : unit -> int;  (** packets currently buffered *)
  byte_length : unit -> int;  (** bytes currently buffered *)
  capacity_pkts : int;  (** buffer limit in packets *)
  internals : internals;  (** see {!type-internals} *)
}

(** FIFO storage shared by discipline implementations. *)
module Fifo : sig
  type q

  val create : unit -> q
  val push : q -> Packet.t -> unit
  val pop : q -> Packet.t option
  val pkts : q -> int
  val bytes : q -> int
end
