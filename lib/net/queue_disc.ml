type verdict = Accept | Accept_marked | Reject
type internals = ..
type internals += Opaque

type t = {
  name : string;
  enqueue : now:float -> Packet.t -> verdict;
  dequeue : now:float -> Packet.t option;
  pkt_length : unit -> int;
  byte_length : unit -> int;
  capacity_pkts : int;
  internals : internals;
}

module Fifo = struct
  type q = { queue : Packet.t Queue.t; mutable bytes : int }

  let create () = { queue = Queue.create (); bytes = 0 }

  let push q pkt =
    Queue.push pkt q.queue;
    q.bytes <- q.bytes + pkt.Packet.size

  let pop q =
    match Queue.take_opt q.queue with
    | None -> None
    | Some pkt ->
        q.bytes <- q.bytes - pkt.Packet.size;
        Some pkt

  let pkts q = Queue.length q.queue
  let bytes q = q.bytes
end
