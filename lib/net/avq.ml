type params = {
  gamma : float;
  alpha : float;
  virtual_buffer : float;
  ecn : bool;
}

let default_params () =
  { gamma = 0.98; alpha = 0.15; virtual_buffer = 20.0; ecn = true }

type state = {
  p : params;
  capacity_pps : float;
  mutable vq : float;  (** virtual queue length, packets *)
  mutable c_tilde : float;  (** virtual capacity, pkts/s *)
  mutable last_arrival : float;
}

(* Link the opaque Queue_disc.t back to AVQ internals for introspection
   (no global registry: that would be module-toplevel mutable state). *)
type Queue_disc.internals += Avq of state

let create ~params ~capacity_pps ~limit_pkts =
  if limit_pkts <= 0 then invalid_arg "Avq.create: limit must be positive";
  if params.gamma <= 0.0 || params.gamma > 1.0 then
    invalid_arg "Avq.create: gamma in (0,1]";
  let fifo = Queue_disc.Fifo.create () in
  let st =
    {
      p = params;
      capacity_pps;
      vq = 0.0;
      c_tilde = params.gamma *. capacity_pps;
      last_arrival = 0.0;
    }
  in
  let enqueue ~now pkt =
    let dt = Float.max 0.0 (now -. st.last_arrival) in
    st.last_arrival <- now;
    (* Drain the virtual queue at the virtual capacity. *)
    st.vq <- Float.max 0.0 (st.vq -. (st.c_tilde *. dt));
    (* Kunniyur-Srikant adaptation, integrated between arrivals: the
       (gamma C) term over dt, minus one packet for this arrival. *)
    st.c_tilde <-
      Float.min st.capacity_pps
        (Float.max 0.0
           (st.c_tilde
           +. (st.p.alpha *. ((st.p.gamma *. st.capacity_pps *. dt) -. 1.0))));
    if Queue_disc.Fifo.pkts fifo >= limit_pkts then Queue_disc.Reject
    else if st.vq +. 1.0 > st.p.virtual_buffer then
      if st.p.ecn && pkt.Packet.ecn_capable then begin
        Queue_disc.Fifo.push fifo pkt;
        Queue_disc.Accept_marked
      end
      else Queue_disc.Reject
    else begin
      st.vq <- st.vq +. 1.0;
      Queue_disc.Fifo.push fifo pkt;
      Queue_disc.Accept
    end
  in
  {
    Queue_disc.name = "avq";
    enqueue;
    dequeue = (fun ~now:_ -> Queue_disc.Fifo.pop fifo);
    pkt_length = (fun () -> Queue_disc.Fifo.pkts fifo);
    byte_length = (fun () -> Queue_disc.Fifo.bytes fifo);
    capacity_pkts = limit_pkts;
    internals = Avq st;
  }

let virtual_capacity disc =
  match disc.Queue_disc.internals with
  | Avq st -> st.c_tilde
  | _ -> invalid_arg "Avq: not an AVQ discipline"
