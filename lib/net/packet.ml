type payload =
  | Data of { seq : int }
  | Ack of {
      ack : int;
      sack : (int * int) list;
      ecn_echo : bool;
      ts_echo : float;
      mutable window : int;
    }
  | Probe of { seq : int }
  | Rst of { seq : int }

type t = {
  id : int;
  flow : int;
  src : int;
  dst : int;
  size : int;
  payload : payload;
  ecn_capable : bool;
  mutable ecn_marked : bool;
  mutable retransmit : bool;
  mutable corrupted : bool;
  sent_at : float;
}

let mss = 1000
let header_size = 40
let data_size = mss + header_size
let probe_size = header_size + 1

type factory = { mutable next_id : int }

let factory () = { next_id = 0 }

let fresh_id f =
  let id = f.next_id in
  f.next_id <- id + 1;
  id

let data f ~flow ~src ~dst ~seq ~ecn ?(retransmit = false) ~now () =
  {
    id = fresh_id f;
    flow;
    src;
    dst;
    size = data_size;
    payload = Data { seq };
    ecn_capable = ecn;
    ecn_marked = false;
    retransmit;
    corrupted = false;
    sent_at = now;
  }

let ack f ~flow ~src ~dst ~ack ~sack ~ecn_echo ~ts_echo ~window ~now () =
  {
    id = fresh_id f;
    flow;
    src;
    dst;
    size = header_size;
    payload = Ack { ack; sack; ecn_echo; ts_echo; window };
    ecn_capable = false;
    ecn_marked = false;
    retransmit = false;
    corrupted = false;
    sent_at = now;
  }

let probe f ~flow ~src ~dst ~seq ~now () =
  {
    id = fresh_id f;
    flow;
    src;
    dst;
    size = probe_size;
    payload = Probe { seq };
    ecn_capable = false;
    ecn_marked = false;
    retransmit = false;
    corrupted = false;
    sent_at = now;
  }

let rst f ~flow ~src ~dst ~seq ~now () =
  {
    id = fresh_id f;
    flow;
    src;
    dst;
    size = header_size;
    payload = Rst { seq };
    ecn_capable = false;
    ecn_marked = false;
    retransmit = false;
    corrupted = false;
    sent_at = now;
  }

let is_data t =
  match t.payload with Data _ -> true | Ack _ | Probe _ | Rst _ -> false

let seq_exn t =
  match t.payload with
  | Data { seq } -> seq
  | Ack _ | Probe _ | Rst _ -> invalid_arg "Packet.seq_exn: not a data packet"
