type t = {
  id : int;
  mutable routes : Link.t option array;
  agents : (int, Packet.t -> unit) Hashtbl.t;
}

let create ~id = { id; routes = [||]; agents = Hashtbl.create 8 }
let id t = t.id
let set_routes t routes = t.routes <- routes

let route_to t dst =
  if dst < 0 || dst >= Array.length t.routes then None else t.routes.(dst)

let attach_agent t ~flow handler = Hashtbl.replace t.agents flow handler
let detach_agent t ~flow = Hashtbl.remove t.agents flow

let receive t pkt =
  if pkt.Packet.dst = t.id then
    match Hashtbl.find_opt t.agents pkt.Packet.flow with
    | Some handler -> handler pkt
    | None -> ()
  else
    match route_to t pkt.Packet.dst with
    | Some link -> Link.send link pkt
    | None ->
        invalid_arg
          (Printf.sprintf "Node %d: no route to %d" t.id pkt.Packet.dst)
