(** PI (proportional-integral) active queue management after Hollot et al.,
    INFOCOM 2001 — the router baseline for the paper's Section 6.

    The mark/drop probability is updated on a fixed sampling clock:

    [p(k) = p(k-1) + a * (q(k) - q_ref) - b * (q(k-1) - q_ref)]

    with [a > b > 0], and every arrival is marked (ECN) or dropped with the
    current probability. *)

type params = {
  a : float;  (** gain on the current queue error, 1/packets *)
  b : float;  (** gain on the previous queue error, 1/packets *)
  q_ref : float;  (** target queue length, packets *)
  sample_interval : Units.Time.t;  (** between probability updates *)
  ecn : bool;
}

val create :
  rng:Sim_engine.Rng.t -> params:params -> limit_pkts:int -> Queue_disc.t

val probability : Queue_disc.t -> Units.Prob.t
(** Current controller output of a PI discipline created by {!create};
    raises [Invalid_argument] for other disciplines. *)
