(** RED (Random Early Detection) active queue management, ns-2 flavoured:
    EWMA of the instantaneous queue length with idle-time compensation,
    count-corrected marking probability, optional "gentle" region between
    [max_th] and [2 max_th], optional ECN marking, and optional Adaptive-RED
    [max_p] tuning (Floyd, Gummadi, Shenker 2001).

    Used as the router baseline "SACK/RED-ECN" throughout the paper's
    evaluation (with the adaptive variant, see Section 4.2). *)

type params = {
  wq : float;  (** EWMA weight of the instantaneous queue *)
  min_th : float;  (** packets *)
  max_th : float;  (** packets *)
  max_p : Units.Prob.t;
  gentle : bool;
  adaptive : bool;
  ecn : bool;  (** mark ECN-capable packets instead of dropping *)
}

val auto_params :
  ?target_delay:Units.Time.t -> ?gentle:bool -> ?adaptive:bool -> ?ecn:bool ->
  capacity_pps:float -> limit_pkts:int -> unit -> params
(** Adaptive-RED automatic configuration: [wq = 1 - exp (-1 /. capacity)],
    [min_th = max 5 (capacity *. target_delay /. 2.)] clamped to the buffer,
    [max_th = 3 min_th], [max_p = 0.1]. [target_delay] defaults to 5 ms. *)

val create :
  rng:Sim_engine.Rng.t -> params:params -> capacity_pps:float ->
  limit_pkts:int -> Queue_disc.t
(** [capacity_pps] (packets/second at MSS size) calibrates the idle-time
    decay of the average. *)

val avg_queue : Queue_disc.t -> float
(** Current averaged queue length of a RED discipline created by
    {!create}; raises [Invalid_argument] for other disciplines. *)

val current_max_p : Queue_disc.t -> Units.Prob.t
(** Current [max_p] (changes under adaptive mode). *)
