module Prob = Units.Prob

type params = {
  wq : float;
  min_th : float;
  max_th : float;
  max_p : Prob.t;
  gentle : bool;
  adaptive : bool;
  ecn : bool;
}

let auto_params ?(target_delay = Units.Time.s 0.005) ?(gentle = true)
    ?(adaptive = true) ?(ecn = true) ~capacity_pps ~limit_pkts () =
  let target_delay = Units.Time.to_s target_delay in
  let min_th = Float.max 5.0 (capacity_pps *. target_delay /. 2.0) in
  (* Keep the control band inside the physical buffer. *)
  let min_th = Float.min min_th (float_of_int limit_pkts /. 4.0) in
  let min_th = Float.max 1.0 min_th in
  {
    wq = 1.0 -. exp (-1.0 /. Float.max 1.0 capacity_pps);
    min_th;
    max_th = 3.0 *. min_th;
    max_p = Prob.v 0.1;
    gentle;
    adaptive;
    ecn;
  }

type state = {
  mutable p : params;
  mutable avg : float;
  mutable count : int;
  mutable idle_start : float;  (** nan when the queue is busy *)
  mutable next_adapt : float;
}

(* Link the opaque Queue_disc.t back to RED internals for introspection
   (avg_queue, current_max_p) — no global registry: that would be
   module-toplevel mutable state. *)
type Queue_disc.internals += Red of state

let adapt_interval = 0.5

let adapt st now =
  if st.p.adaptive && now >= st.next_adapt then begin
    st.next_adapt <- now +. adapt_interval;
    let target_lo = st.p.min_th +. (0.4 *. (st.p.max_th -. st.p.min_th)) in
    let target_hi = st.p.min_th +. (0.6 *. (st.p.max_th -. st.p.min_th)) in
    let mp = Prob.to_float st.p.max_p in
    if st.avg > target_hi && mp < 0.5 then
      st.p <- { st.p with max_p = Prob.v (mp +. Float.min 0.01 (mp /. 4.0)) }
    else if st.avg < target_lo && mp > 0.01 then
      st.p <- { st.p with max_p = Prob.v (mp *. 0.9) }
  end

let create ~rng ~params ~capacity_pps ~limit_pkts =
  if limit_pkts <= 0 then invalid_arg "Red.create: limit must be positive";
  let fifo = Queue_disc.Fifo.create () in
  (* The queue starts empty: idle since t = 0. [idle_start] is NaN exactly
     while packets are buffered, so every push clears it and the
     drain-to-empty dequeue restores it. *)
  let st =
    { p = params; avg = 0.0; count = -1; idle_start = 0.0; next_adapt = 0.0 }
  in
  let push pkt =
    Queue_disc.Fifo.push fifo pkt;
    st.idle_start <- Float.nan
  in
  let tx_time = 1.0 /. Float.max 1.0 capacity_pps in
  let update_avg now =
    let pkts = Queue_disc.Fifo.pkts fifo in
    if pkts = 0 && not (Float.is_nan st.idle_start) then begin
      (* Decay the average as if m small packets were serviced while idle.
         Keep the idle clock running: if this arrival is rejected the queue
         stays empty, and later arrivals must keep decaying by elapsed time
         (ns-2's q_time), or a pinned-high average force-drops forever. *)
      let m = (now -. st.idle_start) /. tx_time in
      st.avg <- st.avg *. ((1.0 -. st.p.wq) ** m);
      st.idle_start <- now
    end
    else
      st.avg <-
        ((1.0 -. st.p.wq) *. st.avg) +. (st.p.wq *. float_of_int pkts)
  in
  let mark_or_drop pkt =
    if st.p.ecn && pkt.Packet.ecn_capable then begin
      push pkt;
      Queue_disc.Accept_marked
    end
    else Queue_disc.Reject
  in
  let enqueue ~now pkt =
    update_avg now;
    adapt st now;
    if Queue_disc.Fifo.pkts fifo >= limit_pkts then begin
      st.count <- 0;
      Queue_disc.Reject
    end
    else begin
      let p = st.p in
      let region_verdict pb =
        st.count <- st.count + 1;
        let pa =
          let denom = 1.0 -. (float_of_int st.count *. pb) in
          if denom <= 0.0 then 1.0 else Float.min 1.0 (pb /. denom)
        in
        if Sim_engine.Rng.bernoulli rng (Prob.v pa) then begin
          st.count <- 0;
          mark_or_drop pkt
        end
        else begin
          push pkt;
          Queue_disc.Accept
        end
      in
      if st.avg < p.min_th then begin
        st.count <- -1;
        push pkt;
        Queue_disc.Accept
      end
      else if st.avg < p.max_th then
        region_verdict
          (Prob.to_float p.max_p *. (st.avg -. p.min_th)
          /. (p.max_th -. p.min_th))
      else if p.gentle && st.avg < 2.0 *. p.max_th then
        let mp = Prob.to_float p.max_p in
        region_verdict (mp +. ((1.0 -. mp) *. (st.avg -. p.max_th) /. p.max_th))
      else begin
        st.count <- 0;
        Queue_disc.Reject
      end
    end
  in
  let dequeue ~now =
    match Queue_disc.Fifo.pop fifo with
    | None -> None
    | Some pkt ->
        if Queue_disc.Fifo.pkts fifo = 0 then st.idle_start <- now;
        Some pkt
  in
  {
    Queue_disc.name = "red";
    enqueue;
    dequeue;
    pkt_length = (fun () -> Queue_disc.Fifo.pkts fifo);
    byte_length = (fun () -> Queue_disc.Fifo.bytes fifo);
    capacity_pkts = limit_pkts;
    internals = Red st;
  }

let state_of disc =
  match disc.Queue_disc.internals with
  | Red st -> st
  | _ -> invalid_arg "Red: not a RED discipline"

let avg_queue disc = (state_of disc).avg
let current_max_p disc = (state_of disc).p.max_p
