(** A network node: routes transit packets along precomputed next-hop
    links and demultiplexes locally addressed packets to per-flow agents
    (TCP endpoints). *)

type t

val create : id:int -> t
val id : t -> int

val set_routes : t -> Link.t option array -> unit
(** [routes.(d)] is the outgoing link toward destination node [d]. *)

val route_to : t -> int -> Link.t option

val attach_agent : t -> flow:int -> (Packet.t -> unit) -> unit
(** Register the handler for packets of [flow] addressed to this node.
    Re-attaching replaces the handler. *)

val detach_agent : t -> flow:int -> unit

val receive : t -> Packet.t -> unit
(** Entry point used by links and by local senders: locally addressed
    packets go to the flow agent (silently discarded if none — e.g. a
    closed connection), others are forwarded (raises [Invalid_argument] if
    there is no route). *)
