(** Plain FIFO tail-drop queue — the default router buffer in the paper's
    SACK/Droptail, Vegas and PERT configurations. *)

val create : limit_pkts:int -> Queue_disc.t
(** [create ~limit_pkts] rejects arrivals once [limit_pkts] packets are
    buffered. *)
