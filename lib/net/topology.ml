module Sim = Sim_engine.Sim

type t = {
  sim : Sim.t;
  mutable nodes : Node.t list;  (* newest first *)
  mutable links : (int * int * Link.t) list;  (* src id, dst id, link *)
  mutable node_count : int;
}

let create sim = { sim; nodes = []; links = []; node_count = 0 }
let sim t = t.sim

let add_node t =
  let node = Node.create ~id:t.node_count in
  t.node_count <- t.node_count + 1;
  t.nodes <- node :: t.nodes;
  node

let add_link ?jitter t ~src ~dst ~bandwidth ~delay ~disc =
  let name = Printf.sprintf "link-%d->%d" (Node.id src) (Node.id dst) in
  let link = Link.create ?jitter t.sim ~name ~bandwidth ~delay ~disc in
  Link.set_deliver link (fun pkt -> Node.receive dst pkt);
  t.links <- (Node.id src, Node.id dst, link) :: t.links;
  link

let add_duplex t ~a ~b ~bandwidth ~delay ~disc_ab ~disc_ba =
  let ab = add_link t ~src:a ~dst:b ~bandwidth ~delay ~disc:disc_ab in
  let ba = add_link t ~src:b ~dst:a ~bandwidth ~delay ~disc:disc_ba in
  (ab, ba)

let compute_routes t =
  let n = t.node_count in
  (* adjacency: for each node, outgoing (dst, link) in creation order *)
  let adj = Array.make n [] in
  List.iter (fun (s, d, l) -> adj.(s) <- (d, l) :: adj.(s)) t.links;
  let nodes = Array.make n (Node.create ~id:(-1)) in
  List.iter (fun node -> nodes.(Node.id node) <- node) t.nodes;
  (* BFS from each destination over reversed edges would be natural; with
     small topologies, BFS from each source is just as fine. *)
  let route_from s =
    let routes = Array.make n None in
    let dist = Array.make n max_int in
    dist.(s) <- 0;
    let q = Queue.create () in
    Queue.push s q;
    (* first_hop.(v) = link out of s on the shortest path to v *)
    let first_hop = Array.make n None in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun (v, l) ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            first_hop.(v) <- (if u = s then Some l else first_hop.(u));
            Queue.push v q
          end)
        (List.rev adj.(u))
    done;
    for v = 0 to n - 1 do
      if v <> s then routes.(v) <- first_hop.(v)
    done;
    routes
  in
  Array.iter
    (fun node ->
      if Node.id node >= 0 then Node.set_routes node (route_from (Node.id node)))
    nodes

let node_count t = t.node_count
let links t = List.rev_map (fun (_, _, l) -> l) t.links

let inject _t node pkt = Node.receive node pkt
