(** AVQ — Adaptive Virtual Queue (Kunniyur & Srikant 2001), another AQM
    scheme on the paper's emulation wish-list, provided as a router
    baseline.

    A virtual queue drains at an adaptive virtual capacity
    [c_tilde <= c]; an arrival that would overflow the virtual buffer is
    marked (dropped when not ECN-capable). Between arrivals the virtual
    capacity moves toward the desired utilisation [gamma]:

    [c_tilde' = alpha * (gamma * c - arrival_rate)]. *)

type params = {
  gamma : float;  (** desired utilisation, e.g. 0.98 *)
  alpha : float;  (** adaptation gain, e.g. 0.15 *)
  virtual_buffer : float;  (** packets *)
  ecn : bool;
}

val default_params : unit -> params
(** [gamma = 0.98], [alpha = 0.15], [virtual_buffer = 20]. *)

val create :
  params:params -> capacity_pps:float -> limit_pkts:int -> Queue_disc.t

val virtual_capacity : Queue_disc.t -> float
(** Current virtual capacity (pkts/s) of an AVQ discipline created by
    {!create}; raises [Invalid_argument] otherwise. *)
