module Sim = Sim_engine.Sim
module Rng = Sim_engine.Rng
module Time = Units.Time
module Prob = Units.Prob

type outages =
  | No_outages
  | Scheduled of (Time.t * Time.t) list
  | Flapping of { mean_up : Time.t; mean_down : Time.t }

type spec = {
  drop_prob : Prob.t;
  corrupt_prob : Prob.t;
  bleach_prob : Prob.t;
  remark_prob : Prob.t;
  dup_prob : Prob.t;
  reorder_prob : Prob.t;
  reorder_extra : Time.t;
  spike_prob : Prob.t;
  spike_delay : Time.t;
  outages : outages;
}

let none =
  {
    drop_prob = Prob.zero;
    corrupt_prob = Prob.zero;
    bleach_prob = Prob.zero;
    remark_prob = Prob.zero;
    dup_prob = Prob.zero;
    reorder_prob = Prob.zero;
    reorder_extra = Time.zero;
    spike_prob = Prob.zero;
    spike_delay = Time.zero;
    outages = No_outages;
  }

let lossy p = { none with drop_prob = p }

(* Probabilities are honest by construction ([Prob.t] is clamped and
   NaN-free); only the durations still need validating. *)
let validate spec =
  if Time.to_s spec.reorder_extra < 0.0 then
    invalid_arg "Fault: negative reorder_extra";
  if Time.to_s spec.spike_delay < 0.0 then
    invalid_arg "Fault: negative spike_delay";
  (match spec.outages with
  | No_outages -> ()
  | Scheduled windows ->
      List.iter
        (fun (down_at, up_at) ->
          if Time.to_s down_at < 0.0 || Time.compare up_at down_at <= 0 then
            invalid_arg "Fault: outage windows need 0 <= down_at < up_at")
        windows
  | Flapping { mean_up; mean_down } ->
      if Time.to_s mean_up <= 0.0 || Time.to_s mean_down <= 0.0 then
        invalid_arg "Fault: flapping means must be positive")

type stats = {
  wire_drops : int;
  corrupt_drops : int;
  bleached : int;
  remarked : int;
  duplicated : int;
  reordered : int;
  delayed : int;
  outage_drops : int;
  transitions : int;
  downtime : float;
}

type t = {
  sim : Sim.t;
  link : Link.t;
  spec : spec;
  pkt_rng : Rng.t;
  outage_rng : Rng.t;
  mutable wire_drops : int;
  mutable corrupt_drops : int;
  mutable bleached : int;
  mutable remarked : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable delayed : int;
  mutable transitions : int;
  mutable downtime : float;
  mutable went_down_at : float option;
}

let go_down t =
  if Link.is_up t.link then begin
    t.transitions <- t.transitions + 1;
    t.went_down_at <- Some (Sim.now t.sim);
    Link.set_up t.link false
  end

let go_up t =
  if not (Link.is_up t.link) then begin
    t.transitions <- t.transitions + 1;
    (match t.went_down_at with
    | Some since -> t.downtime <- t.downtime +. (Sim.now t.sim -. since)
    | None -> ());
    t.went_down_at <- None;
    Link.set_up t.link true
  end

let schedule_outages t =
  match t.spec.outages with
  | No_outages -> ()
  | Scheduled windows ->
      List.iter
        (fun (down_at, up_at) ->
          Sim.at t.sim down_at (fun () -> go_down t);
          Sim.at t.sim up_at (fun () -> go_up t))
        windows
  | Flapping { mean_up; mean_down } ->
      let rec up_phase () =
        Sim.after t.sim
          (Time.s (Rng.exponential t.outage_rng (Time.to_s mean_up)))
          (fun () ->
            go_down t;
            down_phase ())
      and down_phase () =
        Sim.after t.sim
          (Time.s (Rng.exponential t.outage_rng (Time.to_s mean_down)))
          (fun () ->
            go_up t;
            up_phase ())
      in
      up_phase ()

(* Applied at the receiver end of the wire: the packet has already left
   the queue and crossed the link, which is where non-congestive loss,
   corruption and ECN meddling physically happen. Each impairment draws
   from [pkt_rng] only when its probability is non-zero, so a given spec
   always consumes the same number of draws per packet and replays are
   bit-identical. *)
let impair t inner pkt =
  let s = t.spec in
  let hit p = Prob.positive p && Rng.bernoulli t.pkt_rng p in
  if hit s.drop_prob then t.wire_drops <- t.wire_drops + 1
  else if hit s.corrupt_prob then t.corrupt_drops <- t.corrupt_drops + 1
  else begin
    if pkt.Packet.ecn_marked && hit s.bleach_prob then begin
      pkt.Packet.ecn_marked <- false;
      t.bleached <- t.bleached + 1
    end;
    if pkt.Packet.ecn_capable && (not pkt.Packet.ecn_marked)
       && hit s.remark_prob
    then begin
      pkt.Packet.ecn_marked <- true;
      t.remarked <- t.remarked + 1
    end;
    let extra = ref 0.0 in
    if hit s.reorder_prob then begin
      t.reordered <- t.reordered + 1;
      extra := !extra +. Rng.float t.pkt_rng (Time.to_s s.reorder_extra)
    end;
    if hit s.spike_prob then begin
      t.delayed <- t.delayed + 1;
      extra := !extra +. Time.to_s s.spike_delay
    end;
    let dup = hit s.dup_prob in
    if dup then t.duplicated <- t.duplicated + 1;
    if !extra > 0.0 then Sim.after t.sim (Time.s !extra) (fun () -> inner pkt)
    else inner pkt;
    (* The duplicate takes the direct path even when the original was
       delayed — that itself is a reordering, as on real networks. *)
    if dup then inner pkt
  end

let attach spec link =
  validate spec;
  let sim = Link.sim link in
  let t =
    {
      sim;
      link;
      spec;
      pkt_rng = Rng.split (Sim.rng sim);
      outage_rng = Rng.split (Sim.rng sim);
      wire_drops = 0;
      corrupt_drops = 0;
      bleached = 0;
      remarked = 0;
      duplicated = 0;
      reordered = 0;
      delayed = 0;
      transitions = 0;
      downtime = 0.0;
      went_down_at = None;
    }
  in
  Link.interpose_deliver link (impair t);
  schedule_outages t;
  t

let link t = t.link
let spec t = t.spec

let stats t =
  let downtime =
    match t.went_down_at with
    | Some since -> t.downtime +. (Sim.now t.sim -. since)
    | None -> t.downtime
  in
  {
    wire_drops = t.wire_drops;
    corrupt_drops = t.corrupt_drops;
    bleached = t.bleached;
    remarked = t.remarked;
    duplicated = t.duplicated;
    reordered = t.reordered;
    delayed = t.delayed;
    outage_drops = Link.outage_drops t.link;
    transitions = t.transitions;
    downtime;
  }

let lost t = t.wire_drops + t.corrupt_drops + Link.outage_drops t.link
