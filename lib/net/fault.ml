module Sim = Sim_engine.Sim
module Rng = Sim_engine.Rng
module Time = Units.Time
module Prob = Units.Prob

type outages =
  | No_outages
  | Scheduled of (Time.t * Time.t) list
  | Flapping of { mean_up : Time.t; mean_down : Time.t }

type spec = {
  drop_prob : Prob.t;
  corrupt_prob : Prob.t;
  bleach_prob : Prob.t;
  remark_prob : Prob.t;
  dup_prob : Prob.t;
  reorder_prob : Prob.t;
  reorder_extra : Time.t;
  spike_prob : Prob.t;
  spike_delay : Time.t;
  outages : outages;
}

let none =
  {
    drop_prob = Prob.zero;
    corrupt_prob = Prob.zero;
    bleach_prob = Prob.zero;
    remark_prob = Prob.zero;
    dup_prob = Prob.zero;
    reorder_prob = Prob.zero;
    reorder_extra = Time.zero;
    spike_prob = Prob.zero;
    spike_delay = Time.zero;
    outages = No_outages;
  }

let lossy p = { none with drop_prob = p }

(* Probabilities are honest by construction ([Prob.t] is clamped and
   NaN-free); only the durations still need validating. *)
let validate spec =
  if Time.to_s spec.reorder_extra < 0.0 then
    invalid_arg "Fault: negative reorder_extra";
  if Time.to_s spec.spike_delay < 0.0 then
    invalid_arg "Fault: negative spike_delay";
  (match spec.outages with
  | No_outages -> ()
  | Scheduled windows ->
      List.iter
        (fun (down_at, up_at) ->
          if Time.to_s down_at < 0.0 || Time.compare up_at down_at <= 0 then
            invalid_arg "Fault: outage windows need 0 <= down_at < up_at")
        windows
  | Flapping { mean_up; mean_down } ->
      if Time.to_s mean_up <= 0.0 || Time.to_s mean_down <= 0.0 then
        invalid_arg "Fault: flapping means must be positive")

type stats = {
  wire_drops : int;
  corrupted : int;
  bleached : int;
  remarked : int;
  duplicated : int;
  reordered : int;
  delayed : int;
  outage_drops : int;
  transitions : int;
  downtime : float;
}

type t = {
  sim : Sim.t;
  link : Link.t;
  spec : spec;
  pkt_rng : Rng.t;
  outage_rng : Rng.t;
  mutable wire_drops : int;
  mutable corrupted : int;
  mutable bleached : int;
  mutable remarked : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable delayed : int;
  mutable transitions : int;
  mutable downtime : float;
  mutable went_down_at : float option;
}

let go_down t =
  if Link.is_up t.link then begin
    t.transitions <- t.transitions + 1;
    t.went_down_at <- Some (Sim.now t.sim);
    Link.set_up t.link false
  end

let go_up t =
  if not (Link.is_up t.link) then begin
    t.transitions <- t.transitions + 1;
    (match t.went_down_at with
    | Some since -> t.downtime <- t.downtime +. (Sim.now t.sim -. since)
    | None -> ());
    t.went_down_at <- None;
    Link.set_up t.link true
  end

let schedule_outages t =
  match t.spec.outages with
  | No_outages -> ()
  | Scheduled windows ->
      List.iter
        (fun (down_at, up_at) ->
          Sim.at t.sim down_at (fun () -> go_down t);
          Sim.at t.sim up_at (fun () -> go_up t))
        windows
  | Flapping { mean_up; mean_down } ->
      let rec up_phase () =
        Sim.after t.sim
          (Time.s (Rng.exponential t.outage_rng (Time.to_s mean_up)))
          (fun () ->
            go_down t;
            down_phase ())
      and down_phase () =
        Sim.after t.sim
          (Time.s (Rng.exponential t.outage_rng (Time.to_s mean_down)))
          (fun () ->
            go_up t;
            up_phase ())
      in
      up_phase ()

(* Applied at the receiver end of the wire: the packet has already left
   the queue and crossed the link, which is where non-congestive loss,
   corruption and ECN meddling physically happen. Each impairment draws
   from [pkt_rng] only when its probability is non-zero, so a given spec
   always consumes the same number of draws per packet and replays are
   bit-identical. *)
let impair t inner pkt =
  let s = t.spec in
  let hit p = Prob.positive p && Rng.bernoulli t.pkt_rng p in
  if hit s.drop_prob then t.wire_drops <- t.wire_drops + 1
  else if hit s.corrupt_prob then begin
    (* Bit corruption no longer silently eats the packet here: the
       mangled segment is delivered with [corrupted] set and must fail
       the checksum-style validity gate in the Flow receive path — the
       endpoint, not the wire, is where a corrupt segment is detected
       and discarded. The rng draw order per packet is unchanged. *)
    t.corrupted <- t.corrupted + 1;
    pkt.Packet.corrupted <- true;
    inner pkt
  end
  else begin
    if pkt.Packet.ecn_marked && hit s.bleach_prob then begin
      pkt.Packet.ecn_marked <- false;
      t.bleached <- t.bleached + 1
    end;
    if pkt.Packet.ecn_capable && (not pkt.Packet.ecn_marked)
       && hit s.remark_prob
    then begin
      pkt.Packet.ecn_marked <- true;
      t.remarked <- t.remarked + 1
    end;
    let extra = ref 0.0 in
    if hit s.reorder_prob then begin
      t.reordered <- t.reordered + 1;
      extra := !extra +. Rng.float t.pkt_rng (Time.to_s s.reorder_extra)
    end;
    if hit s.spike_prob then begin
      t.delayed <- t.delayed + 1;
      extra := !extra +. Time.to_s s.spike_delay
    end;
    let dup = hit s.dup_prob in
    if dup then t.duplicated <- t.duplicated + 1;
    if !extra > 0.0 then Sim.after t.sim (Time.s !extra) (fun () -> inner pkt)
    else inner pkt;
    (* The duplicate takes the direct path even when the original was
       delayed — that itself is a reordering, as on real networks. *)
    if dup then inner pkt
  end

let attach spec link =
  validate spec;
  let sim = Link.sim link in
  let t =
    {
      sim;
      link;
      spec;
      pkt_rng = Rng.split (Sim.rng sim);
      outage_rng = Rng.split (Sim.rng sim);
      wire_drops = 0;
      corrupted = 0;
      bleached = 0;
      remarked = 0;
      duplicated = 0;
      reordered = 0;
      delayed = 0;
      transitions = 0;
      downtime = 0.0;
      went_down_at = None;
    }
  in
  Link.interpose_deliver link (impair t);
  schedule_outages t;
  t


let stats t =
  let downtime =
    match t.went_down_at with
    | Some since -> t.downtime +. (Sim.now t.sim -. since)
    | None -> t.downtime
  in
  {
    wire_drops = t.wire_drops;
    corrupted = t.corrupted;
    bleached = t.bleached;
    remarked = t.remarked;
    duplicated = t.duplicated;
    reordered = t.reordered;
    delayed = t.delayed;
    outage_drops = Link.outage_drops t.link;
    transitions = t.transitions;
    downtime;
  }

let lost t = t.wire_drops + t.corrupted + Link.outage_drops t.link

(* --- adversary: blind RST storms, ACK storms, window clamping ----------- *)

type adversary = {
  rst_rate : float;
  rst_guess_range : int;
  ack_rate : float;
  ack_burst : int;
  clamp_episodes : (Time.t * Time.t) list;
  clamp_to : int;
}

(* A realistic blind attacker knows the connection tuple but not the
   sequence state; the default +-4096-packet guess spread makes exact
   hits (the only forgery RFC 5961 accepts) a ~1-in-8192 event per RST
   while still landing most guesses inside a large receive window. *)
let passive =
  {
    rst_rate = 0.0;
    rst_guess_range = 4096;
    ack_rate = 0.0;
    ack_burst = 3;
    clamp_episodes = [];
    clamp_to = 0;
  }

let validate_adversary a =
  if
    Float.is_nan a.rst_rate || a.rst_rate < 0.0 || Float.is_nan a.ack_rate
    || a.ack_rate < 0.0
  then invalid_arg "Fault: adversary rates must be finite and >= 0";
  if a.rst_guess_range < 1 then
    invalid_arg "Fault: adversary rst_guess_range must be >= 1";
  if a.ack_burst < 1 then invalid_arg "Fault: adversary ack_burst must be >= 1";
  if a.clamp_to < 0 || a.clamp_to > 0xFFFF then
    invalid_arg "Fault: adversary clamp_to must fit the 16-bit window field";
  List.iter
    (fun (from_t, to_t) ->
      if Time.to_s from_t < 0.0 || Time.compare to_t from_t <= 0 then
        invalid_arg "Fault: clamp episodes need 0 <= from < to")
    a.clamp_episodes

(* Per-flow connection state the attacker has snooped off the wire: node
   ids to address forged packets and sequence/ack high-water marks to aim
   them near the window. *)
type snooped = {
  mutable data_dst : int;  (** the data receiver's node id *)
  mutable data_src : int;
  mutable seq_seen : int;  (** highest data sequence observed + 1 *)
  mutable ack_seen : int;  (** highest cumulative ack observed *)
  mutable wnd_seen : int;  (** last raw window field observed *)
}

type attack_stats = {
  forged_rsts : int;
  forged_acks : int;
  clamped_acks : int;
  flows_seen : int;
}

type attack = {
  a_sim : Sim.t;
  adv : adversary;
  data_link : Link.t;
  ack_link : Link.t;
  a_rng : Rng.t;
  factory : Packet.factory;
  snoop_tbl : (int, snooped) Hashtbl.t;
  mutable snoop_order : int list;  (** flow ids, first-seen order (rev) *)
  mutable forged_rsts : int;
  mutable forged_acks : int;
  mutable clamped_acks : int;
}

let in_clamp t ~now =
  List.exists
    (fun (from_t, to_t) -> now >= Time.to_s from_t && now < Time.to_s to_t)
    t.adv.clamp_episodes

let snooped_for t pkt =
  match Hashtbl.find_opt t.snoop_tbl pkt.Packet.flow with
  | Some s -> s
  | None ->
      let s =
        {
          data_dst = -1;
          data_src = -1;
          seq_seen = 0;
          ack_seen = 0;
          wnd_seen = 0xFFFF;
        }
      in
      Hashtbl.replace t.snoop_tbl pkt.Packet.flow s;
      t.snoop_order <- pkt.Packet.flow :: t.snoop_order;
      s

(* Wiretap on a link's delivery path: learn connection endpoints and
   sequence ranges, and rewrite window advertisements during a clamp
   episode (a classic on-path downgrade that the victim cannot tell from
   genuine receiver backpressure). *)
let snoop t inner pkt =
  (match pkt.Packet.payload with
  | Packet.Data { seq } ->
      let s = snooped_for t pkt in
      s.data_dst <- pkt.Packet.dst;
      s.data_src <- pkt.Packet.src;
      if seq + 1 > s.seq_seen then s.seq_seen <- seq + 1
  | Packet.Ack a ->
      let s = snooped_for t pkt in
      if a.ack > s.ack_seen then s.ack_seen <- a.ack;
      s.wnd_seen <- a.window;
      if in_clamp t ~now:(Sim.now t.a_sim) && a.window > t.adv.clamp_to
      then begin
        a.window <- t.adv.clamp_to;
        t.clamped_acks <- t.clamped_acks + 1
      end
  | Packet.Probe _ | Packet.Rst _ -> ());
  inner pkt

let pick_target t =
  match t.snoop_order with
  | [] -> None
  | order ->
      let order = List.rev order in
      let flow = List.nth order (Rng.int t.a_rng (List.length order)) in
      Option.map (fun s -> (flow, s)) (Hashtbl.find_opt t.snoop_tbl flow)

(* A blind RST: the attacker knows the connection tuple but must guess
   the sequence number, drawn uniformly around the last snooped
   high-water mark. With RFC 5961 validation only an exact guess kills
   the connection; in-window guesses cost the victim a challenge ACK. *)
let inject_rst t =
  match pick_target t with
  | None -> ()
  | Some (flow, s) when s.data_dst >= 0 ->
      let now = Sim.now t.a_sim in
      let toward_receiver = Rng.bool t.a_rng in
      let base = if toward_receiver then s.seq_seen else s.ack_seen in
      let guess =
        let r = t.adv.rst_guess_range in
        max 0 (base + Rng.int t.a_rng (2 * r) - r)
      in
      let dst = if toward_receiver then s.data_dst else s.data_src in
      let src = if toward_receiver then s.data_src else s.data_dst in
      let link = if toward_receiver then t.data_link else t.ack_link in
      let pkt = Packet.rst t.factory ~flow ~src ~dst ~seq:guess ~now () in
      t.forged_rsts <- t.forged_rsts + 1;
      Link.send link pkt
  | Some _ -> ()

(* A burst of forged duplicate ACKs toward the data sender: enough of
   them trigger a spurious fast retransmit and a window cut. ts_echo is
   NaN so the forgery can never feed the victim's RTT estimator. *)
let inject_acks t =
  match pick_target t with
  | None -> ()
  | Some (flow, s) when s.data_dst >= 0 ->
      let now = Sim.now t.a_sim in
      for _ = 1 to t.adv.ack_burst do
        let pkt =
          Packet.ack t.factory ~flow ~src:s.data_dst ~dst:s.data_src
            ~ack:s.ack_seen ~sack:[] ~ecn_echo:false ~ts_echo:Float.nan
            ~window:s.wnd_seen ~now ()
        in
        t.forged_acks <- t.forged_acks + 1;
        Link.send t.ack_link pkt
      done
  | Some _ -> ()

let schedule_storm t ~rate fire =
  if rate > 0.0 then begin
    let rec loop () =
      Sim.after t.a_sim
        (Time.s (Rng.exponential t.a_rng (1.0 /. rate)))
        (fun () ->
          fire t;
          loop ())
    in
    loop ()
  end

let attack adv ~data ~ack =
  validate_adversary adv;
  let sim = Link.sim data in
  let t =
    {
      a_sim = sim;
      adv;
      data_link = data;
      ack_link = ack;
      a_rng = Rng.split (Sim.rng sim);
      factory = Packet.factory ();
      snoop_tbl = Hashtbl.create 16;
      snoop_order = [];
      forged_rsts = 0;
      forged_acks = 0;
      clamped_acks = 0;
    }
  in
  Link.interpose_deliver data (snoop t);
  Link.interpose_deliver ack (snoop t);
  (* RST storm first, then ACK storm: a fixed schedule-creation order
     keeps the rng stream replayable. *)
  schedule_storm t ~rate:adv.rst_rate inject_rst;
  schedule_storm t ~rate:adv.ack_rate inject_acks;
  t

let attack_stats t =
  {
    forged_rsts = t.forged_rsts;
    forged_acks = t.forged_acks;
    clamped_acks = t.clamped_acks;
    flows_seen = Hashtbl.length t.snoop_tbl;
  }
