type params = {
  gamma : float;
  alpha : float;
  b_ref : float;
  phi : float;
  sample_interval : Units.Time.t;
  ecn : bool;
}

let default_params ~capacity_pps:_ =
  {
    gamma = 0.001;
    alpha = 0.1;
    b_ref = 20.0;
    phi = 1.001;
    sample_interval = Units.Time.s 0.010;
    ecn = true;
  }

type state = {
  p : params;
  capacity_pps : float;
  mutable price : float;
  mutable arrivals_in_interval : int;
  mutable next_update : float;
}

(* Link the opaque Queue_disc.t back to REM internals for introspection
   (no global registry: that would be module-toplevel mutable state). *)
type Queue_disc.internals += Rem of state

let probability st = 1.0 -. (st.p.phi ** -.st.price)

let create ~rng ~params ~capacity_pps ~limit_pkts =
  if limit_pkts <= 0 then invalid_arg "Rem.create: limit must be positive";
  if params.phi <= 1.0 then invalid_arg "Rem.create: phi must exceed 1";
  let sample_interval = Units.Time.to_s params.sample_interval in
  if sample_interval <= 0.0 then
    invalid_arg "Rem.create: sample_interval must be positive";
  let fifo = Queue_disc.Fifo.create () in
  let st =
    {
      p = params;
      capacity_pps;
      price = 0.0;
      arrivals_in_interval = 0;
      next_update = 0.0;
    }
  in
  let update_price now =
    while st.next_update <= now do
      let backlog = float_of_int (Queue_disc.Fifo.pkts fifo) in
      let rate = float_of_int st.arrivals_in_interval /. sample_interval in
      st.price <-
        Float.max 0.0
          (st.price
          +. (st.p.gamma
             *. ((st.p.alpha *. (backlog -. st.p.b_ref))
                +. ((rate -. st.capacity_pps) *. sample_interval))));
      st.arrivals_in_interval <- 0;
      st.next_update <- st.next_update +. sample_interval
    done
  in
  let enqueue ~now pkt =
    update_price now;
    st.arrivals_in_interval <- st.arrivals_in_interval + 1;
    if Queue_disc.Fifo.pkts fifo >= limit_pkts then Queue_disc.Reject
    else if Sim_engine.Rng.bernoulli rng (Units.Prob.v (probability st)) then
      if st.p.ecn && pkt.Packet.ecn_capable then begin
        Queue_disc.Fifo.push fifo pkt;
        Queue_disc.Accept_marked
      end
      else Queue_disc.Reject
    else begin
      Queue_disc.Fifo.push fifo pkt;
      Queue_disc.Accept
    end
  in
  {
    Queue_disc.name = "rem";
    enqueue;
    dequeue = (fun ~now:_ -> Queue_disc.Fifo.pop fifo);
    pkt_length = (fun () -> Queue_disc.Fifo.pkts fifo);
    byte_length = (fun () -> Queue_disc.Fifo.bytes fifo);
    capacity_pkts = limit_pkts;
    internals = Rem st;
  }

let state_of disc =
  match disc.Queue_disc.internals with
  | Rem st -> st
  | _ -> invalid_arg "Rem: not a REM discipline"

let price disc = (state_of disc).price
let mark_probability disc = Units.Prob.v (probability (state_of disc))
