module Sim = Sim_engine.Sim
module Stats = Sim_engine.Stats
module Fvec = Sim_engine.Fvec
module Time = Units.Time
module Rate = Units.Rate

type event = Enqueue | Dequeue | Receive | Drop

type t = {
  sim : Sim.t;
  name : string;
  bandwidth : Rate.t;
  delay : Time.t;
  jitter : Time.t;
  jitter_rng : Sim_engine.Rng.t;
  disc : Queue_disc.t;
  mutable deliver : Packet.t -> unit;
  mutable event_hook : (event -> Packet.t -> unit) option;
  mutable busy : bool;
  mutable up : bool;
  (* lifetime accounting (never reset): conservation invariant *)
  mutable life_arrivals : int;
  mutable life_drops : int;
  mutable delivered : int;
  mutable in_flight : int;  (* dequeued, not yet handed to [deliver] *)
  mutable outage_drops : int;
  (* measurement (reset at window boundaries) *)
  mutable arrivals : int;
  mutable drops : int;
  mutable marks : int;
  mutable bytes_sent : int;
  mutable window_start : float;
  mutable qmax : int;
  qavg : Stats.Time_weighted.t;
  mutable drop_trace : Fvec.t option;
  mutable queue_trace : (Fvec.t * Fvec.t) option;  (* times, lengths *)
}

let create ?(jitter = Time.zero) sim ~name ~bandwidth ~delay ~disc =
  if Rate.to_bps bandwidth <= 0.0 then
    invalid_arg "Link.create: bandwidth must be positive";
  if Time.to_s delay < 0.0 then invalid_arg "Link.create: negative delay";
  if Time.to_s jitter < 0.0 then invalid_arg "Link.create: negative jitter";
  {
    sim;
    name;
    bandwidth;
    delay;
    jitter;
    jitter_rng = Sim_engine.Rng.split (Sim.rng sim);
    disc;
    deliver = (fun _ -> invalid_arg "Link: deliver not wired");
    event_hook = None;
    busy = false;
    up = true;
    life_arrivals = 0;
    life_drops = 0;
    delivered = 0;
    in_flight = 0;
    outage_drops = 0;
    arrivals = 0;
    drops = 0;
    marks = 0;
    bytes_sent = 0;
    window_start = Sim.now sim;
    qmax = 0;
    qavg = Stats.Time_weighted.create ~start:(Sim.now sim) ~value:0.0;
    drop_trace = None;
    queue_trace = None;
  }

let set_deliver t f = t.deliver <- f

let interpose_deliver t wrap =
  let inner = t.deliver in
  t.deliver <- wrap inner

let set_event_hook t f = t.event_hook <- Some f

let emit t event pkt =
  match t.event_hook with Some f -> f event pkt | None -> ()
let name t = t.name
let sim t = t.sim
let disc t = t.disc

let note_queue_change t =
  let now = Sim.now t.sim in
  let len = t.disc.Queue_disc.pkt_length () in
  if len > t.qmax then t.qmax <- len;
  Stats.Time_weighted.update t.qavg ~now ~value:(float_of_int len)

let rec start_transmission t =
  if not t.up then t.busy <- false
  else
    match t.disc.Queue_disc.dequeue ~now:(Sim.now t.sim) with
    | None -> t.busy <- false
    | Some pkt ->
        note_queue_change t;
        emit t Dequeue pkt;
        t.busy <- true;
        t.in_flight <- t.in_flight + 1;
        let tx_time = Units.Size.tx_time (Units.Size.bytes pkt.Packet.size) t.bandwidth in
        Sim.after t.sim tx_time (fun () ->
            t.bytes_sent <- t.bytes_sent + pkt.Packet.size;
            (* Propagation proceeds in parallel with the next transmission;
               per-packet jitter may reorder deliveries. *)
            let extra =
              if Time.to_s t.jitter > 0.0 then
                Time.s (Sim_engine.Rng.float t.jitter_rng (Time.to_s t.jitter))
              else Time.zero
            in
            Sim.after t.sim (Time.add t.delay extra) (fun () ->
                emit t Receive pkt;
                t.in_flight <- t.in_flight - 1;
                t.delivered <- t.delivered + 1;
                t.deliver pkt);
            start_transmission t)

let drop t pkt =
  t.drops <- t.drops + 1;
  t.life_drops <- t.life_drops + 1;
  emit t Drop pkt;
  match t.drop_trace with Some v -> Fvec.push v (Sim.now t.sim) | None -> ()

let send t pkt =
  t.arrivals <- t.arrivals + 1;
  t.life_arrivals <- t.life_arrivals + 1;
  if not t.up then begin
    (* Down links lose offered packets on the floor, like an unplugged
       cable; queued and in-flight packets are kept. *)
    t.outage_drops <- t.outage_drops + 1;
    drop t pkt
  end
  else
    let now = Sim.now t.sim in
    match t.disc.Queue_disc.enqueue ~now pkt with
    | Queue_disc.Reject -> drop t pkt
    | Queue_disc.Accept | Queue_disc.Accept_marked as v ->
        if v = Queue_disc.Accept_marked then begin
          pkt.Packet.ecn_marked <- true;
          t.marks <- t.marks + 1
        end;
        emit t Enqueue pkt;
        note_queue_change t;
        if not t.busy then start_transmission t

let set_up t up =
  if up && not t.up then begin
    t.up <- true;
    (* Resume draining whatever accumulated during the outage. *)
    if not t.busy then start_transmission t
  end
  else if not up then t.up <- false

let is_up t = t.up

let arrivals t = t.arrivals
let drops t = t.drops
let marks t = t.marks
let outage_drops t = t.outage_drops

let conservation_error t =
  let queued = t.disc.Queue_disc.pkt_length () in
  let accounted = t.life_drops + queued + t.in_flight + t.delivered in
  if t.life_arrivals = accounted then None
  else
    Some
      (Printf.sprintf
         "packet conservation violated: %d arrivals <> %d dropped + %d \
          queued + %d in flight + %d delivered"
         t.life_arrivals t.life_drops queued t.in_flight t.delivered)

let avg_queue_pkts t =
  Units.Pkts.v (Stats.Time_weighted.average t.qavg ~now:(Sim.now t.sim))
let max_queue_pkts t = t.qmax

let utilization t =
  let span = Sim.now t.sim -. t.window_start in
  if span <= 0.0 then 0.0
  else float_of_int (8 * t.bytes_sent) /. (Rate.to_bps t.bandwidth *. span)

let drop_rate t =
  if t.arrivals = 0 then 0.0
  else float_of_int t.drops /. float_of_int t.arrivals

let reset_stats t =
  t.arrivals <- 0;
  t.drops <- 0;
  t.marks <- 0;
  t.bytes_sent <- 0;
  t.window_start <- Sim.now t.sim;
  t.qmax <- t.disc.Queue_disc.pkt_length ();
  Stats.Time_weighted.reset t.qavg ~now:(Sim.now t.sim)

let enable_drop_trace t =
  if t.drop_trace = None then t.drop_trace <- Some (Fvec.create ())

let drop_times t =
  match t.drop_trace with
  | Some v -> Fvec.to_array v
  | None -> invalid_arg "Link.drop_times: tracing not enabled"

let enable_queue_trace t ?(interval = Time.s 0.01) () =
  match t.queue_trace with
  | Some _ -> ()
  | None ->
      let times = Fvec.create () and lengths = Fvec.create () in
      t.queue_trace <- Some (times, lengths);
      Sim.every t.sim ~start:(Time.s (Sim.now t.sim)) interval (fun () ->
          Fvec.push times (Sim.now t.sim);
          Fvec.push lengths (float_of_int (t.disc.Queue_disc.pkt_length ())))

let queue_at t time =
  let time = Time.to_s time in
  match t.queue_trace with
  | None -> invalid_arg "Link.queue_at: tracing not enabled"
  | Some (times, lengths) ->
      let i = Fvec.lower_bound times time in
      (* We want the last sample at or before [time]. *)
      let i =
        if i < Fvec.length times && Fvec.get times i <= time then i else i - 1
      in
      if i < 0 then 0.0 else Fvec.get lengths i
