(** Composable link-impairment layer for robustness experiments.

    A fault attaches to an existing {!Link} and perturbs traffic *after*
    the queue discipline and the wire — exactly where the network
    misbehaves in ways a delay-based controller cannot see coming:
    non-congestive random loss, bit corruption (detected and dropped at
    the receiver), ECN bleaching/remarking middleboxes, packet
    duplication, reordering bursts, delay spikes, and link outages with
    recovery (scheduled or memoryless flapping).

    All randomness comes from two generators split off the simulation's
    root {!Sim_engine.Rng} at attach time, so runs with the same seed
    replay the exact same drop/outage schedule bit-for-bit. Impairments
    compose: probabilities are evaluated per packet in a fixed order
    (loss, corruption, ECN, latency, duplication). *)

type outages =
  | No_outages
  | Scheduled of (float * float) list
      (** [(down_at, up_at)] absolute-time windows, seconds *)
  | Flapping of { mean_up : float; mean_down : float }
      (** memoryless up/down alternation with exponential holding times *)

type spec = {
  drop_prob : float;  (** non-congestive random loss on the wire *)
  corrupt_prob : float;  (** bit corruption; packet dropped at receiver *)
  bleach_prob : float;  (** probability a CE mark is cleared in flight *)
  remark_prob : float;  (** probability an ECT packet is spuriously CE-marked *)
  dup_prob : float;  (** packet duplication *)
  reorder_prob : float;  (** chance of an extra uniform [0, reorder_extra) delay *)
  reorder_extra : float;  (** seconds; > serialization time reorders packets *)
  spike_prob : float;  (** chance of a fixed delay spike *)
  spike_delay : float;  (** seconds added on a spike *)
  outages : outages;
}

val none : spec
(** All impairments off — the identity spec to build others from with
    record update syntax: [{ Fault.none with drop_prob = 0.01 }]. *)

val lossy : float -> spec
(** [lossy p] is [{ none with drop_prob = p }]. *)

type t

val attach : spec -> Link.t -> t
(** Validate the spec (probabilities in [0,1], sane outage windows) and
    decorate the link's delivery path via {!Link.interpose_deliver};
    outages drive {!Link.set_up}. Multiple faults may be stacked on one
    link; each keeps its own counters and random streams. *)

val link : t -> Link.t
val spec : t -> spec

(** Counters of impairments actually applied (not just configured). *)
type stats = {
  wire_drops : int;
  corrupt_drops : int;
  bleached : int;
  remarked : int;
  duplicated : int;
  reordered : int;
  delayed : int;  (** delay spikes applied *)
  outage_drops : int;  (** from the link: packets offered while down *)
  transitions : int;  (** up->down and down->up state changes *)
  downtime : float;  (** total seconds down, including any open outage *)
}

val stats : t -> stats

val lost : t -> int
(** Packets this fault removed: wire drops + corruption + outage drops. *)
