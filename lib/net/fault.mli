(** Composable link-impairment layer for robustness experiments.

    A fault attaches to an existing {!Link} and perturbs traffic *after*
    the queue discipline and the wire — exactly where the network
    misbehaves in ways a delay-based controller cannot see coming:
    non-congestive random loss, bit corruption (detected and dropped at
    the receiver), ECN bleaching/remarking middleboxes, packet
    duplication, reordering bursts, delay spikes, and link outages with
    recovery (scheduled or memoryless flapping).

    All randomness comes from two generators split off the simulation's
    root {!Sim_engine.Rng} at attach time, so runs with the same seed
    replay the exact same drop/outage schedule bit-for-bit. Impairments
    compose: probabilities are evaluated per packet in a fixed order
    (loss, corruption, ECN, latency, duplication). *)

type outages =
  | No_outages
  | Scheduled of (Units.Time.t * Units.Time.t) list
      (** [(down_at, up_at)] absolute-time windows *)
  | Flapping of { mean_up : Units.Time.t; mean_down : Units.Time.t }
      (** memoryless up/down alternation with exponential holding times *)

type spec = {
  drop_prob : Units.Prob.t;  (** non-congestive random loss on the wire *)
  corrupt_prob : Units.Prob.t;
      (** bit corruption; packet dropped at receiver *)
  bleach_prob : Units.Prob.t;
      (** probability a CE mark is cleared in flight *)
  remark_prob : Units.Prob.t;
      (** probability an ECT packet is spuriously CE-marked *)
  dup_prob : Units.Prob.t;  (** packet duplication *)
  reorder_prob : Units.Prob.t;
      (** chance of an extra uniform [0, reorder_extra) delay *)
  reorder_extra : Units.Time.t;
      (** > serialization time reorders packets *)
  spike_prob : Units.Prob.t;  (** chance of a fixed delay spike *)
  spike_delay : Units.Time.t;  (** added on a spike *)
  outages : outages;
}

val none : spec
(** All impairments off — the identity spec to build others from with
    record update syntax: [{ Fault.none with drop_prob = 0.01 }]. *)

val lossy : Units.Prob.t -> spec
(** [lossy p] is [{ none with drop_prob = p }]. *)

type t

val attach : spec -> Link.t -> t
(** Validate the spec (sane outage windows; probabilities are already
    honest by [Units.Prob.t] construction) and decorate the link's
    delivery path via {!Link.interpose_deliver};
    outages drive {!Link.set_up}. Multiple faults may be stacked on one
    link; each keeps its own counters and random streams. *)

val link : t -> Link.t
val spec : t -> spec

(** Counters of impairments actually applied (not just configured). *)
type stats = {
  wire_drops : int;
  corrupt_drops : int;
  bleached : int;
  remarked : int;
  duplicated : int;
  reordered : int;
  delayed : int;  (** delay spikes applied *)
  outage_drops : int;  (** from the link: packets offered while down *)
  transitions : int;  (** up->down and down->up state changes *)
  downtime : float;  (** total seconds down, including any open outage *)
}

val stats : t -> stats

val lost : t -> int
(** Packets this fault removed: wire drops + corruption + outage drops. *)
