(** Composable link-impairment layer for robustness experiments.

    A fault attaches to an existing {!Link} and perturbs traffic *after*
    the queue discipline and the wire — exactly where the network
    misbehaves in ways a delay-based controller cannot see coming:
    non-congestive random loss, bit corruption (detected and dropped at
    the receiver), ECN bleaching/remarking middleboxes, packet
    duplication, reordering bursts, delay spikes, and link outages with
    recovery (scheduled or memoryless flapping).

    All randomness comes from two generators split off the simulation's
    root {!Sim_engine.Rng} at attach time, so runs with the same seed
    replay the exact same drop/outage schedule bit-for-bit. Impairments
    compose: probabilities are evaluated per packet in a fixed order
    (loss, corruption, ECN, latency, duplication). *)

type outages =
  | No_outages
  | Scheduled of (Units.Time.t * Units.Time.t) list
      (** [(down_at, up_at)] absolute-time windows *)
  | Flapping of { mean_up : Units.Time.t; mean_down : Units.Time.t }
      (** memoryless up/down alternation with exponential holding times *)

type spec = {
  drop_prob : Units.Prob.t;  (** non-congestive random loss on the wire *)
  corrupt_prob : Units.Prob.t;
      (** bit corruption: the packet is delivered with
          {!Packet.t.corrupted} set and must be discarded by the
          endpoint's validity gate, never interpreted *)
  bleach_prob : Units.Prob.t;
      (** probability a CE mark is cleared in flight *)
  remark_prob : Units.Prob.t;
      (** probability an ECT packet is spuriously CE-marked *)
  dup_prob : Units.Prob.t;  (** packet duplication *)
  reorder_prob : Units.Prob.t;
      (** chance of an extra uniform [0, reorder_extra) delay *)
  reorder_extra : Units.Time.t;
      (** > serialization time reorders packets *)
  spike_prob : Units.Prob.t;  (** chance of a fixed delay spike *)
  spike_delay : Units.Time.t;  (** added on a spike *)
  outages : outages;
}

val none : spec
(** All impairments off — the identity spec to build others from with
    record update syntax: [{ Fault.none with drop_prob = 0.01 }]. *)

val lossy : Units.Prob.t -> spec
(** [lossy p] is [{ none with drop_prob = p }]. *)

type t

val attach : spec -> Link.t -> t
(** Validate the spec (sane outage windows; probabilities are already
    honest by [Units.Prob.t] construction) and decorate the link's
    delivery path via {!Link.interpose_deliver};
    outages drive {!Link.set_up}. Multiple faults may be stacked on one
    link; each keeps its own counters and random streams. *)

(** Counters of impairments actually applied (not just configured). *)
type stats = {
  wire_drops : int;
  corrupted : int;  (** segments delivered with flipped bits *)
  bleached : int;
  remarked : int;
  duplicated : int;
  reordered : int;
  delayed : int;  (** delay spikes applied *)
  outage_drops : int;  (** from the link: packets offered while down *)
  transitions : int;  (** up->down and down->up state changes *)
  downtime : float;  (** total seconds down, including any open outage *)
}

val stats : t -> stats

val lost : t -> int
(** Packets this fault removed from the flow's point of view: wire drops
    + corrupted segments (discarded at the endpoint gate) + outage
    drops. *)

(** {2 Adversary profile}

    Beyond passive impairment: a seeded on-path attacker that snoops
    connection state off two links (the data direction and the ACK
    direction) and actively attacks the endpoints — blind RST storms
    (RFC 5961's threat model), forged duplicate-ACK storms, and
    window-clamp episodes that rewrite receive-window advertisements in
    flight. Forged packets are injected upstream of the victim's
    bottleneck queue via {!Link.send}, so they consume queue space and
    bandwidth like real attack traffic and packet-conservation audits
    still balance. All randomness comes from one generator split off the
    simulation root at {!attack} time: same seed, same attack, replayed
    bit-for-bit. *)

type adversary = {
  rst_rate : float;  (** mean forged RSTs per second (Poisson, 0 = off) *)
  rst_guess_range : int;
      (** blind sequence guesses land uniformly within +-range of the
          snooped high-water mark *)
  ack_rate : float;
      (** mean forged duplicate-ACK bursts per second (0 = off) *)
  ack_burst : int;  (** forged duplicate ACKs per burst *)
  clamp_episodes : (Units.Time.t * Units.Time.t) list;
      (** absolute [(from, to)] windows during which every ACK crossing
          either link has its window advertisement clamped *)
  clamp_to : int;  (** raw 16-bit field forced during clamp episodes *)
}

val passive : adversary
(** No attacks: rates 0, no clamp episodes — the identity profile to
    build others from with record update syntax. *)

type attack

val attack : adversary -> data:Link.t -> ack:Link.t -> attack
(** Arm the adversary on a pair of links: wiretaps are interposed on
    both delivery paths (data first, then ack — the order is part of the
    replay contract), then the RST and ACK injection schedules are
    started. *)

type attack_stats = {
  forged_rsts : int;
  forged_acks : int;
  clamped_acks : int;  (** genuine ACKs whose window field was rewritten *)
  flows_seen : int;  (** connections the wiretap has learned *)
}

val attack_stats : attack -> attack_stats
