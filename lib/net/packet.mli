(** Network packets.

    Data packets carry one MSS of payload and a sequence number in packet
    units. ACKs carry the cumulative acknowledgement, up to three SACK
    blocks, an ECN echo bit, a timestamp echo used by the sender for RTT
    sampling (immune to retransmission ambiguity, like the TCP timestamp
    option), and the raw 16-bit receive-window advertisement. Window
    probes are the 1-byte segments a sender in zero-window persist mode
    emits (RFC 6429); RSTs carry only a sequence number and are subject
    to RFC 5961 validation at the endpoint. *)

type payload =
  | Data of { seq : int }
      (** [seq] is the packet-granularity sequence number, from 0. *)
  | Ack of {
      ack : int;  (** next expected sequence (cumulative) *)
      sack : (int * int) list;
          (** up to 3 blocks [(first, last_exclusive)] of out-of-order data
              held by the receiver, most recent first *)
      ecn_echo : bool;  (** congestion-experienced echo (ECE) *)
      ts_echo : float;
          (** send timestamp of the packet being acked; NaN on pure ACKs
              (window updates, probe responses, challenge ACKs) so they
              never produce an RTT sample *)
      mutable window : int;
          (** raw 16-bit receive-window field; interpret through the
              flow's negotiated {!Tcpstack.Tcp_window.Scale}. Mutable so
              an on-path adversary ({!Fault}) can clamp it in flight. *)
    }
  | Probe of { seq : int }
      (** zero-window probe: 1 byte of data at [seq], never accepted by
          the receiver, answered with a pure ACK carrying the current
          window *)
  | Rst of { seq : int }  (** connection reset claiming sequence [seq] *)

type t = {
  id : int;  (** unique per factory *)
  flow : int;  (** flow identifier for endpoint demux *)
  src : int;  (** source node id *)
  dst : int;  (** destination node id *)
  size : int;  (** bytes on the wire *)
  payload : payload;
  ecn_capable : bool;
  mutable ecn_marked : bool;  (** set by an AQM queue (CE codepoint) *)
  mutable retransmit : bool;  (** data packet is a retransmission *)
  mutable corrupted : bool;
      (** header/payload bits flipped in flight ({!Fault}); endpoints
          must discard such segments at a checksum-style validity gate
          instead of interpreting them *)
  sent_at : float;  (** time the packet entered the network *)
}

val mss : int
(** Data packet payload size used throughout: 1000 bytes. *)

val header_size : int
(** Bytes of header; ACKs and RSTs are [header_size] long. 40 bytes. *)

val data_size : int
(** [mss + header_size]. *)

type factory
(** Allocates unique packet ids. *)

val factory : unit -> factory

val data :
  factory -> flow:int -> src:int -> dst:int -> seq:int -> ecn:bool ->
  ?retransmit:bool -> now:float -> unit -> t

val ack :
  factory -> flow:int -> src:int -> dst:int -> ack:int ->
  sack:(int * int) list -> ecn_echo:bool -> ts_echo:float -> window:int ->
  now:float -> unit -> t

val probe :
  factory -> flow:int -> src:int -> dst:int -> seq:int -> now:float ->
  unit -> t

val rst :
  factory -> flow:int -> src:int -> dst:int -> seq:int -> now:float ->
  unit -> t

val is_data : t -> bool
val seq_exn : t -> int
(** Sequence number of a data packet; raises on other payloads. *)
