(** Network packets.

    Data packets carry one MSS of payload and a sequence number in packet
    units. ACKs carry the cumulative acknowledgement, up to three SACK
    blocks, an ECN echo bit, and a timestamp echo used by the sender for
    RTT sampling (immune to retransmission ambiguity, like the TCP
    timestamp option). *)

type payload =
  | Data of { seq : int }
      (** [seq] is the packet-granularity sequence number, from 0. *)
  | Ack of {
      ack : int;  (** next expected sequence (cumulative) *)
      sack : (int * int) list;
          (** up to 3 blocks [(first, last_exclusive)] of out-of-order data
              held by the receiver, most recent first *)
      ecn_echo : bool;  (** congestion-experienced echo (ECE) *)
      ts_echo : float;  (** send timestamp of the packet being acked *)
    }

type t = {
  id : int;  (** unique per simulation *)
  flow : int;  (** flow identifier for endpoint demux *)
  src : int;  (** source node id *)
  dst : int;  (** destination node id *)
  size : int;  (** bytes on the wire *)
  payload : payload;
  ecn_capable : bool;
  mutable ecn_marked : bool;  (** set by an AQM queue (CE codepoint) *)
  mutable retransmit : bool;  (** data packet is a retransmission *)
  sent_at : float;  (** time the packet entered the network *)
}

val mss : int
(** Data packet payload size used throughout: 1000 bytes. *)

val header_size : int
(** Bytes of header; ACKs are [header_size] long. 40 bytes. *)

val data_size : int
(** [mss + header_size]. *)

type factory
(** Allocates unique packet ids. *)

val factory : unit -> factory

val data :
  factory -> flow:int -> src:int -> dst:int -> seq:int -> ecn:bool ->
  ?retransmit:bool -> now:float -> unit -> t

val ack :
  factory -> flow:int -> src:int -> dst:int -> ack:int ->
  sack:(int * int) list -> ecn_echo:bool -> ts_echo:float -> now:float ->
  unit -> t

val is_data : t -> bool
val seq_exn : t -> int
(** Sequence number of a data packet; raises on ACKs. *)
